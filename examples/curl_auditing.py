#!/usr/bin/env python
"""Re-architecting curlite for remote auditing (paper sec. 5.1,
use-cases ② and ③; evaluated in Figs. 25a/25b/26a).

Downloads a sweep of file sizes under three configurations — original,
audited with the Aud instance in the same VM, audited across VMs — and
prints the overhead table plus a peek at the tamper-evident audit log.

Run:  python examples/curl_auditing.py
"""

from repro.api import Simulator
from repro.arch.snapshot import RemoteAuditor
from repro.curlite import FileServer, run_sweep

SIZES = [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000]


def main() -> None:
    sim = Simulator()
    server = FileServer()
    server.put_standard_corpus()

    same = RemoteAuditor(placement="same-vm", sim=sim)
    cross = RemoteAuditor(placement="cross-vm", sim=sim)

    result = run_sweep(
        sim,
        server,
        SIZES,
        {
            "original": ("none", None),
            "same-vm": ("continuous", same.audit_hook()),
            "cross-vm": ("continuous", cross.audit_hook()),
            "once-cross": ("once", cross.audit_hook()),
        },
        repetitions=5,
    )

    print(f"{'size':>12} {'original':>10} {'same-vm':>9} {'cross-vm':>9} {'once':>7}")
    for size in result.sizes():
        print(
            f"{size:>12} "
            f"{result.mean(size, 'original')*1e3:9.2f}ms "
            f"{result.overhead_percent(size, 'same-vm'):+8.1f}% "
            f"{result.overhead_percent(size, 'cross-vm'):+8.1f}% "
            f"{result.overhead_percent(size, 'once-cross'):+6.1f}%"
        )

    print("\ncontinuous audit log (cross-vm), last 3 records:")
    for rec in cross.audit_log[-3:]:
        print(f"  {rec['url']}: {rec['done']}/{rec['total']} bytes, "
              f"digest={rec['digest']:#010x}")
    print(f"\ntotal audit records: same-vm={len(same.audit_log)}, "
          f"cross-vm={len(cross.audit_log)}")
    print("one-time audits capture state at invocation start "
          "(use-case ②); continuous audits trade overhead for "
          "more information (use-case ③).")


if __name__ == "__main__":
    main()
