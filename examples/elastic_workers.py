#!/usr/bin/env python
"""Elastic scale-out/scale-in (extension): the paper's remaining
motivating needs — "manageability through ... scale-out" and "lower
resource cost through scale-in" (sec. 1) — built on the sec. 7.1
asynchronous-dispatch pattern (`wait [] !Work[tgt]; write; assert`).

A job service starts with two workers, scales to four under load (the
DSL's `start` statement, driven through an idx cursor), then scales
back in (`stop`).

Run:  python examples/elastic_workers.py
"""

from repro.arch.elastic import ElasticWorkers


def run_batch(svc: ElasticWorkers, n_jobs: int, units: int = 4) -> float:
    t0 = svc.system.now
    finish = []
    remaining = [n_jobs]

    def cb(_result):
        remaining[0] -= 1
        if remaining[0] == 0:
            finish.append(svc.system.now)

    for _ in range(n_jobs):
        svc.submit_job(units, cb)
    svc.system.run_until(svc.system.now + 120.0)
    assert finish, "batch did not complete"
    return finish[0] - t0


def main() -> None:
    svc = ElasticWorkers(unit_cost=5e-3)
    print(f"workers running: {svc.running_workers()}")

    t2 = run_batch(svc, 40)
    print(f"40 jobs on 2 workers: {t2:.3f}s")

    print("scaling out twice (DSL `start which(t)` through the idx cursor)...")
    for _ in range(2):
        svc.scale_out()
        svc.system.run_until(svc.system.now + 2.0)
    print(f"workers running: {svc.running_workers()}")

    t4 = run_batch(svc, 40)
    print(f"40 jobs on 4 workers: {t4:.3f}s  ({t2 / t4:.2f}x faster)")

    print("scaling back in (DSL `stop which`)...")
    for _ in range(2):
        svc.scale_in()
        svc.system.run_until(svc.system.now + 2.0)
    print(f"workers running: {svc.running_workers()}")

    t2b = run_batch(svc, 40)
    print(f"40 jobs on 2 workers again: {t2b:.3f}s")
    assert t4 < t2, "scale-out should speed up the batch"
    print(f"scale events: {[(round(t, 2), d, w) for t, d, w in svc.front.scale_events]}")
    print("done — capacity followed demand, orchestrated from the DSL.")


if __name__ == "__main__":
    main()
