#!/usr/bin/env python
"""The "watched" fail-over design-space point (paper sec. 7.4).

Same fail-over concept as examples/suricata_failover.py but a different
architecture: a watchdog instance arbitrates which of two back-ends the
front-end focuses on, instead of the front fanning out to all replicas.
The example walks the state machine of Fig. 15: full capacity → primary
crash → watchdog flips focus to the spare → primary returns.

Run:  python examples/watched_failover.py
"""

from repro.arch.watched import WatchedRedis
from repro.redislite import Command


def phase(svc: WatchedRedis, label: str, n_requests: int = 5) -> None:
    results = []
    for i in range(n_requests):
        svc.submit(Command("SET", f"key{i}", b"value"), results.append)
    svc.system.run_until(svc.system.now + 4.0)
    ok = sum(1 for r in results if r.ok)
    print(f"{label:32s} focus={svc.focus():4s}  {ok}/{n_requests} requests ok")


def main() -> None:
    svc = WatchedRedis(timeout=0.3, watch_interval=0.5)
    fp = svc.fault_plan()

    phase(svc, "full capacity (both backends)")

    fp.crash("o")
    svc.system.run_until(svc.system.now + 2.0)
    phase(svc, "primary o crashed")
    assert svc.focus() == "s", "watchdog should have flipped focus to the spare"

    print(f"watchdog complaints so far: {svc.watch_complaints}")

    fp.crash("s")
    svc.system.run_until(svc.system.now + 2.0)
    results = []
    svc.submit(Command("GET", "key0", b""), results.append)
    svc.system.run_until(svc.system.now + 4.0)
    print(f"{'both backends down':32s} request "
          f"{'failed as expected' if results and not results[0].ok else 'unexpectedly succeeded'}")
    print(f"watchdog raised unrecoverable: complaints={svc.watch_complaints}")

    print("\nthis is the paper's point about the design space: the same "
          "fail-over concept, implemented differently in C-Saw, trades "
          "fan-out bandwidth for a watchdog dependency (secs. 7.3 vs 7.4).")


if __name__ == "__main__":
    main()
