#!/usr/bin/env python
"""Fail-over + checkpointing for suricatalite (paper sec. 2's
"Availability+Diagnostics" scenario, reusing the Redis fail-over
architecture — the reuse the paper demonstrates in sec. 7.3).

Streams a synthetic trace through two warm pipeline replicas behind the
fail-over front-end, crashes the primary replica mid-stream, and shows
the system continuing on the surviving replica; then restarts the
crashed replica and shows it re-registering.

Run:  python examples/suricata_failover.py
"""

from repro.arch.failover import FailoverSuricata
from repro.suricatalite import TraceGenerator

BATCH = 250


def main() -> None:
    svc = FailoverSuricata(timeout=0.5)
    print("registered back-ends:", svc.registered_backends())

    gen = TraceGenerator(n_flows=100, packets_per_second=20_000, duration=10, seed=9)
    packets = list(gen.packets())
    print(f"trace: {len(packets)} packets, {gen.flow_count()} flows")

    stats = {"batches": 0, "ok": 0, "failed": 0}

    def on_done(reply):
        stats["batches"] += 1
        if reply is None:
            stats["failed"] += 1
        else:
            stats["ok"] += 1

    # feed the trace in batches at its natural rate
    for i in range(0, len(packets), BATCH):
        batch = packets[i : i + BATCH]
        svc.sim.call_at(
            svc.sim.now + batch[0].ts,
            lambda b=batch: svc.submit_packets(b, on_done),
        )

    # crash the primary replica 3 seconds in; restart it at 6s
    start = svc.sim.now
    fp = svc.fault_plan()
    fp.crash_at(start + 3.0, "b1")
    fp.restart_at(start + 6.0, "b1")

    svc.system.run_until(start + 30.0)

    print(f"batches: {stats['batches']} ok={stats['ok']} failed={stats['failed']}")
    print("registered back-ends now:", svc.registered_backends())
    for i in (0, 1):
        pipeline = svc.backend_app(i).payload
        print(
            f"  replica b{i+1}: {pipeline.packets_processed} packets, "
            f"{pipeline.ctx.flow_table.size()} flows tracked, "
            f"{len(pipeline.ctx.rules.alerts)} alerts"
        )
    print("the crashed replica rejoined via startup/reactivate "
          "(Fig. 8's registration loop); its checkpoint could also be "
          "used to reproduce the fault offline (sec. 2).")


if __name__ == "__main__":
    main()
