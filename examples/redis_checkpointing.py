#!/usr/bin/env python
"""Checkpointing redislite with crash recovery (paper Fig. 23a).

Runs a redis-benchmark workload against a server protected by the
checkpointing architecture: snapshots every 15 s are pushed to a remote
Aud instance; at t=60 s the server crashes and is restored from the
last snapshot, losing only the writes since then.

Run:  python examples/redis_checkpointing.py
"""

from repro.api import Simulator
from repro.arch.checkpointing import CheckpointedService
from repro.redislite import BenchDriver, DirectPort, RedisServer, WorkloadGenerator

DURATION = 120.0
CHECKPOINT_EVERY = 15.0
CRASH_AT = 60.0
RECOVERY_DELAY = 1.0


def main() -> None:
    sim = Simulator()
    server = RedisServer()
    port_ref = {}
    svc = CheckpointedService(server, stall=lambda d: port_ref["p"].stall(d), sim=sim)
    port = DirectPort(sim, server)
    port_ref["p"] = port

    wl = WorkloadGenerator(n_keys=2000, get_ratio=0.7, seed=23)
    for cmd in wl.preload_commands():
        server.execute(cmd)

    svc.schedule_checkpoints(CHECKPOINT_EVERY, DURATION)

    def crash():
        svc.crash()
        port.stall(RECOVERY_DELAY)  # the outage until the restore lands

    sim.call_at(CRASH_AT, crash)
    sim.call_at(CRASH_AT + RECOVERY_DELAY, svc.recover)

    res = BenchDriver(sim, port, wl, clients=8).run(DURATION)

    print(f"completed {res.count} requests over {DURATION:.0f}s")
    print(f"checkpoints taken: {svc.checkpoints}, stored remotely: "
          f"{svc.aud.snapshots_stored}, restores: {svc.restores}")
    print("\nquery rate over time (KQuery/s):")
    for t, qps in res.qps_series(5.0):
        bar = "#" * int(qps / 400)
        marker = " <-- crash+restore" if CRASH_AT <= t < CRASH_AT + 5 else ""
        print(f"  {t:5.0f}s {qps/1000:6.2f}K {bar}{marker}")
    print("\nnote the dips at each 15s checkpoint and the deeper dip at "
          "the crash — the shape of the paper's Fig. 23a.")


if __name__ == "__main__":
    main()
