#!/usr/bin/env python
"""Live migration (extension): the manageability feature the paper's
introduction motivates (sec. 1, need (ii)) built from the shipped DSL
building blocks — snapshot (Fig. 4), push-based state transfer, and a
host-language routing policy.

A redislite dataset serves traffic on NodeA, live-migrates to NodeB
under load, and keeps serving throughout; only the atomic switch
changes where requests land.

Run:  python examples/live_migration.py
"""

from repro.arch.migration import MigratableRedis
from repro.redislite import BenchDriver, WorkloadGenerator


def main() -> None:
    svc = MigratableRedis(timeout=0.5)
    wl = WorkloadGenerator(n_keys=3000, get_ratio=0.8, seed=77)
    svc.preload(wl.preload_commands())
    print(f"dataset: {svc.node_server('NodeA').store.size()} keys on NodeA; "
          f"active = {svc.active}")

    driver = BenchDriver(svc.sim, svc, wl, clients=4)
    migrated = []
    svc.sim.call_at(1.0, lambda: (
        print("  t=1.0s  -> live migration NodeA -> NodeB starts"),
        svc.migrate("NodeB", migrated.append),
    ))
    res = driver.run(3.0)

    print(f"migration result: {'OK' if migrated == [True] else migrated}")
    print(f"active now: {svc.active}; NodeB holds "
          f"{svc.node_server('NodeB').store.size()} keys")
    a = svc.system.instance("NodeA").app.executed
    b = svc.system.instance("NodeB").app.executed
    print(f"requests served: {res.count} total "
          f"(NodeA {a}, NodeB {b}) — traffic flowed across the switch")
    print("per-second query rate:")
    for t, qps in res.qps_series(0.5):
        marker = "  <- migration window" if 1.0 <= t < 2.0 else ""
        print(f"  t={t:3.1f}s {qps:8.0f}/s{marker}")
    assert migrated == [True] and svc.system.failures == []
    print("done — the architecture moved the data; the routing policy "
          "(one host-language field) decided where requests go.")


if __name__ == "__main__":
    main()
