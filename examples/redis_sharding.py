#!/usr/bin/env python
"""Re-architecting redislite for sharding (paper sec. 5.2 / Fig. 23b).

Runs the same redis-benchmark-style workload against:

* the unmodified single server (baseline),
* the DSL sharding architecture, by key hash and by object size,
* the direct (non-DSL) control implementation,

and prints per-shard request distributions and latency statistics.

Run:  python examples/redis_sharding.py
"""

from repro.api import Simulator
from repro.arch.sharding import ShardedRedis
from repro.direct.sharding import DirectShardedRedis
from repro.redislite import (
    BenchDriver,
    DirectPort,
    RedisServer,
    WorkloadGenerator,
)

DURATION = 3.0
N_SHARDS = 4


def run_baseline(wl_seed: int) -> None:
    sim = Simulator()
    server = RedisServer()
    port = DirectPort(sim, server)
    wl = WorkloadGenerator(n_keys=1000, seed=wl_seed)
    for cmd in wl.preload_commands():
        server.execute(cmd)
    res = BenchDriver(sim, port, wl, clients=8).run(DURATION)
    print(f"baseline      : {res.count:7d} req  "
          f"p50={res.percentile(0.5)*1e6:7.0f}us  p99={res.percentile(0.99)*1e6:7.0f}us")


def run_dsl(mode: str, wl: WorkloadGenerator) -> None:
    size_table = {k: wl.key_size(k) for k in wl._keys} if mode == "size" else None
    svc = ShardedRedis(N_SHARDS, mode=mode, size_table=size_table)
    svc.preload(wl.preload_commands())
    res = BenchDriver(svc.sim, svc, wl, clients=8).run(DURATION)
    dist = [f"{c:6d}" for c in svc.shard_counts]
    print(f"dsl ({mode:4s})    : {res.count:7d} req  shards=[{' '.join(dist)}]  "
          f"p50={res.percentile(0.5)*1e6:7.0f}us")


def run_direct(wl: WorkloadGenerator) -> None:
    sim = Simulator()
    svc = DirectShardedRedis(sim, N_SHARDS)
    svc.preload(wl.preload_commands())
    res = BenchDriver(sim, svc, wl, clients=8).run(DURATION)
    dist = [f"{c:6d}" for c in svc.shard_counts]
    print(f"direct (key)  : {res.count:7d} req  shards=[{' '.join(dist)}]")


def main() -> None:
    print(f"== redislite sharding, {DURATION}s simulated, {N_SHARDS} shards ==")
    run_baseline(11)

    # even workload
    wl = WorkloadGenerator(n_keys=1000, seed=11)
    run_dsl("key", wl)

    # uneven workload: shard-residue weights 4:2:1:1 (the paper's
    # "uneven workloads place different pressure on different back-ends")
    wl_uneven = WorkloadGenerator(n_keys=1000, seed=11, shard_weights=(4, 2, 1, 1))
    svc = ShardedRedis(N_SHARDS, mode="key")
    svc.preload(wl_uneven.preload_commands())
    res = BenchDriver(svc.sim, svc, wl_uneven, clients=8).run(DURATION)
    dist = [f"{c:6d}" for c in svc.shard_counts]
    print(f"dsl uneven    : {res.count:7d} req  shards=[{' '.join(dist)}]  "
          f"(expect ~4:2:1:1)")

    # object-size sharding (0-4KB / 4-64KB / >64KB classes)
    wl_sized = WorkloadGenerator(
        n_keys=400, seed=11, size_class_weights=(0.7, 0.25, 0.05), get_ratio=0.8
    )
    run_dsl("size", wl_sized)

    run_direct(WorkloadGenerator(n_keys=1000, seed=11))
    print("done.")


if __name__ == "__main__":
    main()
