#!/usr/bin/env python
"""Quickstart: the paper's Fig. 3 two-instance program, end to end.

Shows the whole public API surface in one file:

1. write an architecture in the C-Saw DSL,
2. compile it (parse → validate → inline),
3. inspect its communication topology and formal event-structure
   semantics,
4. bind host-language blocks and state providers,
5. run it on the simulated distributed runtime.

Run:  python examples/quickstart.py
"""

from repro.api import System, compile_program
from repro.core import topology_edges
from repro.semantics import denote_program, to_text

SRC = """
instance_types { TF, TG }
instances { f: TF, g: TG }

def main(t) = start f(t) + start g(t)

def complain() = host LogComplaint; return

# The front instance: runs H1, snapshots its state into n, pushes it to
# g, and blocks until g retracts Work — Fig. 3's handshake, with Fig. 4's
# timeout handling.
def TF::junction(t) =
  | init prop !Work
  | init data n
  host H1;
  save(n);
  { write(n, g); assert[g] Work; wait[] !Work } otherwise[t] complain()

# The back instance: guarded on Work, so it only runs once engaged.
def TG::junction(t) =
  | init prop !Work
  | init data n
  | guard Work
  restore(n);
  host H2;
  retract[f] Work
"""


def main() -> None:
    prog = compile_program(SRC)

    print("junctions:", [j.qualified for j in prog.junctions])
    print("topology edges:", sorted(topology_edges(prog)))

    # Formal semantics: the event structure of f's junction (Fig. 18).
    sem = denote_program(prog, {"t": 5})
    print("\nevent structure of f::junction:")
    print(to_text(sem.junctions["f::junction"]))

    # Runtime: bind host blocks and state providers, then run.
    system = System(prog, latency=0.05)
    log = []

    system.bind_host("TF", "H1", lambda ctx: (ctx.take(0.1), log.append(("H1", ctx.now))))
    system.bind_host("TG", "H2", lambda ctx: (ctx.take(0.2), log.append(("H2", ctx.now))))
    system.bind_host("TF", "LogComplaint", lambda ctx: log.append(("complain", ctx.now)))

    app_state = {"counter": 42}
    system.bind_state(
        "TF",
        save=lambda app, inst: dict(app_state),
        restore=lambda app, inst, obj: None,
    )
    system.bind_state(
        "TG",
        save=lambda app, inst: None,
        restore=lambda app, inst, obj: log.append(("g received", obj)),
    )

    system.start(t=5.0)
    system.run_until(10.0)

    print("\nexecution log:")
    for entry in log:
        print(" ", entry)
    print("\nf's Work:", system.read_state("f::junction", "Work"))
    print("g's Work:", system.read_state("g::junction", "Work"))
    assert system.read_state("f::junction", "Work") is False
    print("\nOK — handshake completed on the simulated runtime.")


if __name__ == "__main__":
    main()
