"""Kleene-formula code generation for the junction compiler.

A *pure* formula — one built from propositions with statically-known
keys, ``false``, and the connectives — evaluates against nothing but the
junction's own value map.  For those we emit a specialized Python
function::

    def _g0(_V, _U=UNKNOWN):
        _v0 = _V.get('Req')
        if _v0 is not True and _v0 is not False:
            _v0 = _U
        return _v0

which returns the same three-valued result
(``True`` / ``False`` / :data:`~repro.core.formula.UNKNOWN`) as
:func:`repro.core.formula.evaluate` over the interpreter's prop
environment, without walking the formula tree per evaluation.

Formulas that need runtime context — ``gamma@F`` (a remote table),
``S(iota)`` (instance liveness), or a proposition indexed by an ``idx``
cursor (``!Work[tgt]``) — are *impure*: the caller falls back to the
interpreter's ``evaluate`` path for them.
"""

from __future__ import annotations

from ..core import ast as A
from ..core.formula import And, At, FalseF, Formula, Implies, Live, Not, Or, Prop


def is_pure(f: Formula, idx_names: frozenset[str] | set[str]) -> bool:
    """True when ``f`` can be compiled to a closed function over the
    junction's value map (no ``@``, no ``S(..)``, no idx-indexed
    propositions that resolve through the table at runtime)."""
    if isinstance(f, Prop):
        if isinstance(f.index, A.Ref):
            return not (f.index.is_simple and f.index.name in idx_names)
        return True
    if isinstance(f, FalseF):
        return True
    if isinstance(f, Not):
        return is_pure(f.operand, idx_names)
    if isinstance(f, (And, Or, Implies)):
        return is_pure(f.left, idx_names) and is_pure(f.right, idx_names)
    return False  # At / Live / anything unknown


def guard_keys(f: Formula) -> frozenset[str]:
    """The set of table keys a *pure* formula reads (its footprint).

    Only meaningful for formulas :func:`is_pure` accepts — impure
    formulas read state this walk cannot see (remote tables, liveness,
    idx cursors)."""
    out: set[str] = set()

    def walk(g: Formula) -> None:
        if isinstance(g, Prop):
            out.add(g.key())
        elif isinstance(g, Not):
            walk(g.operand)
        elif isinstance(g, (And, Or, Implies)):
            walk(g.left)
            walk(g.right)

    walk(f)
    return frozenset(out)


class _FormulaEmitter:
    """Emits SSA-style three-valued evaluation statements.

    Two addressing modes: without a layout, propositions load by name
    from a mapping (``_V.get('Req')`` — the public, layout-free form);
    with a :class:`~repro.runtime.kvtable.SlotLayout`, propositions
    the layout covers load slot-direct from the flat value list
    (``_V[3]``), which is the write-path specialization the junction
    compiler uses — ``_V`` is then the table's ``slots`` list."""

    def __init__(self, layout=None, tmp_prefix: str = "_v") -> None:
        self.lines: list[str] = []
        self._n = 0
        self._layout = layout
        #: temp-name prefix — the default suits a standalone function;
        #: inline emission into a larger scope (the junction compiler
        #: inlines case-arm conditions into the body) passes a
        #: site-unique prefix to keep temps from colliding
        self._tmp_prefix = tmp_prefix

    def _tmp(self) -> str:
        name = f"{self._tmp_prefix}{self._n}"
        self._n += 1
        return name

    def emit(self, f: Formula):
        """Returns ``('const', bool)`` or ``('var', name)``."""
        if isinstance(f, FalseF):
            return ("const", False)
        if isinstance(f, Prop):
            v = self._tmp()
            key = f.key()
            if self._layout is None:
                self.lines.append(f"    {v} = _V.get({key!r})")
            else:
                i = self._layout.slot_of(key)
                if i is None:
                    # undeclared at bind time: a validated junction
                    # never declares it later, so it reads UNKNOWN
                    self.lines.append(f"    {v} = _U  # {key!r}: undeclared")
                    return ("var", v)
                self.lines.append(f"    {v} = _V[{i}]  # {key!r}")
            self.lines.append(f"    if {v} is not True and {v} is not False:")
            self.lines.append(f"        {v} = _U")
            return ("var", v)
        if isinstance(f, Not):
            kind, val = self.emit(f.operand)
            if kind == "const":
                return ("const", not val)
            v = self._tmp()
            self.lines.append(f"    {v} = {val} if {val} is _U else (not {val})")
            return ("var", v)
        if isinstance(f, And):
            lk, lv = self.emit(f.left)
            rk, rv = self.emit(f.right)
            if lk == "const" and rk == "const":
                return ("const", lv and rv)
            if lk == "const":
                if lv is False:
                    return ("const", False)
                return (rk, rv)  # True && r == r
            if rk == "const":
                if rv is False:
                    return ("const", False)
                return (lk, lv)
            v = self._tmp()
            self.lines.append(
                f"    {v} = False if ({lv} is False or {rv} is False) "
                f"else (_U if ({lv} is _U or {rv} is _U) else True)"
            )
            return ("var", v)
        if isinstance(f, Or):
            lk, lv = self.emit(f.left)
            rk, rv = self.emit(f.right)
            if lk == "const" and rk == "const":
                return ("const", lv or rv)
            if lk == "const":
                if lv is True:
                    return ("const", True)
                return (rk, rv)  # False || r == r
            if rk == "const":
                if rv is True:
                    return ("const", True)
                return (lk, lv)
            v = self._tmp()
            self.lines.append(
                f"    {v} = True if ({lv} is True or {rv} is True) "
                f"else (_U if ({lv} is _U or {rv} is _U) else False)"
            )
            return ("var", v)
        if isinstance(f, Implies):
            # Kleene: l -> r  ==  !l || r (exactly how evaluate() rewrites it)
            return self.emit(Or(Not(f.left), f.right))
        raise ValueError(f"cannot compile formula node {type(f).__name__}")


def formula_function(name: str, f: Formula, layout=None) -> str:
    """Source of ``def name(_V, _U=UNKNOWN)`` computing ``f``'s
    three-valued truth.  Without ``layout``, ``_V`` is a by-name value
    mapping; with a junction's :class:`SlotLayout`, ``_V`` is the
    table's flat ``slots`` list and propositions compile to
    slot-direct loads."""
    em = _FormulaEmitter(layout)
    kind, val = em.emit(f)
    body = em.lines or []
    ret = repr(val) if kind == "const" else val
    lines = [f"def {name}(_V, _U=UNKNOWN):", *body, f"    return {ret}"]
    return "\n".join(lines)
