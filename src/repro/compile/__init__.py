"""Junction compiler — build-time codegen for bound junctions.

At :class:`~repro.runtime.system.System` build time each bound
junction's guard and body are lowered to a specialized Python module
(:mod:`.codegen`), executed with ``exec(compile(...))``, and attached to
the junction runtime as :class:`JunctionCode`.  The interpreter
dispatches to the compiled generator when one is present; the
tree-walking path remains the reference semantics and the automatic
fallback for anything the compiler does not cover (and for ``explore``'s
controlled scheduler, where ``System`` disables compilation so choice
points stay label-stable).

Toggling::

    from repro.api import compilation

    with compilation(False):        # force tree-walking interpretation
        sys_ = System(arch)

    src = generated_source(sys_, "cache::serve")   # dump generated code

Per-system override: ``System(arch, compiled=False)`` or an
``EngineSpec`` with ``compiled=False``.
"""

from __future__ import annotations

from contextlib import contextmanager

from .codegen import BodyCompiler, JunctionCode, compile_junction_code
from .formulas import formula_function, is_pure

__all__ = [
    "BodyCompiler",
    "JunctionCode",
    "compilation",
    "compile_default",
    "compile_junction_code",
    "formula_function",
    "generated_source",
    "is_pure",
]

_default_enabled = True


@contextmanager
def compilation(enabled: bool):
    """Context manager setting the ambient compile default for Systems
    built inside the block (explicit ``System(compiled=...)`` or an
    ``EngineSpec(compiled=...)`` still wins)."""
    global _default_enabled
    prev = _default_enabled
    _default_enabled = bool(enabled)
    try:
        yield
    finally:
        _default_enabled = prev


def compile_default() -> bool:
    """The ambient compile default (see :func:`compilation`)."""
    return _default_enabled


def generated_source(system, node: str) -> str | None:
    """The generated module source for a junction (``"inst::junction"``
    or a sole-junction instance name), or ``None`` when the junction
    runs interpreted."""
    if "::" in node:
        inst, jname = node.split("::", 1)
        jr = system.instances[inst].junction(jname)
    else:
        jr = system.instances[node].sole_junction()
    code = getattr(jr, "code", None)
    return code.source if code is not None else None
