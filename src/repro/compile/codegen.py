"""Junction body → specialized Python generator source.

At instance-bind time (:meth:`System._start_instance`) each junction's
specialized body is lowered to one flat generator function::

    def _body(ex, C):
        _t.set_slot(0, 'Req', False)
        ...
        yield Blocked('ack', msg_id=_mid)

mirroring :meth:`JunctionExecution.exec_expr` statement-for-statement —
same ``Blocked`` requests, same telemetry emissions, same failure types
with byte-identical messages — while eliminating the per-event
isinstance dispatch, the per-statement generator frames, and the
formula-tree walks (pure formulas compile via :mod:`.formulas`).

The technique is the one proven in :mod:`repro.serde.codegen`:
deterministic source text (equal junctions generate byte-identical
source — hypothesis-tested), loaded with ``exec(compile(...))``.
Runtime objects that cannot appear in source (resolved target
junctions, formula objects for fallback evaluation, AST nodes handed to
interpreter helpers) travel in the constant tuple ``C``.

Anything the lowering does not cover — unexpanded templates, unknown
terminators — makes the *whole junction* fall back to the tree-walking
interpreter, which stays the reference semantics.
"""

from __future__ import annotations

from ..core import ast as A
from ..core.formula import TRUE, UNKNOWN, Formula, propositions
from ..runtime.channels import Message
from ..runtime.host import HostContext
from ..runtime.interpreter import (
    Blocked,
    ControlSignal,
    RetryExhausted,
    ReturnSignal,
    RetrySignal,
    ScopedTimeout,
)
from ..runtime.kvtable import UNDEF, Update
from ..core.errors import (
    DslFailure,
    HostError,
    ReconsiderFailure,
    UndefError,
    VerifyFailure,
    VerifyUnknown,
)
from .formulas import _FormulaEmitter, formula_function, is_pure


class Unsupported(Exception):
    """A construct the compiler does not lower; the junction falls back
    to the interpreter (raised and caught internally)."""


#: names available to generated modules (injected at exec time — the
#: source stays import-free and byte-stable)
_NAMESPACE = {
    "UNKNOWN": UNKNOWN,
    "UNDEF": UNDEF,
    "Blocked": Blocked,
    "HostContext": HostContext,
    "Message": Message,
    "Update": Update,
    "ReturnSignal": ReturnSignal,
    "RetrySignal": RetrySignal,
    "ControlSignal": ControlSignal,
    "DslFailure": DslFailure,
    "HostError": HostError,
    "UndefError": UndefError,
    "VerifyFailure": VerifyFailure,
    "VerifyUnknown": VerifyUnknown,
    "ReconsiderFailure": ReconsiderFailure,
    "RetryExhausted": RetryExhausted,
    "ScopedTimeout": ScopedTimeout,
}


class JunctionCode:
    """Compiled artifact of one bound junction."""

    __slots__ = ("node", "source", "body_fn", "guard_fn", "consts", "eager")

    def __init__(self, node, source, body_fn, guard_fn, consts, eager):
        self.node = node
        #: the generated module source (``repro.api.generated_source``)
        self.source = source
        #: generator function ``body_fn(ex, C)`` — one call per attempt
        self.body_fn = body_fn
        #: ``guard_fn(slots) -> True|False|UNKNOWN`` or None (impure
        #: guard); takes the owning table's flat slot list
        self.guard_fn = guard_fn
        self.consts = consts
        #: bodies without parallel strands / transactions may run
        #: eagerly inside ``start()`` (strand materialized lazily on the
        #: first yield) — the sync fast path
        self.eager = eager


class _Dynamic(Exception):
    """Internal: an Arg is not a compile-time number."""


class BodyCompiler:
    """Lowers one bound junction; see :func:`compile_junction_code`."""

    def __init__(self, system, jr):
        self.system = system
        self.jr = jr
        self.node = jr.node
        self.consts: list[object] = []
        self.module_fns: list[str] = []
        self._tmp_n = 0
        self._fn_n = 0
        self._eager = True
        self._yields = False

    # -- small helpers ------------------------------------------------------

    def _tmp(self) -> str:
        self._tmp_n += 1
        return f"_x{self._tmp_n}"

    def _const(self, obj) -> str:
        self.consts.append(obj)
        return f"C[{len(self.consts) - 1}]"

    def _pred(self, f: Formula) -> str | None:
        """Module-level Kleene function for a pure formula, else None.

        Compiled against the junction's slot layout: ``_V`` in the
        generated module is the table's flat ``slots`` list and the
        predicate loads slot-direct (the write-path specialization)."""
        if not is_pure(f, self.jr.idx_names):
            return None
        name = f"_f{self._fn_n}"
        self._fn_n += 1
        self.module_fns.append(formula_function(name, f, self.jr.table.layout))
        return name

    def _slot_of(self, key: str) -> int | None:
        """Bind-time slot of ``key`` (declarations fixed the layout
        before codegen runs), or None if the junction does not declare
        it."""
        return self.jr.table.layout.slot_of(key)

    def _formula_cond(self, f: Formula) -> str:
        pred = self._pred(f)
        if pred is not None:
            return f"{pred}(_V) is True"
        return f"ex._formula_true({self._const(f)})"

    def _formula_cond_inline(self, f: Formula, tag: str):
        """Inline a pure formula at its use site: ``(lines, expr)``
        where ``lines`` (at function base indent) compute the Kleene
        value into a ``tag``-prefixed temp and ``expr`` tests it.

        Case-arm conditions use this instead of :meth:`_formula_cond`:
        a scheduling evaluates every arm condition on the miss path
        (the common storm case — no arm matches, fall to otherwise),
        so per-arm predicate-function calls are pure call overhead.
        Returns None for impure formulas, which must stay lazy calls —
        they walk runtime context and would be wasted work when an
        earlier arm matches."""
        if not is_pure(f, self.jr.idx_names):
            return None
        em = _FormulaEmitter(self.jr.table.layout, tmp_prefix=f"_c{tag}_")
        kind, val = em.emit(f)
        if kind == "const":
            return ([], "True" if val else "False")
        return (em.lines, f"{val} is True")

    def _fold_number(self, arg) -> str:
        """Compile-time fold of an Arg (mirrors ``eval_arg_number`` with
        the junction's bind-time parameters); dynamic fallback keeps the
        interpreter's failure behaviour for non-numeric args."""
        try:
            v = self._static_number(arg)
        except _Dynamic:
            return f"ex.eval_arg_number({self._const(arg)})"
        if v != v or v in (float("inf"), float("-inf")):
            return f"float({str(v)!r})"
        return repr(v)

    def _static_number(self, arg) -> float:
        if isinstance(arg, A.Num):
            return float(arg.value)
        if isinstance(arg, A.Ref) and arg.is_simple:
            v = self.jr.params.get(arg.name)
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                return float(v)
            raise _Dynamic
        if isinstance(arg, A.BinArith):
            l = self._static_number(arg.left)
            r = self._static_number(arg.right)
            return {"+": l + r, "-": l - r, "*": l * r, "/": l / r if r else float("inf")}[arg.op]
        raise _Dynamic

    def _static_target(self, target):
        """Bind-time resolution of a communication target, for the
        runtime-stable subset of :meth:`System.resolve_target` (the
        instance map and the junction's parameters never change after
        bind; ``idx`` cursors do)."""
        if isinstance(target, str):
            target = A.ref(target)
        if not isinstance(target, A.Ref):
            return None
        parts = target.parts
        if parts[0] == "me":
            return None
        if target.is_simple:
            name = parts[0]
            if name in self.jr.idx_names:
                return None  # runtime cursor — resolve per execution
            if name in self.jr.params:
                v = self.jr.params[name]
                if isinstance(v, str):
                    return self._static_target(v)
                return None
            if name in self.system.instances:
                try:
                    return self.system.instances[name].sole_junction()
                except Exception:
                    return None
            return None
        if len(parts) == 2 and parts[0] in self.system.instances:
            try:
                return self.system.instances[parts[0]].junction(parts[1])
            except Exception:
                return None
        return None

    def _target_expr(self, target, out, ind) -> str:
        tgt = self._static_target(target)
        if tgt is not None:
            return self._const(tgt)
        t = self._tmp()
        out.append(f"{'    ' * ind}{t} = _sys.resolve_target({self._const(target)}, _jr)")
        return t

    # -- statement lowering -------------------------------------------------

    def _block(self, e, out: list[str], ind: int) -> None:
        """Emit ``e``; guarantee at least one statement (``pass``)."""
        mark = len(out)
        self._stmt(e, out, ind)
        if len(out) == mark:
            out.append(f"{'    ' * ind}pass")

    def _stmt(self, e, out: list[str], ind: int) -> None:
        p = "    " * ind
        if isinstance(e, A.Skip):
            return
        if isinstance(e, A.Return):
            out.append(f"{p}raise ReturnSignal()")
            return
        if isinstance(e, A.Retry):
            out.append(f"{p}raise RetrySignal()")
            return
        if isinstance(e, A.Seq):
            for item in e.items:
                self._stmt(item, out, ind)
            return
        if isinstance(e, A.HostBlock):
            self._emit_host(e, out, ind)
            return
        if isinstance(e, A.Save):
            out.append(f"{p}ex._exec_save({self._const(e)})")
            return
        if isinstance(e, A.Restore):
            out.append(f"{p}ex._exec_restore({self._const(e)})")
            return
        if isinstance(e, A.Write):
            self._emit_write(e, out, ind)
            return
        if isinstance(e, (A.Assert, A.Retract)):
            self._emit_assert(e, isinstance(e, A.Assert), out, ind)
            return
        if isinstance(e, A.Keep):
            out.append(f"{p}_t.keep({tuple(e.keys)!r})")
            return
        if isinstance(e, A.Wait):
            self._emit_wait(e, out, ind)
            return
        if isinstance(e, A.Verify):
            self._emit_verify(e, out, ind)
            return
        if isinstance(e, A.FateBlock):
            out.append(f"{p}try:")
            self._block(e.body, out, ind + 1)
            out.append(f"{p}except ReturnSignal:")
            out.append(f"{p}    pass")
            return
        if isinstance(e, A.Transaction):
            self._emit_transaction(e, out, ind)
            return
        if isinstance(e, A.Otherwise):
            self._emit_otherwise(e, out, ind)
            return
        if isinstance(e, (A.Par, A.RepPar)):
            self._emit_parallel(e.items, out, ind)
            return
        if isinstance(e, A.Case):
            self._emit_case(e, out, ind)
            return
        if isinstance(e, A.Start):
            out.append(f"{p}_sys.exec_start({self._const(e)}, _jr)")
            return
        if isinstance(e, A.Stop):
            out.append(f"{p}_sys.exec_stop({self._const(e)}, _jr)")
            return
        # Call / For / If / anything unknown: the interpreter fails these
        # at runtime — keep that behaviour by not compiling the junction
        raise Unsupported(type(e).__name__)

    # -- host ---------------------------------------------------------------

    def _emit_host(self, e: A.HostBlock, out, ind) -> None:
        p = "    " * ind
        fn, hc, exc, err = self._tmp(), self._tmp(), self._tmp(), self._tmp()
        missing = f"{self.node}: no host binding for {e.name!r}"
        prefix = f"{self.node}: host block {e.name!r} raised "
        out.append(f"{p}{fn} = _jr.instance.type.host_fns.get({e.name!r})")
        out.append(f"{p}if {fn} is None:")
        out.append(f"{p}    raise HostError({missing!r})")
        out.append(f"{p}if _INLINE:")
        out.append(f"{p}    {hc} = HostContext(_sys, _jr, {tuple(e.writes)!r})")
        out.append(f"{p}    try:")
        out.append(f"{p}        {fn}({hc})")
        out.append(f"{p}    except DslFailure:")
        out.append(f"{p}        raise")
        out.append(f"{p}    except Exception as {exc}:")
        out.append(f"{p}        {err} = HostError({prefix!r} + repr({exc}))")
        out.append(f"{p}        {err}.__cause__ = {exc}")
        out.append(f"{p}        raise {err} from {exc}")
        out.append(f"{p}else:")
        out.append(f"{p}    {hc} = HostContext(_sys, _jr, {tuple(e.writes)!r}, defer_writes=True)")
        out.append(f"{p}    yield Blocked('host', fn={fn}, ctx={hc}, name={e.name!r})")
        out.append(f"{p}if {hc}.elapsed > 0:")
        out.append(f"{p}    yield Blocked('sleep', duration={hc}.elapsed)")
        self._yields = True

    # -- communication ------------------------------------------------------

    def _emit_remote_update(self, tgt: str, key_expr: str, value_expr: str, out, ind) -> None:
        p = "    " * ind
        mid = self._tmp()
        out.append(f"{p}{mid} = _sys.network.next_msg_id()")
        out.append(
            f"{p}_tel.bind_message({mid}, _tel.emit('send', {self.node!r}, "
            f"parent=ex.sched_event, dst={tgt}.node, key={key_expr}, msg_id={mid}))"
        )
        out.append(
            f"{p}_sys.delivery.send(Message(src={self.node!r}, dst={tgt}.node, "
            f"kind='update', payload=Update(key={key_expr}, value={value_expr}, "
            f"src={self.node!r}), msg_id={mid}), "
            f"on_fail=lambda exc, m={mid}: ex.on_delivery_failure(m, exc))"
        )
        out.append(f"{p}yield Blocked('ack', msg_id={mid})")
        self._yields = True

    def _emit_write(self, e: A.Write, out, ind) -> None:
        p = "    " * ind
        val = self._tmp()
        slot = self._slot_of(e.name)
        if slot is not None:
            out.append(f"{p}{val} = _V[{slot}]  # {e.name!r}")
        else:
            out.append(f"{p}{val} = _t.get({e.name!r})")
        out.append(f"{p}if {val} is UNDEF:")
        out.append(f"{p}    raise UndefError({f'{self.node}: write({e.name}) of undef'!r})")
        tgt = self._target_expr(e.target, out, ind)
        self._emit_remote_update(tgt, repr(e.name), val, out, ind)

    def _emit_assert(self, e, value: bool, out, ind) -> None:
        p = "    " * ind
        idx = e.index
        slot = None
        if isinstance(idx, A.Ref) and idx.is_simple and idx.name in self.jr.idx_names:
            iv, key = self._tmp(), self._tmp()
            islot = self._slot_of(idx.name)
            if islot is not None:
                out.append(f"{p}{iv} = _V[{islot}]  # {idx.name!r}")
            else:
                out.append(f"{p}{iv} = _t.get({idx.name!r})")
            out.append(f"{p}if {iv} is UNDEF:")
            out.append(
                f"{p}    raise UndefError({f'{self.node}: index {idx.name!r} is undef'!r})"
            )
            out.append(f"{p}{key} = {e.prop + '['!r} + str({iv}) + ']'")
            key_expr = key
        else:
            key_expr = repr(e.key())
            slot = self._slot_of(e.key())
        if isinstance(e.target, A.SelfTarget):
            if slot is not None:
                out.append(f"{p}_t.set_slot({slot}, {key_expr}, {value!r})")
            else:
                out.append(f"{p}_t.set_local({key_expr}, {value!r})")
            return
        tgt = self._target_expr(e.target, out, ind)
        sb = self._tmp()
        out.append(f"{p}{sb} = _t.recv_seq_of({key_expr})")
        self._emit_remote_update(tgt, key_expr, repr(value), out, ind)
        if slot is not None:
            # declared at bind time — the membership test is statically
            # true (slots never disappear), only the late-ack check runs
            out.append(f"{p}if _t.recv_seq_of({key_expr}) == {sb}:")
            out.append(f"{p}    _t.set_slot({slot}, {key_expr}, {value!r})")
        else:
            out.append(f"{p}if _t.has({key_expr}) and _t.recv_seq_of({key_expr}) == {sb}:")
            out.append(f"{p}    _t.set_local({key_expr}, {value!r})")

    # -- wait / verify ------------------------------------------------------

    def _emit_wait(self, e: A.Wait, out, ind) -> None:
        p = "    " * ind
        if is_pure(e.formula, self.jr.idx_names):
            # resolve_indices is the identity on pure formulas, so the
            # formula object and admit set are bind-time constants and
            # wake-up checks run the compiled predicate
            pred = self._pred(e.formula)
            admits = frozenset(propositions(e.formula)) | frozenset(e.keys)
            out.append(
                f"{p}yield Blocked('wait', formula={self._const(e.formula)}, "
                f"admits={self._const(admits)}, pred={pred})"
            )
            self._yields = True
            return
        out.append(f"{p}yield from ex._exec_wait({self._const(e)})")
        self._yields = True

    def _emit_verify(self, e: A.Verify, out, ind) -> None:
        p = "    " * ind
        pred = self._pred(e.formula)
        v = self._tmp()
        if pred is not None:
            out.append(f"{p}{v} = {pred}(_V)")
        else:
            out.append(f"{p}{v} = ex.eval_formula({self._const(e.formula)})")
        undecidable = f"{self.node}: verify {e.formula} is undecidable (instance not running)"
        failed = f"{self.node}: verify {e.formula} failed"
        out.append(f"{p}if {v} is UNKNOWN:")
        out.append(f"{p}    raise VerifyUnknown({undecidable!r})")
        out.append(f"{p}if {v} is not True:")
        out.append(f"{p}    raise VerifyFailure({failed!r})")

    # -- scopes -------------------------------------------------------------

    def _emit_transaction(self, e: A.Transaction, out, ind) -> None:
        p = "    " * ind
        tx = self._tmp()
        self._eager = False  # the undo log needs the owning strand
        out.append(f"{p}{tx} = ex.tx_open()")
        out.append(f"{p}try:")
        self._block(e.body, out, ind + 1)
        out.append(f"{p}except ControlSignal:")
        out.append(f"{p}    ex.tx_commit({tx})")
        out.append(f"{p}    raise")
        out.append(f"{p}except DslFailure:")
        out.append(f"{p}    ex.tx_rollback({tx})")
        out.append(f"{p}    raise")
        out.append(f"{p}except GeneratorExit:")
        out.append(f"{p}    ex.tx_rollback({tx})")
        out.append(f"{p}    raise")
        out.append(f"{p}else:")
        out.append(f"{p}    ex.tx_commit({tx})")

    def _emit_otherwise(self, e: A.Otherwise, out, ind) -> None:
        p = "    " * ind
        sc, f = self._tmp(), self._tmp()
        if e.timeout is None:
            out.append(f"{p}{sc} = None")
        else:
            out.append(f"{p}{sc} = ex.open_deadline({self._fold_number(e.timeout)})")
        out.append(f"{p}try:")
        self._block(e.body, out, ind + 1)
        out.append(f"{p}except DslFailure as {f}:")
        out.append(f"{p}    ex._close_scope({sc})")
        out.append(f"{p}    if isinstance({f}, ScopedTimeout) and {f}.scope is not {sc}:")
        out.append(f"{p}        raise")
        self._block(e.handler, out, ind + 1)
        out.append(f"{p}except BaseException:")
        out.append(f"{p}    ex._close_scope({sc})")
        out.append(f"{p}    raise")
        out.append(f"{p}else:")
        out.append(f"{p}    ex._close_scope({sc})")

    # -- parallel -----------------------------------------------------------

    def _emit_parallel(self, items, out, ind) -> None:
        p = "    " * ind
        self._eager = False  # children need a parent strand from the start
        fnames = []
        for item in items:
            fname = f"_par{self._fn_n}"
            self._fn_n += 1
            self._emit_gen_function(fname, item)
            fnames.append(fname)
        ch = self._tmp()
        gens = ", ".join(f"{fn}(ex, C)" for fn in fnames)
        trail = "," if len(fnames) == 1 else ""
        out.append(f"{p}{ch} = ex.spawn_par(({gens}{trail}))")
        out.append(f"{p}yield Blocked('join', children={ch})")
        self._yields = True

    # -- case ---------------------------------------------------------------

    def _emit_case(self, e: A.Case, out, ind) -> None:
        p = "    " * ind
        if e.otherwise is None:
            raise Unsupported("case without otherwise")
        n = self._tmp_n = self._tmp_n + 1
        low, pm, ps, m, snap = f"_l{n}", f"_pm{n}", f"_ps{n}", f"_m{n}", f"_sn{n}"
        conds = []
        pre_lines: list[str] = []
        for i, arm in enumerate(e.arms):
            if not isinstance(arm, A.CaseArm):
                raise Unsupported(type(arm).__name__)
            if arm.terminator not in ("break", "next", "reconsider"):
                raise Unsupported(f"case terminator {arm.terminator!r}")
            inlined = self._formula_cond_inline(arm.formula, f"{n}a{i}")
            if inlined is None:
                conds.append(f"ex._formula_true({self._const(arm.formula)})")
            else:
                lines, expr = inlined
                pre_lines.extend(lines)
                conds.append(expr)
        out.append(f"{p}{low} = 0")
        out.append(f"{p}{pm} = None")
        out.append(f"{p}{ps} = None")
        out.append(f"{p}while True:")
        q = p + "    "
        out.append(f"{q}{m} = None")
        # pure arm conditions, inlined and evaluated eagerly once per
        # match round: side-effect free, and the common miss path (no
        # arm matches) reads every one of them anyway
        for line in pre_lines:
            out.append(q + line[4:])
        for i, cond in enumerate(conds):
            kw = "if" if i == 0 else "elif"
            guard = f"{low} <= {i} and " if i > 0 else f"{low} <= 0 and "
            out.append(f"{q}{kw} {guard}({cond}):")
            out.append(f"{q}    {m} = {i}")
        out.append(f"{q}if {m} is None:")
        self._block(e.otherwise, out, ind + 2)
        out.append(f"{q}    break")
        out.append(f"{q}{snap} = ex._prop_snapshot()")
        out.append(f"{q}if {pm} is not None and {m} == {pm} and {snap} == {ps}:")
        prefix = f"{self.node}: reconsider re-matched arm "
        out.append(
            f"{q}    raise ReconsiderFailure({prefix!r} + str({m}) + ' with unchanged state')"
        )
        for i, arm in enumerate(e.arms):
            kw = "if" if i == 0 else "elif"
            out.append(f"{q}{kw} {m} == {i}:")
            self._block(arm.body, out, ind + 2)
            term = arm.terminator
            if term == "break":
                out.append(f"{q}    break")
            elif term == "next":
                out.append(f"{q}    {low} = {i + 1}")
                out.append(f"{q}    {pm} = None")
                out.append(f"{q}    {ps} = None")
                out.append(f"{q}    continue")
            else:  # reconsider
                out.append(f"{q}    {low} = 0")
                out.append(f"{q}    {pm} = {i}")
                out.append(f"{q}    {ps} = {snap}")
                out.append(f"{q}    continue")

    # -- function assembly ---------------------------------------------------

    def _emit_gen_function(self, fname: str, body, root: bool = False) -> None:
        """A module-level generator function with the standard preamble
        (used for the root body and each parallel child).

        ``root`` compiles the interpreter's retry/return loop into the
        function itself, so the generated generator can serve as the
        execution's root strand directly — no wrapper generator frame
        per scheduling."""
        saved = self._yields
        self._yields = False
        stmts: list[str] = []
        self._block(body, stmts, 3 if root else 1)
        lines = [
            f"def {fname}(ex, C):",
            "    _sys = ex.system",
            "    _jr = ex.jr",
            "    _t = ex.table",
            "    _V = _t.slots",
            "    _U = UNKNOWN",
            "    _tel = _sys.telemetry",
            "    _INLINE = _sys.engine.executor.inline",
        ]
        if root:
            lines += [
                "    _retry = 0",
                "    while True:",
                "        try:",
                *stmts,
                "            return",
                "        except ReturnSignal:",
                "            return",
                "        except RetrySignal:",
                "            _retry += 1",
                "            if _retry > ex._retry_budget:",
                f"                raise RetryExhausted({self.node!r}"
                " + ': retry invoked more than '"
                " + str(ex._retry_budget) + ' times')",
            ]
        else:
            lines += stmts
        if not self._yields:
            lines.append("    if False:")
            lines.append("        yield None")
        self.module_fns.append("\n".join(lines))
        self._yields = saved

    def compile(self) -> JunctionCode:
        guard = self.jr.guard if self.jr.guard is not None else TRUE
        guard_name = None
        if is_pure(guard, self.jr.idx_names):
            guard_name = "_guard"
            self.module_fns.append(
                formula_function(guard_name, guard, self.jr.table.layout)
            )
        self._emit_gen_function("_body", self.jr.body, root=True)
        header = (
            '"""Auto-generated by repro.compile.codegen -- do not edit.\n'
            "\n"
            f"Specialized strand body for junction {self.node!r}.\n"
            '"""\n'
        )
        source = header + "\n\n\n".join(self.module_fns) + "\n"
        ns = dict(_NAMESPACE)
        exec(compile(source, f"<generated-junction:{self.node}>", "exec"), ns)
        return JunctionCode(
            node=self.node,
            source=source,
            body_fn=ns["_body"],
            guard_fn=ns[guard_name] if guard_name is not None else None,
            consts=tuple(self.consts),
            eager=self._eager,
        )


def compile_junction_code(system, jr) -> JunctionCode | None:
    """Compile one bound junction; ``None`` when any construct is
    outside the lowering (the interpreter remains the reference path)."""
    if jr.body is None:
        return None
    try:
        return BodyCompiler(system, jr).compile()
    except Unsupported:
        return None
