"""Schedule exploration: controlled scheduling, interleaving search and
invariant checking over the deterministic simulator.

The deterministic simulator executes *one* linearization of an
architecture's concurrency.  This package turns every co-enabled event
set into an explicit choice point (:class:`~repro.runtime.sim.ScheduleController`),
searches the resulting choice tree (exhaustive BFS/DFS, DPOR-lite
partial-order reduction, seeded random fuzzing), checks invariants over
each run's final state, and serializes failing interleavings as
replayable JSON schedules.  See ``docs/TESTING.md`` and
``repro explore --help``.
"""

from .controller import ChoicePoint, RecordingController, ScheduleDivergence
from .explorer import (
    ExplorationResult,
    RunResult,
    STRATEGIES,
    Violation,
    explore,
    replay,
    run_schedule,
)
from .invariants import (
    INVARIANTS,
    Invariant,
    check_invariants,
    get_invariants,
    register_invariant,
)
from .linearize import Op, check_linearizable
from .scenarios import (
    CsawScenario,
    ReconfigScenario,
    Scenario,
    arch_scenario,
    load_py_scenario,
    make_reconfig_scenario,
    resolve_scenario,
)
from .schedule import Schedule
from .witness import RaceWitness, witness_findings, witness_race

__all__ = [
    "ChoicePoint",
    "CsawScenario",
    "ExplorationResult",
    "INVARIANTS",
    "Invariant",
    "Op",
    "RaceWitness",
    "ReconfigScenario",
    "RecordingController",
    "RunResult",
    "STRATEGIES",
    "Scenario",
    "Schedule",
    "ScheduleDivergence",
    "Violation",
    "arch_scenario",
    "check_invariants",
    "check_linearizable",
    "explore",
    "get_invariants",
    "load_py_scenario",
    "make_reconfig_scenario",
    "register_invariant",
    "replay",
    "resolve_scenario",
    "run_schedule",
    "witness_findings",
    "witness_race",
]
