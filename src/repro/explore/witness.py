"""Concrete witnesses for static race findings.

The analyzer's race pass (:mod:`repro.analysis.races`) reports that
two junctions write the same key of the same table with no ordering —
a *static* claim with an abstract event witness.  This module tries to
make each such claim *concrete*: explore interleavings of a scenario
and watch the final value of the racy ``(node, key)``.  If two
schedules end with different values, the race is real under this
workload, and the diverging schedule is returned as a replayable
artifact; otherwise the finding is reported as not reproduced under
the budget (which does not refute it — the workload may simply never
co-enable the writes).
"""

from __future__ import annotations

from dataclasses import dataclass

from .explorer import ExplorationResult, RunResult, explore
from .schedule import Schedule
from .scenarios import Scenario

_UNSET = object()


@dataclass
class RaceWitness:
    """Outcome of one exploration attempt for one race finding."""

    node: str
    key: str
    kind: str  # the finding's kind (write-write-race, …)
    reproduced: bool
    baseline: object = None  # final value under the default schedule
    divergent: object = None  # differing final value, when reproduced
    schedule: Schedule | None = None  # schedule reaching ``divergent``
    runs: int = 0

    def describe(self) -> str:
        if self.reproduced:
            return (
                f"{self.kind} at {self.node} key {self.key!r}: CONFIRMED — "
                f"final value {self.baseline!r} under the default schedule "
                f"vs {self.divergent!r} under schedule "
                f"{self.schedule.schedule_id} ({self.runs} run(s))"
            )
        return (
            f"{self.kind} at {self.node} key {self.key!r}: not reproduced "
            f"under budget ({self.runs} run(s))"
        )

    def to_json(self) -> dict:
        out = {
            "node": self.node,
            "key": self.key,
            "kind": self.kind,
            "reproduced": self.reproduced,
            "runs": self.runs,
        }
        if self.reproduced:
            out["baseline"] = repr(self.baseline)
            out["divergent"] = repr(self.divergent)
            out["schedule"] = self.schedule.to_json()
        return out


def _final_value(system, node: str, key: str):
    """The post-run value of ``key`` in ``node``'s table (``_UNSET``
    when the node or key does not exist at runtime)."""
    try:
        jr = system.junction(node)
    except Exception:
        return _UNSET
    return jr.table.values.get(key, _UNSET)


def witness_race(
    scenario: Scenario,
    node: str,
    key: str,
    *,
    kind: str = "race",
    strategy: str = "dpor",
    budget: int = 64,
    depth: int | None = None,
    seed: int = 0,
) -> RaceWitness:
    """Explore ``scenario`` looking for two schedules that leave
    ``node``'s ``key`` with different final values."""
    state: dict = {}

    def on_run(res: RunResult) -> bool:
        v = _final_value(res.system, node, key)
        if "baseline" not in state:
            state["baseline"] = v
            return False
        if v is not _UNSET and state["baseline"] is not _UNSET and v != state["baseline"]:
            state["divergent"] = v
            state["schedule"] = res.schedule
            return True  # stop: a concrete witness exists
        return False

    # invariants off: the witness search only compares final values
    result: ExplorationResult = explore(
        scenario,
        strategy=strategy,
        budget=budget,
        depth=depth,
        invariants=(),
        seed=seed,
        on_run=on_run,
    )
    reproduced = "divergent" in state
    return RaceWitness(
        node=node,
        key=key,
        kind=kind,
        reproduced=reproduced,
        baseline=None if state.get("baseline") is _UNSET else state.get("baseline"),
        divergent=state.get("divergent"),
        schedule=state.get("schedule"),
        runs=result.runs,
    )


def witness_findings(
    scenario: Scenario,
    findings,
    *,
    strategy: str = "dpor",
    budget: int = 64,
    depth: int | None = None,
    seed: int = 0,
) -> list[RaceWitness]:
    """One exploration attempt per unsuppressed race finding."""
    out = []
    for f in findings:
        if f.check != "race" or f.suppressed:
            continue
        out.append(
            witness_race(
                scenario,
                f.node,
                f.key,
                kind=f.kind,
                strategy=strategy,
                budget=budget,
                depth=depth,
                seed=seed,
            )
        )
    return out
