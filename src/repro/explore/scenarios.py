"""Exploration scenarios: reproducible builds + workloads to explore.

A :class:`Scenario` packages everything the explorer needs to run one
schedule from scratch — reset-replay exploration constructs a *fresh*
system for every schedule, so a scenario must be a pure recipe: same
build, same seeds, same workload every time.  The only thing allowed
to vary between runs is the interleaving the controller picks.

Three scenario sources mirror the CLI targets:

* :func:`arch_scenario` — a shipped architecture name; each of the ten
  architectures gets a small deterministic workload (a few store
  commands, a job burst, a snapshot round) sized for exploration,
  where hundreds of runs must stay cheap;
* :class:`CsawScenario` — a ``.csaw`` source run bare (no host
  bindings), for pure-DSL fixtures such as the racy corpus under
  ``tests/explore``;
* ``.py`` targets are loaded by the CLI via :func:`load_py_scenario`:
  the script must define ``build_scenario() -> Scenario``.
"""

from __future__ import annotations

from pathlib import Path

from ..core.compiler import compile_program
from ..runtime.system import System
from .linearize import Op


class Scenario:
    """A reproducible build + drive recipe."""

    #: invariants checked by default for this scenario
    invariants: tuple[str, ...] = ("no-failures", "convergence", "at-most-once")

    def __init__(self, name: str):
        self.name = name

    def run(self) -> System:
        """Build a fresh system, drive the workload to the horizon and
        return the (finished) system.  Runs under ``use_controller``,
        so every Simulator constructed here is controlled."""
        raise NotImplementedError

    def observe(self, system: System) -> dict:
        """Scenario-level observations for invariants (e.g. the timed
        operation history under ``"history"``)."""
        return {}


class CsawScenario(Scenario):
    """A bare ``.csaw`` program: start main, run to the horizon."""

    def __init__(
        self,
        source: str,
        *,
        name: str = "csaw",
        config: dict | None = None,
        horizon: float = 30.0,
    ):
        super().__init__(name)
        self.source = source
        self.config = config or {}
        self.horizon = horizon
        self.program = compile_program(source, config=self.config)  # fail fast

    def run(self) -> System:
        system = System(compile_program(self.source, config=self.config))
        system.start()
        system.run_until(self.horizon)
        return system


def load_py_scenario(path: Path) -> Scenario:
    """Load a ``.py`` target: the script must define
    ``build_scenario() -> Scenario``."""
    import runpy

    ns = runpy.run_path(str(path))
    build = ns.get("build_scenario")
    if build is None:
        raise SystemExit(
            f"error: {path} defines no build_scenario() — an explorable "
            "script must expose build_scenario() -> repro.explore.Scenario"
        )
    sc = build()
    if not isinstance(sc, Scenario):
        raise SystemExit(f"error: {path}: build_scenario() returned {type(sc).__name__}")
    return sc


# ---------------------------------------------------------------------------
# Shipped-architecture scenarios
# ---------------------------------------------------------------------------


class _RedisArchScenario(Scenario):
    """Common driver for the redis-backed architectures: preload a few
    keys, issue a deterministic GET/SET mix, record a timed history for
    the linearizability invariant."""

    invariants = ("no-failures", "convergence", "at-most-once", "linearizable")

    #: (kind, key, value) — two writers racing on "a" plus reads
    WORKLOAD = (
        ("SET", "a", b"1"),
        ("SET", "b", b"x"),
        ("SET", "a", b"2"),
        ("GET", "a", None),
        ("GET", "b", None),
    )

    def __init__(self, name: str, horizon: float = 20.0):
        super().__init__(name)
        self.horizon = horizon

    def build(self):
        raise NotImplementedError

    def run(self) -> System:
        from ..redislite import Command

        self._svc = svc = self.build()
        history: list[Op] = []
        sim = svc.system.sim

        def submit(kind, key, value):
            start = sim.now
            cmd = Command(kind, key, value) if kind == "SET" else Command(kind, key)

            def done(reply, k=kind, ky=key, v=value, s=start):
                got = v if k == "SET" else reply.value
                history.append(
                    Op(kind=k, key=ky, value=got, start=s, end=sim.now, ok=bool(reply.ok))
                )

            svc.submit(cmd, done)

        # sequential submits with small gaps keep per-step co-enabled
        # sets small; the interesting concurrency is inside the runtime
        for kind, key, value in self.WORKLOAD:
            submit(kind, key, value)
            svc.system.run_until(sim.now + 2.0)
        svc.system.run_until(self.horizon)
        self._history = history
        return svc.system

    def observe(self, system: System) -> dict:
        return {"history": self._history}


class _CachingScenario(_RedisArchScenario):
    def build(self):
        from ..arch.caching import CachedRedis

        return CachedRedis(capacity=8, seed=0)


class _ShardingScenario(_RedisArchScenario):
    def build(self):
        from ..arch.sharding import ShardedRedis

        return ShardedRedis(n_shards=2, seed=0)


class _ParallelShardingScenario(_RedisArchScenario):
    def build(self):
        from ..arch.sharding import ParallelShardedRedis

        return ParallelShardedRedis(n_backends=3, seed=0)


class _FailoverScenario(_RedisArchScenario):
    def build(self):
        from ..arch.failover import FailoverRedis

        return FailoverRedis(timeout=0.5, seed=0)


class _FastFailoverScenario(_RedisArchScenario):
    def build(self):
        from ..arch.failover import FastFailoverRedis

        return FastFailoverRedis(timeout=0.5, seed=0)


class _WatchedScenario(_RedisArchScenario):
    def build(self):
        from ..arch.watched import WatchedRedis

        return WatchedRedis(timeout=0.5, seed=0)


class _MigrationScenario(_RedisArchScenario):
    """Redis workload followed by a live migration."""

    def build(self):
        from ..arch.migration import MigratableRedis

        return MigratableRedis(seed=0)

    def run(self) -> System:
        system = super().run()
        self._svc.migrate("NodeB")
        system.run_until(system.now + 10.0)
        return system


class _BrokerScenarioBase(Scenario):
    """Common driver for the broker architectures: a deterministic
    publish/fetch/commit mix with two keys racing on one partition.
    No ``linearizable`` here — the history invariant speaks GET/SET;
    the broker's ordering guarantee (per-key offset order) is asserted
    directly in :meth:`observe` consumers via the offsets returned."""

    invariants = ("no-failures", "convergence", "at-most-once")

    #: (op, key, value) — publishes followed by a fetch and a commit
    WORKLOAD = (
        ("PUB", "a", b"1"),
        ("PUB", "b", b"x"),
        ("PUB", "a", b"2"),
        ("FETCH", "a", None),
        ("COMMIT", "a", None),
    )

    def __init__(self, name: str, horizon: float = 20.0):
        super().__init__(name)
        self.horizon = horizon

    def build(self):
        raise NotImplementedError

    def run(self) -> System:
        from ..brokerlite import BrokerRequest

        self._svc = svc = self.build()
        results: list[tuple] = []
        sim = svc.system.sim

        def submit(op, key, value):
            p = svc.partition_of({"op": op, "key": key, "partition": 0})
            if op == "PUB":
                req = BrokerRequest(op="PUB", partition=0, key=key, value=value)
            elif op == "FETCH":
                req = BrokerRequest(op="FETCH", partition=p, offset=0, max_records=8)
            else:
                req = BrokerRequest(op="COMMIT", partition=p, group="g", offset=1)

            def done(reply, op=op, key=key):
                results.append(
                    (op, key, bool(reply.ok), reply.offset,
                     len(reply.records) if reply.records is not None else None)
                )

            svc.submit(req, done)

        for op, key, value in self.WORKLOAD:
            submit(op, key, value)
            svc.system.run_until(sim.now + 2.0)
        svc.system.run_until(self.horizon)
        self._results = results
        return svc.system

    def observe(self, system: System) -> dict:
        return {"results": list(self._results)}


class _BrokerShardedScenario(_BrokerScenarioBase):
    def build(self):
        from ..arch.broker import ShardedBroker

        return ShardedBroker(n_partitions=2, seed=0)


class _BrokerFailoverScenario(_BrokerScenarioBase):
    def build(self):
        from ..arch.broker import ReplicatedBroker

        return ReplicatedBroker(timeout=0.5, seed=0)


class BrokerReconfigScenario(Scenario):
    """The broker re-partitioned mid-workload (2 → 3 partitions):
    publishes are scheduled to land inside the quiesce window, so
    exploration drives the transition's races.  Checked by
    ``reconfig-no-drop``.  Like :class:`ReconfigScenario`, deliberately
    NOT in ``_ARCH_SCENARIOS`` (the shipped table is part of the
    differential's byte-compared surface)."""

    invariants = (
        "no-failures",
        "convergence",
        "at-most-once",
        "reconfig-no-drop",
    )

    def __init__(self, name: str = "broker-reconfig", horizon: float = 30.0):
        super().__init__(name)
        self.horizon = horizon

    def run(self) -> System:
        from ..arch.broker import ShardedBroker
        from ..brokerlite import BrokerRequest

        self._svc = svc = ShardedBroker(n_partitions=2, seed=0)
        sys_ = svc.system
        submitted: list[int] = []
        completed: list[int] = []
        failed: list[tuple[int, str]] = []

        def submit(rid: int, key: str, value: bytes):
            submitted.append(rid)

            def done(reply, rid=rid):
                if reply.ok:
                    completed.append(rid)
                else:
                    failed.append((rid, "reply not ok"))

            svc.submit(BrokerRequest(op="PUB", partition=0, key=key, value=value), done)

        submit(0, "a", b"0")
        sys_.run_until(sys_.now + 2.0)
        # these land while the transition quiesces/replays — the race
        # under exploration
        sys_.clock.call_after(0.0, lambda: submit(1, "b", b"1"))
        sys_.clock.call_after(0.002, lambda: submit(2, "c", b"2"))
        report = svc.reconfigure_partitions(3)
        self._report = report
        sys_.run_until(self.horizon)
        self._obs = {
            "submitted": submitted,
            "completed": completed,
            "failed": failed,
            "reconfig_ok": report.ok,
            "reconfig_reason": report.reason,
        }
        return sys_

    def observe(self, system: System) -> dict:
        return dict(self._obs)


def make_broker_reconfig_scenario(horizon: float = 30.0) -> Scenario:
    """The broker live re-partitioning exploration scenario (2 → 3
    partitions with publishes racing the quiesce window)."""
    return BrokerReconfigScenario(horizon=horizon)


class _ElasticScenario(Scenario):
    """Job burst, a scale-out, another burst."""

    def __init__(self, name: str, horizon: float = 30.0):
        super().__init__(name)
        self.horizon = horizon

    def run(self) -> System:
        from ..arch.elastic import ElasticWorkers

        svc = ElasticWorkers(seed=0)
        done = []
        for _ in range(3):
            svc.submit_job(2, done.append)
        svc.system.run_until(svc.system.now + 8.0)
        svc.scale_out()
        svc.system.run_until(svc.system.now + 4.0)
        for _ in range(3):
            svc.submit_job(2, done.append)
        svc.system.run_until(self.horizon)
        self._done = done
        return svc.system

    def observe(self, system: System) -> dict:
        return {"jobs_done": len(self._done)}


class _SnapshotScenario(Scenario):
    """Two audited snapshot rounds over the remote-snapshot arch."""

    def __init__(self, name: str, horizon: float = 30.0):
        super().__init__(name)
        self.horizon = horizon

    def run(self) -> System:
        from ..arch.snapshot import RemoteAuditor

        aud = RemoteAuditor(placement="cross-vm", seed=0)
        released = []
        hook = aud.audit_hook()
        hook({"x": 1}, lambda: released.append(aud.system.now))
        aud.system.run_until(aud.system.now + 8.0)
        hook({"x": 2}, lambda: released.append(aud.system.now))
        aud.system.run_until(self.horizon)
        self._released = released
        return aud.system

    def observe(self, system: System) -> dict:
        return {"snapshots_released": len(self._released)}


class _CheckpointingScenario(Scenario):
    """A store workload with a checkpoint in the middle."""

    def __init__(self, name: str, horizon: float = 30.0):
        super().__init__(name)
        self.horizon = horizon

    def run(self) -> System:
        from ..arch.checkpointing import CheckpointedService
        from ..redislite import Command, DirectPort, RedisServer

        server = RedisServer()
        ref = {}
        svc = CheckpointedService(server, stall=lambda d: ref["p"].stall(d))
        # the stall port shares the service's engine clock instead of
        # deep-importing a Simulator of its own
        ref["p"] = DirectPort(svc.system.clock, server)
        server.execute(Command("SET", "k", b"v"))
        svc.checkpoint_now()
        svc.system.run_until(svc.system.now + 5.0)
        server.execute(Command("SET", "k", b"w"))
        svc.checkpoint_now()
        svc.system.run_until(self.horizon)
        self._svc = svc
        return svc.system

    def observe(self, system: System) -> dict:
        return {"checkpoints": self._svc.checkpoints}


class ReconfigScenario(Scenario):
    """A sharded store resharded mid-workload: client updates are
    scheduled to land *inside* the quiesce window, so exploration
    drives the transition's races (inbound update vs. pause, replay
    vs. new-shard bring-up).  Checked by ``reconfig-no-drop``: every
    submitted request completes exactly once on some interleaving-
    independent shard, and the transition itself must finish.

    Deliberately NOT in ``_ARCH_SCENARIOS`` — the shipped-architecture
    table is part of the byte-compared differential surface; use
    :func:`make_reconfig_scenario`.
    """

    invariants = (
        "no-failures",
        "convergence",
        "at-most-once",
        "reconfig-no-drop",
    )

    def __init__(self, name: str = "reconfig", horizon: float = 30.0):
        super().__init__(name)
        self.horizon = horizon

    def run(self) -> System:
        from ..arch.sharding import ShardedRedis
        from ..redislite import Command

        self._svc = svc = ShardedRedis(n_shards=2, seed=0)
        sys_ = svc.system
        submitted: list[int] = []
        completed: list[int] = []
        failed: list[tuple[int, str]] = []

        def submit(rid: int, kind: str, key: str, value=None):
            submitted.append(rid)
            cmd = Command(kind, key, value) if value is not None else Command(kind, key)

            def done(reply, rid=rid):
                if reply.ok:
                    completed.append(rid)
                else:
                    failed.append((rid, "reply not ok"))

            svc.submit(cmd, done)

        submit(0, "SET", "a", b"0")
        sys_.run_until(sys_.now + 2.0)
        # these land while the transition quiesces/replays — the race
        # under exploration
        sys_.clock.call_after(0.0, lambda: submit(1, "SET", "b", b"1"))
        sys_.clock.call_after(0.002, lambda: submit(2, "GET", "a"))
        report = svc.reconfigure_shards(3)
        self._report = report
        sys_.run_until(self.horizon)
        self._obs = {
            "submitted": submitted,
            "completed": completed,
            "failed": failed,
            "reconfig_ok": report.ok,
            "reconfig_reason": report.reason,
        }
        return sys_

    def observe(self, system: System) -> dict:
        return dict(self._obs)


def make_reconfig_scenario(horizon: float = 30.0) -> Scenario:
    """The live-reconfiguration exploration scenario (reshard 2 → 3
    with client traffic racing the quiesce window)."""
    return ReconfigScenario(horizon=horizon)


_ARCH_SCENARIOS = {
    "caching": _CachingScenario,
    "sharding": _ShardingScenario,
    "parallel_sharding": _ParallelShardingScenario,
    "failover": _FailoverScenario,
    "failover_fast": _FastFailoverScenario,
    "watched_failover": _WatchedScenario,
    "migration": _MigrationScenario,
    "elastic": _ElasticScenario,
    "remote_snapshot": _SnapshotScenario,
    "checkpointing": _CheckpointingScenario,
    "broker_sharded": _BrokerShardedScenario,
    "broker_failover": _BrokerFailoverScenario,
}


def arch_scenario(name: str) -> Scenario:
    """The exploration scenario of a shipped architecture."""
    try:
        cls = _ARCH_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"no exploration scenario for {name!r}; have {sorted(_ARCH_SCENARIOS)}"
        ) from None
    return cls(name)


def resolve_scenario(target: str, *, config: dict | None = None, horizon: float | None = None) -> Scenario:
    """CLI target resolution: architecture name, ``.csaw`` or ``.py``."""
    if target in _ARCH_SCENARIOS:
        sc = arch_scenario(target)
        if horizon is not None:
            sc.horizon = horizon
        return sc
    if target == "reconfig":
        return make_reconfig_scenario(horizon if horizon is not None else 30.0)
    if target == "broker-reconfig":
        return make_broker_reconfig_scenario(horizon if horizon is not None else 30.0)
    path = Path(target)
    if path.suffix == ".py":
        return load_py_scenario(path)
    from ..arch.loader import expand_placeholders

    text = path.read_text()
    if "@BACKENDS@" in text:
        text = expand_placeholders(text)
    return CsawScenario(
        text, name=str(path), config=config, horizon=horizon if horizon is not None else 30.0
    )
