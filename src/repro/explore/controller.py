"""Schedule controllers: record, replay and randomize interleavings.

Controlled scheduling is an engine capability (sim-engine only — see
:mod:`repro.runtime.engine`): the simulator clock consults its
:class:`~repro.runtime.engine.ScheduleController`
whenever more than one event is co-enabled (same time and priority).
:class:`RecordingController` implements the three behaviours the
exploration harness needs on top of that hook:

* **replay** a choice prefix (the first ``len(prefix)`` choice points
  follow the given indices, optionally label-checked);
* **extend** past the prefix with a deterministic tail policy —
  ``"first"`` (index 0, the uncontrolled order) for systematic search,
  ``"random"`` (seeded) for fuzzing;
* **record** every choice point (labels, footprints, chosen index) so
  the completed run is itself a replayable :class:`Schedule` and the
  search strategies can compute alternative branches from it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..runtime.engine import ScheduleController
from .schedule import Schedule


class ScheduleDivergence(RuntimeError):
    """Replay drifted: the event a schedule chose no longer exists at
    that choice point (the scenario changed underneath the schedule)."""


@dataclass
class ChoicePoint:
    """One recorded choice: the co-enabled set and what was picked."""

    time: float
    labels: list[str | None]
    footprints: list[object]
    chosen: int

    @property
    def arity(self) -> int:
        return len(self.labels)


class RecordingController(ScheduleController):
    """Replays a prefix of choices, then follows a tail policy.

    ``prefix`` is a sequence of indices into each choice point's
    co-enabled set; out-of-range prefix entries raise
    :class:`ScheduleDivergence` (the schedule no longer matches the
    scenario).  ``expect_labels``, when given, must align with
    ``prefix`` and is checked against the chosen event's label at each
    replayed choice point.
    """

    def __init__(
        self,
        prefix: tuple[int, ...] = (),
        *,
        tail: str = "first",
        rng: random.Random | None = None,
        expect_labels: list[str | None] | None = None,
    ):
        if tail not in ("first", "random"):
            raise ValueError(f"tail policy must be 'first' or 'random', got {tail!r}")
        if tail == "random" and rng is None:
            raise ValueError("tail='random' needs an rng")
        self.prefix = tuple(prefix)
        self.tail = tail
        self.rng = rng
        self.expect_labels = expect_labels
        self.trace: list[ChoicePoint] = []

    def choose(self, time: float, events: list) -> int:
        i = len(self.trace)
        if i < len(self.prefix):
            idx = self.prefix[i]
            if not (0 <= idx < len(events)):
                raise ScheduleDivergence(
                    f"choice point {i}: schedule picks index {idx} but only "
                    f"{len(events)} events are co-enabled "
                    f"({[e.label for e in events]})"
                )
            if self.expect_labels is not None and i < len(self.expect_labels):
                want = self.expect_labels[i]
                got = events[idx].label
                if want is not None and got != want:
                    raise ScheduleDivergence(
                        f"choice point {i}: schedule expects {want!r} at "
                        f"index {idx}, found {got!r}"
                    )
        elif self.tail == "random":
            idx = self.rng.randrange(len(events))
        else:
            idx = 0
        self.trace.append(
            ChoicePoint(
                time=time,
                labels=[e.label for e in events],
                footprints=[e.footprint for e in events],
                chosen=idx,
            )
        )
        return idx

    def schedule(self, scenario: str = "", **meta) -> Schedule:
        """The completed run as a replayable schedule."""
        return Schedule(
            choices=[cp.chosen for cp in self.trace],
            labels=[cp.labels[cp.chosen] for cp in self.trace],
            scenario=scenario,
            meta=meta,
        )
