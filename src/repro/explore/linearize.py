"""Linearizability checking for GET/SET (register) histories.

The redislite store is, per key, a register: SET writes, GET reads the
most recent write.  A concurrent history of timed operations is
*linearizable* when there is a total order that (a) respects real time
— an operation that finished before another started comes first — and
(b) is legal for a register — every GET returns the value of the
latest preceding SET (or the initial value).

The checker is the classic Wing & Gong search: repeatedly try each
minimal (no operation finished before it started) pending operation
against the sequential specification and backtrack on failure.  It is
exponential in the worst case but the exploration harness only feeds
it tiny histories (a handful of operations per key), where it is
instantaneous.  Keys are independent registers, so the history is
checked per key.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Op:
    """One timed client operation against the store."""

    kind: str  # "GET" | "SET"
    key: str
    value: object  # SET: value written; GET: value returned
    start: float
    end: float
    ok: bool = True


def _linearizable_key(ops: list[Op], initial: object) -> bool:
    """Wing-Gong search over the operations of a single key."""

    def search(pending: frozenset[int], state: object) -> bool:
        if not pending:
            return True
        # minimal ops: nothing still pending finished strictly before
        # their start
        for i in pending:
            if any(ops[j].end < ops[i].start for j in pending if j != i):
                continue
            op = ops[i]
            if op.kind == "SET":
                if search(pending - {i}, op.value):
                    return True
            else:  # GET
                if op.value == state and search(pending - {i}, state):
                    return True
        return False

    return search(frozenset(range(len(ops))), initial)


def check_linearizable(history: list[Op], initial: object = None) -> list[str]:
    """Check a multi-key history; returns violation messages (empty =
    linearizable).  Failed operations (``ok=False``) took no effect at
    the store in this model and are excluded."""
    by_key: dict[str, list[Op]] = {}
    for op in history:
        if op.ok:
            by_key.setdefault(op.key, []).append(op)
    out = []
    for key, ops in sorted(by_key.items()):
        if not _linearizable_key(ops, initial):
            out.append(
                f"history of key {key!r} is not linearizable "
                f"({len(ops)} operation(s))"
            )
    return out
