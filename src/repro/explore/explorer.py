"""Interleaving search over the controlled scheduler.

Exploration is *stateless model checking by reset-replay*: the system
under test is rebuilt from scratch for every schedule, a choice prefix
is replayed, and the run continues under a deterministic tail policy.
Branching comes from the recorded trace — every choice point past the
prefix spawns the alternative prefixes that pick a different co-enabled
event.

Strategies:

* ``bfs`` / ``dfs`` — systematic enumeration of the choice tree (FIFO
  or LIFO frontier) up to a run ``budget`` and optional branching
  ``depth``;
* ``dpor`` — the same enumeration with partial-order reduction *lite*:
  an alternative branch is pruned when its event provably commutes
  with the event actually chosen (disjoint read/write footprints from
  :mod:`repro.semantics.commute`) — swapping two adjacent independent
  events reaches the same state, so the sibling branch explores
  nothing new.  Unlike full DPOR there are no cross-step happens-before
  races computed, so this is a sound *heuristic* reduction: it only
  prunes provably-equivalent immediate siblings and therefore never
  misses a state a naive search of the same depth would reach, but it
  also does not collapse every Mazurkiewicz trace;
* ``random`` — seeded random-walk fuzzing: ``budget`` independent runs
  picking uniformly at every choice point.

Every run ends with the scenario's invariants evaluated over the final
state; violations carry the complete recorded schedule, which is a
replayable artifact (``repro explore --replay``).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from ..runtime.engine import use_controller
from ..semantics.commute import commutes
from .controller import ChoicePoint, RecordingController
from .invariants import check_invariants
from .schedule import Schedule
from .scenarios import Scenario

STRATEGIES = ("bfs", "dfs", "dpor", "random")


@dataclass
class RunResult:
    """One controlled run: the schedule taken and what it produced."""

    schedule: Schedule
    trace: list[ChoicePoint]
    system: object
    observations: dict
    violations: list[tuple[str, str]]  # (invariant, message)


@dataclass
class Violation:
    invariant: str
    message: str
    schedule: Schedule

    def to_json(self) -> dict:
        out = self.schedule.to_json()
        out["invariant"] = self.invariant
        out["message"] = self.message
        return out


@dataclass
class ExplorationResult:
    strategy: str
    runs: int = 0
    choice_points: int = 0  # branch points encountered across all runs
    pruned: int = 0  # sibling branches skipped by commutation (dpor)
    exhausted: bool = False  # the frontier drained within the budget
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        verdict = (
            "no violations"
            if self.ok
            else f"{len(self.violations)} violation(s)"
        )
        tail = "frontier exhausted" if self.exhausted else "budget reached"
        return (
            f"{self.strategy}: {self.runs} run(s), "
            f"{self.choice_points} choice point(s), "
            f"{self.pruned} branch(es) pruned, {verdict} ({tail})"
        )


def run_schedule(
    scenario: Scenario,
    prefix: tuple[int, ...] = (),
    *,
    tail: str = "first",
    rng: random.Random | None = None,
    expect_labels: list | None = None,
    invariants: tuple[str, ...] | None = None,
) -> RunResult:
    """Run one schedule from scratch and evaluate invariants."""
    ctl = RecordingController(
        tuple(prefix), tail=tail, rng=rng, expect_labels=expect_labels
    )
    with use_controller(lambda: ctl):
        system = scenario.run()
    obs = scenario.observe(system)
    names = scenario.invariants if invariants is None else invariants
    violations = check_invariants(system, obs, names)
    return RunResult(
        schedule=ctl.schedule(scenario.name),
        trace=ctl.trace,
        system=system,
        observations=obs,
        violations=violations,
    )


def replay(scenario: Scenario, schedule: Schedule, *, invariants=None) -> RunResult:
    """Replay a serialized schedule exactly (label-checked)."""
    return run_schedule(
        scenario,
        tuple(schedule.choices),
        expect_labels=list(schedule.labels),
        invariants=invariants,
    )


def explore(
    scenario: Scenario,
    *,
    strategy: str = "dpor",
    budget: int = 200,
    depth: int | None = None,
    invariants: tuple[str, ...] | None = None,
    seed: int = 0,
    stop_on_violation: bool = False,
    on_run=None,
) -> ExplorationResult:
    """Search interleavings of ``scenario`` under a run ``budget``.

    ``depth`` bounds how many choice points may branch (deeper points
    still replay deterministically but spawn no alternatives).
    ``on_run(result)`` is called after each run — the hook the race
    witness search uses to compare final states across schedules; a
    truthy return stops the exploration early.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"strategy must be one of {STRATEGIES}, got {strategy!r}")
    result = ExplorationResult(strategy=strategy)

    def record(res: RunResult) -> bool:
        result.runs += 1
        for inv, msg in res.violations:
            result.violations.append(Violation(inv, msg, res.schedule))
        stop = bool(on_run(res)) if on_run is not None else False
        return stop or (stop_on_violation and bool(result.violations))

    if strategy == "random":
        for i in range(budget):
            res = run_schedule(
                scenario,
                (),
                tail="random",
                rng=random.Random(seed * 1_000_003 + i),
                invariants=invariants,
            )
            result.choice_points += len(res.trace)
            if record(res):
                return result
        result.exhausted = False
        return result

    frontier: deque[tuple[int, ...]] = deque([()])
    visited: set[tuple[int, ...]] = {()}
    while frontier:
        if result.runs >= budget:
            return result  # exhausted stays False: frontier not drained
        prefix = frontier.popleft() if strategy != "dfs" else frontier.pop()
        res = run_schedule(scenario, prefix, invariants=invariants)
        if record(res):
            return result
        choices = res.schedule.choices
        for i in range(len(prefix), len(res.trace)):
            if depth is not None and i >= depth:
                break
            cp = res.trace[i]
            result.choice_points += 1
            chosen_fp = cp.footprints[cp.chosen]
            for k in range(cp.arity):
                if k == cp.chosen:
                    continue
                if strategy == "dpor" and commutes(chosen_fp, cp.footprints[k]):
                    result.pruned += 1
                    continue
                alt = tuple(choices[:i]) + (k,)
                if alt not in visited:
                    visited.add(alt)
                    frontier.append(alt)
    result.exhausted = True
    return result
