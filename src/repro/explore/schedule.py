"""Replayable schedules: the serialized form of one interleaving.

A schedule is the sequence of choices a
:class:`~repro.explore.controller.RecordingController` made — one
integer per *choice point* (a simulator step whose co-enabled set held
more than one event).  Together with the scenario (which fixes the
program, seeds and workload) it pins the run completely: replaying the
same choices on a fresh system reproduces the exact interleaving, so a
failing schedule found by exploration is a portable, attachable
artifact.

Labels are recorded alongside the chosen indices purely as a sanity
net: on replay the controller checks that the event picked at each
choice point still carries the recorded label, catching schedules
replayed against a drifted scenario (different code, config or seed)
instead of silently exploring something else.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field


@dataclass
class Schedule:
    """One recorded interleaving.

    ``choices[i]`` is the index picked at the i-th choice point (into
    the co-enabled set in default ``(priority, seq)`` order);
    ``labels[i]`` is the label of the chosen event (``None`` for
    anonymous events).  ``scenario`` and ``meta`` document provenance —
    they do not affect replay.
    """

    choices: list[int] = field(default_factory=list)
    labels: list[str | None] = field(default_factory=list)
    scenario: str = ""
    meta: dict = field(default_factory=dict)

    @property
    def schedule_id(self) -> str:
        """Stable short hash of the choice sequence (used to label
        telemetry exported from a controlled run)."""
        blob = ",".join(str(c) for c in self.choices).encode()
        return hashlib.sha256(blob).hexdigest()[:12]

    def to_json(self) -> dict:
        return {
            "version": 1,
            "scenario": self.scenario,
            "schedule_id": self.schedule_id,
            "choices": list(self.choices),
            "labels": list(self.labels),
            "meta": dict(self.meta),
        }

    def dumps(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, data: dict) -> "Schedule":
        if data.get("version") != 1:
            raise ValueError(f"unsupported schedule version {data.get('version')!r}")
        return cls(
            choices=[int(c) for c in data.get("choices", [])],
            labels=list(data.get("labels", [])),
            scenario=str(data.get("scenario", "")),
            meta=dict(data.get("meta", {})),
        )

    @classmethod
    def loads(cls, text: str) -> "Schedule":
        return cls.from_json(json.loads(text))
