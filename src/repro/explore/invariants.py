"""Invariants checked over the final state of an explored run.

An invariant is a named predicate over ``(system, observations)``
evaluated after a scenario's horizon; it returns violation messages
(empty list = holds).  The registry makes invariants addressable from
the CLI (``repro explore --invariant at-most-once ...``) and lets
scenarios and tests register their own.

Built-ins:

* ``no-failures`` — no junction execution ended in an unhandled
  failure (``System.failures`` is empty);
* ``convergence`` — the system quiesced: every live junction's KV
  table drained its pending updates, and no outstanding send is
  *overdue* (already retransmitted at least once and still unacked).
  A first-attempt message still in flight at the horizon is not a
  violation — architectures with periodic background traffic (the
  fail-over pollers) are mid-send at any cut;
* ``at-most-once`` — no message id was *applied* twice at a receiver
  (retransmissions must be deduplicated; checked over the telemetry
  ``apply`` events);
* ``linearizable`` — the scenario's recorded GET/SET history (under
  the ``"history"`` observation key) is linearizable per key
  (:mod:`repro.explore.linearize`); holds vacuously when the scenario
  records no history.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable

from .linearize import check_linearizable


@dataclass(frozen=True)
class Invariant:
    name: str
    description: str
    check: Callable[[object, dict], list[str]]


INVARIANTS: dict[str, Invariant] = {}


def register_invariant(name: str, description: str = ""):
    """Decorator registering ``fn(system, obs) -> list[str]``."""

    def deco(fn):
        INVARIANTS[name] = Invariant(name, description, fn)
        return fn

    return deco


def get_invariants(names) -> list[Invariant]:
    out = []
    for n in names:
        if n not in INVARIANTS:
            raise KeyError(
                f"unknown invariant {n!r}; have {', '.join(sorted(INVARIANTS))}"
            )
        out.append(INVARIANTS[n])
    return out


def check_invariants(system, obs: dict, names) -> list[tuple[str, str]]:
    """Evaluate the named invariants; returns ``(invariant, message)``
    pairs for every violation."""
    out = []
    for inv in get_invariants(names):
        for msg in inv.check(system, obs):
            out.append((inv.name, msg))
    return out


# ---------------------------------------------------------------------------
# Built-ins
# ---------------------------------------------------------------------------


@register_invariant("no-failures", "no junction execution failed")
def _no_failures(system, obs) -> list[str]:
    return [
        f"{node}: {exc!r} at t={t:.6f}" for (t, node, exc) in system.failures
    ]


@register_invariant(
    "convergence",
    "KV tables drained pending updates and no sends are outstanding",
)
def _convergence(system, obs) -> list[str]:
    out = []
    for inst in system.instances.values():
        if not inst.alive:
            continue  # a crashed instance's state is gone, not diverged
        for jr in inst.junctions.values():
            if jr.table.has_pending:
                keys = sorted({u.key for u in jr.table.pending})
                out.append(
                    f"{jr.node}: {jr.table.pending_count} pending update(s) "
                    f"to {keys} never applied"
                )
    # _Pending.attempts counts send attempts and starts at 1; a value
    # above 1 means at least one retransmission already fired unacked
    overdue = sorted(
        mid for mid, p in system.delivery.outstanding.items() if p.attempts > 1
    )
    if overdue:
        out.append(
            f"{len(overdue)} overdue unacknowledged send(s) "
            f"(retransmitted, still no ack): {overdue[:8]}"
        )
    return out


@register_invariant(
    "at-most-once",
    "no message id applied twice at a receiver (dedup under retransmission)",
)
def _at_most_once(system, obs) -> list[str]:
    applied: dict[tuple[str, int], int] = {}
    for ev in system.telemetry.events:
        if ev.kind == "apply":
            mid = ev.attrs.get("msg_id")
            if mid:
                k = (ev.node, mid)
                applied[k] = applied.get(k, 0) + 1
    return [
        f"{node}: msg {mid} applied {n} times (retransmission re-applied)"
        for (node, mid), n in sorted(applied.items())
        if n > 1
    ]


@register_invariant(
    "reconfig-no-drop",
    "every request submitted across a reconfiguration completes exactly once",
)
def _reconfig_no_drop(system, obs) -> list[str]:
    out = []
    if "reconfig_ok" in obs and not obs["reconfig_ok"]:
        reason = obs.get("reconfig_reason") or "unknown"
        out.append(f"reconfiguration did not complete: {reason}")
    submitted = obs.get("submitted")
    if submitted is None:
        return out
    counts = Counter(obs.get("completed", ()))
    dropped = [rid for rid in submitted if counts[rid] == 0]
    duplicated = sorted(rid for rid, n in counts.items() if n > 1)
    phantom = sorted(set(counts) - set(submitted))
    if dropped:
        out.append(
            f"{len(dropped)} request(s) dropped across the transition: "
            f"{dropped[:8]}"
        )
    if duplicated:
        out.append(f"request(s) completed more than once: {duplicated[:8]}")
    if phantom:
        out.append(f"unsubmitted request id(s) completed: {phantom[:8]}")
    for rid, err in obs.get("failed", ()):
        out.append(f"request {rid} failed: {err}")
    return out


@register_invariant(
    "linearizable",
    "the recorded GET/SET history is linearizable per key",
)
def _linearizable(system, obs) -> list[str]:
    history = obs.get("history")
    if not history:
        return []
    return check_linearizable(history, initial=obs.get("initial"))
