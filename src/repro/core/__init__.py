"""C-Saw DSL core: AST, parser, validation, expansion, compilation.

Typical use::

    from repro.core import compile_program

    prog = compile_program(dsl_text, config={"N": 4})
"""

from . import ast
from .compiler import CompiledJunction, CompiledProgram, compile_program
from .errors import (
    CompileError,
    CSawError,
    DslFailure,
    ExpansionError,
    ParseError,
    TimeoutFailure,
    ValidationError,
    VerifyFailure,
)
from .formula import (
    UNKNOWN,
    And,
    At,
    FalseF,
    Formula,
    Implies,
    Live,
    Not,
    Or,
    Prop,
    TRUE,
    evaluate,
    to_dnf,
)
from .parser import parse_expression, parse_formula, parse_program
from .topology import topology, topology_edges
from .validate import validate_program

__all__ = [
    "ast",
    "CompiledJunction",
    "CompiledProgram",
    "compile_program",
    "CSawError",
    "CompileError",
    "DslFailure",
    "ExpansionError",
    "ParseError",
    "TimeoutFailure",
    "ValidationError",
    "VerifyFailure",
    "UNKNOWN",
    "And",
    "At",
    "FalseF",
    "Formula",
    "Implies",
    "Live",
    "Not",
    "Or",
    "Prop",
    "TRUE",
    "evaluate",
    "to_dnf",
    "parse_expression",
    "parse_formula",
    "parse_program",
    "topology",
    "topology_edges",
    "validate_program",
]
