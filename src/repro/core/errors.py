"""Error hierarchy for the C-Saw reproduction.

Two families of errors exist:

* Static errors (:class:`CSawError` subclasses other than
  :class:`DslFailure`) are raised while parsing, validating, expanding or
  compiling a DSL program.  They indicate a malformed architecture
  description and carry source positions where available.

* Dynamic failures (:class:`DslFailure` subclasses) are raised while a
  junction executes.  They correspond to the paper's notion of an
  expression *failing*: a failure propagates outward through fate scopes
  until an ``otherwise`` handler absorbs it (or the junction's scheduling
  aborts).  Transaction blocks roll their KV table back before
  re-raising.
"""

from __future__ import annotations


class CSawError(Exception):
    """Base class for every error produced by this library."""


class ParseError(CSawError):
    """The concrete syntax could not be parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class ValidationError(CSawError):
    """A well-formedness constraint from the paper is violated.

    Examples: an empty ``case``, ``next`` immediately before
    ``otherwise``, a host block inside a transaction, a write-to-self,
    or a reference to an undeclared name.
    """


class ExpansionError(CSawError):
    """Template expansion (function inlining / ``for`` unrolling) failed.

    Typical causes: unknown function, wrong arity, a ``for`` over a set
    whose contents are not known at expansion time, or unbounded
    template recursion.
    """


class CompileError(CSawError):
    """The validated, expanded program could not be assembled."""


class DslFailure(CSawError):
    """Base of all *runtime* failures of DSL expressions.

    A failure aborts the enclosing expression.  ``E1 otherwise[t] E2``
    absorbs failures raised inside ``E1`` and runs ``E2``;
    ``<| E |>`` rolls back the KV table and re-raises.
    """


class TimeoutFailure(DslFailure):
    """An ``otherwise[t]`` deadline expired while its body was blocked."""


class VerifyFailure(DslFailure):
    """A ``verify`` formula evaluated to false."""


class VerifyUnknown(VerifyFailure):
    """A ``verify`` formula could not be evaluated (ternary *error*).

    Raised when evaluating ``gamma@P`` and ``gamma``'s instance is not
    running, per the paper's ternary-logic treatment of ``verify``.
    """


class UndefError(DslFailure):
    """A data item holding the special ``undef`` value was written or
    restored before being given a valid value with ``save``."""


class StartStopFailure(DslFailure):
    """``start`` on a running instance, or ``stop`` on a stopped one."""


class RetryExhausted(DslFailure):
    """``retry`` was invoked more times than its per-scheduling bound."""


class ReconsiderFailure(DslFailure):
    """``reconsider`` re-matched the same ``case`` arm with no change."""


class CommunicationFailure(DslFailure):
    """A remote ``write``/``assert``/``retract`` could not be delivered
    (target stopped, crashed, or partitioned away) and the runtime
    detected this eagerly rather than via a timeout."""


class DeliveryFailure(CommunicationFailure):
    """The reliable-delivery layer gave up on a remote update.

    Raised into the sending strand when every retransmission attempt of
    an update went unacknowledged (see :mod:`repro.runtime.delivery`),
    or synchronously at send time when the per-link circuit breaker is
    open.  Like any :class:`DslFailure` it is absorbed by ``otherwise``
    handlers — which therefore fire as soon as the transport gives up,
    rather than only when their own deadline expires."""


class GuardNotSatisfied(CSawError):
    """A junction was explicitly scheduled while its guard is false.

    This is not a :class:`DslFailure`: the junction simply does not run.
    """


class HostError(DslFailure):
    """A host-language block raised an exception.

    The original exception is available as ``__cause__``.
    """


class SerdeError(CSawError):
    """The serialization framework rejected a schema or a value."""
