"""Recursive-descent parser for the C-Saw concrete syntax.

Produces the unexpanded AST of :mod:`repro.core.ast`.  The grammar is
documented in DESIGN.md; operator precedence for expressions, loosest
to tightest::

    ;   (sequence)
    otherwise[t]
    +   (parallel)
    ||  (replicated parallel)
    atoms

and for formulas::

    ->  (implication, right-assoc)
    ||  (disjunction)
    &&  (conjunction)
    !   (negation), atoms

``( ... )`` is pure grouping in both contexts; ``{ ... }`` is a fate
block and ``<| ... |>`` a transaction in expression context.
"""

from __future__ import annotations

from . import ast as A
from .errors import ParseError
from .formula import And, At, FalseF, Formula, Implies, Live, Not, Or, Prop, TRUE
from .lexer import Token, tokenize

_TERMINATORS = ("break", "next", "reconsider")


class Parser:
    """Single-use parser over a token stream."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        idx = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def error(self, message: str) -> ParseError:
        tok = self.peek()
        return ParseError(f"{message}; found {tok.kind} {tok.value!r}", tok.line, tok.column)

    def expect_punct(self, value: str) -> Token:
        tok = self.peek()
        if not tok.is_punct(value):
            raise self.error(f"expected {value!r}")
        return self.advance()

    def expect_kw(self, value: str) -> Token:
        tok = self.peek()
        if not tok.is_kw(value):
            raise self.error(f"expected keyword {value!r}")
        return self.advance()

    def expect_ident(self) -> str:
        tok = self.peek()
        if tok.kind != "ident":
            raise self.error("expected identifier")
        self.advance()
        return tok.value

    def accept_punct(self, value: str) -> bool:
        if self.peek().is_punct(value):
            self.advance()
            return True
        return False

    def accept_kw(self, value: str) -> bool:
        if self.peek().is_kw(value):
            self.advance()
            return True
        return False

    # -- program -----------------------------------------------------------

    def parse_program(self) -> A.Program:
        instance_types: list[str] = []
        instances: list[tuple[str, str]] = []
        main: A.MainDef | None = None
        defs: list[A.JunctionDef] = []
        functions: list[A.FunctionDef] = []

        while self.peek().kind != "eof":
            tok = self.peek()
            if tok.is_kw("instance_types"):
                self.advance()
                instance_types.extend(self._parse_name_block())
            elif tok.is_kw("instances"):
                self.advance()
                instances.extend(self._parse_binding_block())
            elif tok.is_kw("def"):
                kind, node = self._parse_def()
                if kind == "main":
                    if main is not None:
                        raise self.error("duplicate main definition")
                    main = node
                elif kind == "junction":
                    defs.append(node)
                else:
                    functions.append(node)
            else:
                raise self.error("expected instance_types, instances, or def")

        return A.Program(
            instance_types=tuple(instance_types),
            instances=tuple(instances),
            main=main,
            defs=tuple(defs),
            functions=tuple(functions),
        )

    def _parse_name_block(self) -> list[str]:
        self.expect_punct("{")
        names = [self.expect_ident()]
        while self.accept_punct(","):
            names.append(self.expect_ident())
        self.expect_punct("}")
        return names

    def _parse_binding_block(self) -> list[tuple[str, str]]:
        self.expect_punct("{")
        out = []
        while True:
            name = self.expect_ident()
            self.expect_punct(":")
            type_name = self.expect_ident()
            out.append((name, type_name))
            if not self.accept_punct(","):
                break
        self.expect_punct("}")
        return out

    # -- definitions ---------------------------------------------------------

    def _parse_def(self):
        self.expect_kw("def")
        tok = self.peek()
        if tok.is_kw("main"):
            self.advance()
            params = self._parse_params()
            self.expect_punct("=")
            body = self.parse_expr()
            return "main", A.MainDef(params=params, body=body)

        name = self.expect_ident()
        if self.peek().is_punct("::"):
            self.advance()
            if self.peek().kind == "ident":
                junction = self.expect_ident()
            else:
                junction = "junction"  # the paper's anonymous junction
            params = self._parse_params()
            self.expect_punct("=")
            decls = self._parse_decls()
            body = self.parse_expr()
            return "junction", A.JunctionDef(
                type_name=name,
                junction=junction,
                params=params,
                decls=decls,
                body=body,
            )

        params = self._parse_params()
        self.expect_punct("=")
        decls = self._parse_decls()
        body = self.parse_expr()
        return "function", A.FunctionDef(name=name, params=params, decls=decls, body=body)

    def _parse_params(self) -> tuple[str, ...]:
        self.expect_punct("(")
        params: list[str] = []
        if not self.peek().is_punct(")"):
            params.append(self.expect_ident())
            while self.accept_punct(","):
                params.append(self.expect_ident())
        self.expect_punct(")")
        return tuple(params)

    # -- declarations --------------------------------------------------------

    def _parse_decls(self) -> tuple[A.Decl, ...]:
        decls: list[A.Decl] = []
        while self.peek().is_punct("|"):
            self.advance()
            decls.append(self._parse_decl())
        return tuple(decls)

    def _parse_decl(self) -> A.Decl:
        tok = self.peek()
        if tok.is_kw("init"):
            self.advance()
            return self._parse_init_decl()
        if tok.is_kw("guard"):
            self.advance()
            return A.Guard(self.parse_formula())
        if tok.is_kw("set"):
            self.advance()
            name = self.expect_ident()
            literal = None
            if self.accept_punct("="):
                literal = self._parse_set_literal()
            return A.SetDecl(name, literal)
        if tok.is_kw("subset"):
            self.advance()
            name = self.expect_ident()
            self.expect_kw("of")
            return A.SubsetDecl(name, self._parse_set_expr())
        if tok.is_kw("idx"):
            self.advance()
            name = self.expect_ident()
            self.expect_kw("of")
            return A.IdxDecl(name, self._parse_set_expr())
        if tok.is_kw("for"):
            self.advance()
            var = self.expect_ident()
            self.expect_kw("in")
            iterable = self._parse_set_expr()
            self.expect_kw("init")
            inner = self._parse_init_decl()
            if not isinstance(inner, A.InitProp):
                raise self.error("for-declarations may only initialize propositions")
            return A.ForInit(var, iterable, inner)
        raise self.error("expected a declaration")

    def _parse_init_decl(self) -> A.Decl:
        if self.accept_kw("prop"):
            value = not self.accept_punct("!")
            name = self.expect_ident()
            index = None
            if self.accept_punct("["):
                index = self._parse_index()
                self.expect_punct("]")
            return A.InitProp(name, value, index)
        if self.accept_kw("data"):
            return A.InitData(self.expect_ident())
        raise self.error("expected 'prop' or 'data' after init")

    def _parse_index(self):
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return A.Num(tok.num)
        return self._parse_ref()

    def _parse_set_expr(self):
        if self.peek().is_punct("{"):
            return self._parse_set_literal()
        return self._parse_ref()

    def _parse_set_literal(self) -> A.SetLit:
        self.expect_punct("{")
        items: list[object] = []
        if not self.peek().is_punct("}"):
            items.append(self._parse_set_item())
            while self.accept_punct(","):
                items.append(self._parse_set_item())
        self.expect_punct("}")
        return A.SetLit(tuple(items))

    def _parse_set_item(self):
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return A.Num(tok.num)
        if tok.is_punct("{"):
            raise self.error("sets may not contain sets")
        return self._parse_ref()

    def _parse_ref(self) -> A.Ref:
        parts = [self.expect_ident()]
        while self.peek().is_punct("::"):
            self.advance()
            parts.append(self.expect_ident())
        return A.Ref(tuple(parts))

    # -- expressions -----------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        """Sequence level (``;``)."""
        items = [self._parse_otherwise()]
        while self.peek().is_punct(";"):
            self.advance()
            if self._at_expr_end():
                break  # trailing semicolon
            items.append(self._parse_otherwise())
        return A.seq(*items)

    def _at_expr_end(self) -> bool:
        tok = self.peek()
        if tok.kind == "eof":
            return True
        if tok.is_punct(")", "}", "|>"):
            return True
        if tok.is_kw("def", "instance_types", "instances", "else"):
            return True
        if tok.is_kw(*_TERMINATORS):
            return True
        if tok.is_kw("otherwise") and self.peek(1).is_punct("=>"):
            return True
        return False

    def _parse_otherwise(self) -> A.Expr:
        body = self._parse_par()
        if self.peek().is_kw("otherwise") and not self.peek(1).is_punct("=>"):
            self.advance()
            timeout = None
            if self.accept_punct("["):
                timeout = self._parse_arith()
                self.expect_punct("]")
            handler = self._parse_otherwise()  # right-associative
            return A.Otherwise(body, timeout, handler)
        return body

    def _parse_par(self) -> A.Expr:
        items = [self._parse_reppar()]
        while self.peek().is_punct("+"):
            self.advance()
            items.append(self._parse_reppar())
        return A.par(*items)

    def _parse_reppar(self) -> A.Expr:
        items = [self._parse_atom()]
        while self.peek().is_punct("||"):
            self.advance()
            items.append(self._parse_atom())
        if len(items) == 1:
            return items[0]
        return A.RepPar(tuple(items))

    # -- atoms -------------------------------------------------------------

    def _parse_atom(self) -> A.Expr:
        tok = self.peek()

        if tok.is_punct("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        if tok.is_punct("{"):
            self.advance()
            inner = self.parse_expr()
            self.expect_punct("}")
            return A.FateBlock(inner)
        if tok.is_punct("<|"):
            self.advance()
            inner = self.parse_expr()
            self.expect_punct("|>")
            return A.Transaction(inner)

        if tok.is_kw("skip"):
            self.advance()
            return A.Skip()
        if tok.is_kw("return"):
            self.advance()
            return A.Return()
        if tok.is_kw("retry"):
            self.advance()
            return A.Retry()

        if tok.is_kw("host"):
            self.advance()
            name = self.expect_ident()
            writes: tuple[str, ...] = ()
            if self.peek().is_punct("{"):
                self.advance()
                ws = []
                if not self.peek().is_punct("}"):
                    ws.append(self.expect_ident())
                    while self.accept_punct(","):
                        ws.append(self.expect_ident())
                self.expect_punct("}")
                writes = tuple(ws)
            return A.HostBlock(name, writes)

        if tok.is_kw("write"):
            self.advance()
            self.expect_punct("(")
            name = self.expect_ident()
            self.expect_punct(",")
            target = self._parse_ref()
            self.expect_punct(")")
            return A.Write(name, target)

        if tok.is_kw("save"):
            self.advance()
            self.expect_punct("(")
            # accept the paper's ``save(..., n)`` spelling
            if self.accept_punct("..."):
                self.expect_punct(",")
            name = self.expect_ident()
            self.expect_punct(")")
            return A.Save(name)

        if tok.is_kw("restore"):
            self.advance()
            self.expect_punct("(")
            name = self.expect_ident()
            if self.accept_punct(","):
                self.expect_punct("...")
            self.expect_punct(")")
            return A.Restore(name)

        if tok.is_kw("wait"):
            self.advance()
            self.expect_punct("[")
            keys: list[str] = []
            if not self.peek().is_punct("]"):
                keys.append(self.expect_ident())
                while self.accept_punct(","):
                    keys.append(self.expect_ident())
            self.expect_punct("]")
            formula = self.parse_formula()
            return A.Wait(tuple(keys), formula)

        if tok.is_kw("assert") or tok.is_kw("retract"):
            kw = self.advance().value
            self.expect_punct("[")
            target: object = A.SelfTarget()
            if not self.peek().is_punct("]"):
                target = self._parse_ref()
            self.expect_punct("]")
            prop = self.expect_ident()
            index = None
            if self.accept_punct("["):
                index = self._parse_index()
                self.expect_punct("]")
            cls = A.Assert if kw == "assert" else A.Retract
            return cls(target, prop, index)

        if tok.is_kw("keep"):
            self.advance()
            self.expect_punct("(")
            keys = [self.expect_ident()]
            while self.accept_punct(","):
                keys.append(self.expect_ident())
            self.expect_punct(")")
            return A.Keep(tuple(keys))

        if tok.is_kw("verify"):
            self.advance()
            return A.Verify(self.parse_formula())

        if tok.is_kw("start"):
            self.advance()
            return self._parse_start()

        if tok.is_kw("stop"):
            self.advance()
            return A.Stop(self._parse_ref())

        if tok.is_kw("case"):
            self.advance()
            return self._parse_case()

        if tok.is_kw("if"):
            self.advance()
            cond = self.parse_formula()
            self.expect_kw("then")
            then = self._parse_otherwise()
            orelse = None
            if self.accept_kw("else"):
                orelse = self._parse_otherwise()
            return A.If(cond, then, orelse)

        if tok.is_kw("for"):
            self.advance()
            var = self.expect_ident()
            self.expect_kw("in")
            iterable = self._parse_set_expr()
            op_tok = self.peek()
            op_timeout = None
            if op_tok.is_punct(";", "+", "||"):
                self.advance()
                op = op_tok.value
            elif op_tok.is_kw("otherwise"):
                self.advance()
                op = "otherwise"
                if self.accept_punct("["):
                    op_timeout = self._parse_arith()
                    self.expect_punct("]")
            else:
                raise self.error("expected a for-loop operator (';', '+', '||', 'otherwise')")
            body = self._parse_otherwise()
            return A.For(var, iterable, op, body, op_timeout)

        if tok.kind == "ident":
            # function call: name(args)
            if self.peek(1).is_punct("("):
                name = self.expect_ident()
                self.expect_punct("(")
                args: list[object] = []
                if not self.peek().is_punct(")"):
                    args.append(self._parse_arith())
                    while self.accept_punct(","):
                        args.append(self._parse_arith())
                self.expect_punct(")")
                return A.Call(name, tuple(args))
            raise self.error("bare identifiers are not expressions (did you mean a call 'name()'?)")

        raise self.error("expected an expression")

    def _parse_start(self) -> A.Expr:
        instance = self._parse_ref()
        groups: list[tuple[str | None, tuple[object, ...]]] = []
        if self.peek().is_punct("("):
            groups.append((None, self._parse_arglist()))
        else:
            while self.peek().kind == "ident" and self.peek(1).is_punct("("):
                jname = self.expect_ident()
                groups.append((jname, self._parse_arglist()))
        return A.Start(instance, tuple(groups))

    def _parse_arglist(self) -> tuple[object, ...]:
        self.expect_punct("(")
        args: list[object] = []
        if not self.peek().is_punct(")"):
            args.append(self._parse_arith())
            while self.accept_punct(","):
                args.append(self._parse_arith())
        self.expect_punct(")")
        return tuple(args)

    def _parse_case(self) -> A.Expr:
        self.expect_punct("{")
        arms: list[object] = []
        otherwise: A.Expr | None = None
        while True:
            if self.peek().is_kw("otherwise") and self.peek(1).is_punct("=>"):
                self.advance()
                self.advance()
                otherwise = self._parse_arm_body(stop_at_terminator=False)
                self.accept_punct(";")
                break
            arms.append(self._parse_arm())
            if self.peek().is_punct("}"):
                break
        self.expect_punct("}")
        if otherwise is None:
            raise self.error("case must end with an 'otherwise =>' arm")
        return A.Case(tuple(arms), otherwise)

    def _parse_arm(self):
        if self.peek().is_kw("for"):
            self.advance()
            var = self.expect_ident()
            self.expect_kw("in")
            iterable = self._parse_set_expr()
            inner = self._parse_plain_arm()
            return A.ForArm(var, iterable, inner)
        return self._parse_plain_arm()

    def _parse_plain_arm(self) -> A.CaseArm:
        formula = self.parse_formula()
        self.expect_punct("=>")
        body = self._parse_arm_body(stop_at_terminator=True)
        tok = self.peek()
        if not tok.is_kw(*_TERMINATORS):
            raise self.error("case arm must end with break, next, or reconsider")
        terminator = self.advance().value
        self.accept_punct(";")
        return A.CaseArm(formula, body, terminator)

    def _parse_arm_body(self, stop_at_terminator: bool) -> A.Expr:
        items = [self._parse_otherwise()]
        while self.peek().is_punct(";"):
            self.advance()
            tok = self.peek()
            if stop_at_terminator and tok.is_kw(*_TERMINATORS):
                break
            if tok.is_kw("otherwise") and self.peek(1).is_punct("=>"):
                break
            if tok.is_punct("}"):
                break
            items.append(self._parse_otherwise())
        return A.seq(*items)

    # -- argument arithmetic -------------------------------------------------

    def _parse_arith(self):
        left = self._parse_term()
        while self.peek().is_punct("+", "-"):
            op = self.advance().value
            right = self._parse_term()
            left = A.BinArith(op, left, right)
        return left

    def _parse_term(self):
        left = self._parse_factor()
        while self.peek().is_punct("*", "/"):
            op = self.advance().value
            right = self._parse_factor()
            left = A.BinArith(op, left, right)
        return left

    def _parse_factor(self):
        tok = self.peek()
        if tok.kind == "number":
            self.advance()
            return A.Num(tok.num)
        if tok.is_punct("("):
            self.advance()
            inner = self._parse_arith()
            self.expect_punct(")")
            return inner
        if tok.is_punct("{"):
            return self._parse_set_literal()
        if tok.kind == "ident":
            return self._parse_ref()
        raise self.error("expected an argument")

    # -- formulas --------------------------------------------------------------

    def parse_formula(self) -> Formula:
        return self._parse_implies()

    def _parse_implies(self) -> Formula:
        left = self._parse_for_or()
        if self.peek().is_punct("->"):
            self.advance()
            right = self._parse_implies()
            return Implies(left, right)
        return left

    def _parse_for_or(self) -> Formula:
        left = self._parse_for_and()
        while self.peek().is_punct("||"):
            self.advance()
            right = self._parse_for_and()
            left = Or(left, right)
        return left

    def _parse_for_and(self) -> Formula:
        left = self._parse_fatom()
        while self.peek().is_punct("&&"):
            self.advance()
            right = self._parse_fatom()
            left = And(left, right)
        return left

    def _parse_fatom(self) -> Formula:
        tok = self.peek()
        if tok.is_punct("!"):
            self.advance()
            return Not(self._parse_fatom())
        if tok.is_kw("false"):
            self.advance()
            return FalseF()
        if tok.is_kw("true"):
            self.advance()
            return TRUE
        if tok.is_punct("("):
            self.advance()
            inner = self.parse_formula()
            self.expect_punct(")")
            return inner
        if tok.is_kw("for"):
            self.advance()
            var = self.expect_ident()
            self.expect_kw("in")
            iterable = self._parse_set_expr()
            op_tok = self.peek()
            if not op_tok.is_punct("&&", "||"):
                raise self.error("formula-level for requires '&&' or '||'")
            self.advance()
            body = self._parse_fatom()
            return A.ForFormula(var, iterable, op_tok.value, body)
        if tok.kind == "ident":
            # liveness predicate S(x) / live(x)
            if tok.value in ("S", "live") and self.peek(1).is_punct("("):
                self.advance()
                self.advance()
                inst = self._parse_ref()
                self.expect_punct(")")
                return Live(inst)
            refx = self._parse_ref()
            if self.peek().is_punct("@"):
                self.advance()
                body = self._parse_fatom()
                return At(refx, body)
            if refx.is_simple:
                index = None
                if self.peek().is_punct("["):
                    self.advance()
                    index = self._parse_index()
                    self.expect_punct("]")
                return Prop(refx.name, index)
            raise self.error(f"qualified name {refx} is not a proposition (missing '@'?)")
        raise self.error("expected a formula")


def parse_program(text: str) -> A.Program:
    """Parse a complete architecture description."""
    return Parser(text).parse_program()


def parse_expression(text: str) -> A.Expr:
    """Parse a single expression (testing convenience)."""
    p = Parser(text)
    e = p.parse_expr()
    if p.peek().kind != "eof":
        raise p.error("trailing input after expression")
    return e


def parse_formula(text: str) -> Formula:
    """Parse a single formula (testing convenience)."""
    p = Parser(text)
    f = p.parse_formula()
    if p.peek().kind != "eof":
        raise p.error("trailing input after formula")
    return f
