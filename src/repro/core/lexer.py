"""Tokenizer for the C-Saw concrete syntax.

The concrete syntax is an ASCII rendering of the paper's mathematical
notation (see DESIGN.md).  Comments run from ``#`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ParseError

KEYWORDS = frozenset(
    {
        "instance_types",
        "instances",
        "def",
        "main",
        "init",
        "prop",
        "data",
        "guard",
        "set",
        "subset",
        "idx",
        "of",
        "for",
        "in",
        "host",
        "skip",
        "return",
        "retry",
        "break",
        "next",
        "reconsider",
        "write",
        "save",
        "restore",
        "wait",
        "assert",
        "retract",
        "keep",
        "verify",
        "start",
        "stop",
        "case",
        "otherwise",
        "if",
        "then",
        "else",
        "false",
        "true",
    }
)

#: Multi-character punctuation, longest first (order matters).
_PUNCT = [
    "<|",
    "|>",
    "||",
    "&&",
    "->",
    "=>",
    "::",
    "...",
    "(",
    ")",
    "{",
    "}",
    "[",
    "]",
    ",",
    ":",
    ";",
    "+",
    "!",
    "=",
    "@",
    "|",
    "*",
    "/",
    "-",
]
# ``...`` must outrank nothing else; sort by length descending for safety.
_PUNCT.sort(key=len, reverse=True)


@dataclass(frozen=True)
class Token:
    """A lexical token.

    ``kind`` is one of ``'ident'``, ``'number'``, ``'punct'``,
    ``'keyword'``, ``'eof'``.  ``value`` is the lexeme (for numbers, the
    parsed float is in ``num``).
    """

    kind: str
    value: str
    line: int
    column: int
    num: float | None = None

    def is_punct(self, *values: str) -> bool:
        return self.kind == "punct" and self.value in values

    def is_kw(self, *values: str) -> bool:
        return self.kind == "keyword" and self.value in values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; raises :class:`ParseError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            col = 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if ch == "#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            kind = "keyword" if word in KEYWORDS else "ident"
            tokens.append(Token(kind, word, line, col))
            col += j - i
            i = j
            continue
        if ch.isdigit():
            j = i
            while j < n and text[j].isdigit():
                j += 1
            if j < n and text[j] == "." and j + 1 < n and text[j + 1].isdigit():
                j += 1
                while j < n and text[j].isdigit():
                    j += 1
            word = text[i:j]
            tokens.append(Token("number", word, line, col, num=float(word)))
            col += j - i
            i = j
            continue
        for p in _PUNCT:
            if text.startswith(p, i):
                tokens.append(Token("punct", p, line, col))
                i += len(p)
                col += len(p)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", "", line, col))
    return tokens
