"""Compilation pipeline: parse → validate → inline → package.

The output, :class:`CompiledProgram`, is what the runtime loads.  Each
junction keeps its (inlined, ``if``-desugared) body template plus its
declarations; final specialization — substituting the parameter values
supplied by ``start`` and unrolling ``for`` templates — happens when an
instance starts (:func:`repro.core.expand.specialize`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from . import ast as A
from .errors import CompileError
from .expand import inline_functions, to_ast_value
from .parser import parse_program
from .validate import validate_program


@dataclass(frozen=True)
class CompiledJunction:
    """A junction definition after function inlining."""

    type_name: str
    name: str
    params: tuple[str, ...]
    decls: tuple[A.Decl, ...]
    body: A.Expr

    @property
    def qualified(self) -> str:
        return f"{self.type_name}::{self.name}"


@dataclass(frozen=True)
class CompiledProgram:
    """A validated, inlined architecture description ready to run."""

    source: A.Program
    junctions: tuple[CompiledJunction, ...]
    main: A.MainDef | None
    config: Mapping[str, object] = field(default_factory=dict)
    #: the DSL text this program was compiled from, when compiled from
    #: text (the analyzer reads ``# analyze:`` comment directives)
    source_text: str | None = None

    def instance_map(self) -> dict[str, str]:
        return self.source.instance_map()

    def junctions_of_type(self, type_name: str) -> list[CompiledJunction]:
        return [j for j in self.junctions if j.type_name == type_name]

    def junction(self, type_name: str, name: str) -> CompiledJunction:
        for j in self.junctions:
            if j.type_name == type_name and j.name == name:
                return j
        raise CompileError(f"no junction {type_name}::{name}")

    def config_env(self) -> dict[str, object]:
        """The load-time configuration lifted to AST values (used to
        supply ``set`` declarations without literals and main args)."""
        return {k: to_ast_value(v) for k, v in self.config.items()}


def compile_program(
    source: str | A.Program,
    config: Mapping[str, object] | None = None,
) -> CompiledProgram:
    """Compile DSL source text (or a parsed :class:`~repro.core.ast.Program`).

    ``config`` supplies load-time values: contents for ``set``
    declarations that lack literals, and values referenced by ``main``'s
    parameters when the runtime starts the program.
    """
    program = parse_program(source) if isinstance(source, str) else source
    validate_program(program)
    functions = program.function_map()

    compiled: list[CompiledJunction] = []
    for d in program.defs:
        body, extra_decls = inline_functions(d.body, functions)
        compiled.append(
            CompiledJunction(
                type_name=d.type_name,
                name=d.junction,
                params=d.params,
                decls=d.decls + extra_decls,
                body=body,
            )
        )

    main = program.main
    if main is not None:
        main_body, extra = inline_functions(main.body, functions)
        if extra:
            raise CompileError("functions inlined into main may not carry declarations")
        main = A.MainDef(params=main.params, body=main_body)

    return CompiledProgram(
        source=program,
        junctions=tuple(compiled),
        main=main,
        config=dict(config or {}),
        source_text=source if isinstance(source, str) else None,
    )
