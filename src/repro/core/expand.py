"""Compile-time template expansion for the C-Saw DSL.

The paper's DSL is not Turing complete: functions are templates inlined
at compile time, and ``for`` loops unroll over compile-time sets
(sec. 6, "Template-based Recursion").  This module implements:

* **function inlining** with by-name substitution (function parameters
  may stand for data names, propositions, targets, sets, indices, or
  timeout values — cf. ``Watch(tgt, prop)`` in Fig. 16);
* **``for`` unrolling** for expressions, formulas, declarations and
  case arms, with the paper's rules: right-associative folding, empty
  set ``∨ → false``, ``∧ → !false``, other operators ``→ skip``;
* **``if`` desugaring** into a two-arm ``case``;
* **substitution** of bound values (parameters, for-variables, set
  declarations) into expressions.

Expansion happens in two phases.  Phase one (``expand_static``) runs at
compile time and inlines functions and desugars ``if``.  Phase two
(``specialize``) runs when a junction's parameters are bound at
instance start; it substitutes parameter values, resolves sets and
unrolls every ``for``.  The paper performs both at compile time; our
bind time is equivalent because instances and their start arguments are
static in a C-Saw program.
"""

from __future__ import annotations

from typing import Mapping

from . import ast as A
from .errors import ExpansionError
from .formula import And, At, FalseF, Formula, Implies, Live, Not, Or, Prop, TRUE

_MAX_INLINE_DEPTH = 32

#: Values that may be bound to names during expansion.
Value = object  # A.Ref | A.Num | A.SetLit


def to_ast_value(v: object) -> Value:
    """Lift a Python value into an AST-level expansion value."""
    if isinstance(v, (A.Ref, A.Num, A.SetLit)):
        return v
    if isinstance(v, str):
        return A.ref(v)
    if isinstance(v, bool):
        raise ExpansionError("booleans are not DSL values; use propositions")
    if isinstance(v, (int, float)):
        return A.Num(float(v))
    if isinstance(v, (list, tuple, set, frozenset)):
        items = tuple(to_ast_value(x) for x in v)
        return A.SetLit(items)
    raise ExpansionError(f"cannot use {type(v).__name__} as a DSL value")


# ---------------------------------------------------------------------------
# Phase 1: function inlining + if desugaring
# ---------------------------------------------------------------------------

class _Inliner:
    """Inlines function templates into an expression tree."""

    def __init__(self, functions: Mapping[str, A.FunctionDef]):
        self.functions = functions
        self.collected_decls: list[A.Decl] = []

    def inline(self, e: A.Expr, env: Mapping[str, Value], depth: int = 0) -> A.Expr:
        if depth > _MAX_INLINE_DEPTH:
            raise ExpansionError("function inlining exceeded maximum depth (recursive templates?)")

        if isinstance(e, A.Call):
            fn = self.functions.get(e.func)
            if fn is None:
                raise ExpansionError(f"unknown function {e.func!r}")
            if len(fn.params) != len(e.args):
                raise ExpansionError(
                    f"function {e.func!r} expects {len(fn.params)} argument(s), got {len(e.args)}"
                )
            call_env = dict(
                zip(fn.params, (subst_arg(a, env) for a in e.args))
            )
            # Function declarations merge into the host junction, with
            # the call's arguments substituted in.
            for d in fn.decls:
                self.collected_decls.append(subst_decl(d, call_env))
            body = subst_expr(fn.body, call_env)
            return self.inline(body, {}, depth + 1)

        if isinstance(e, A.If):
            then = self.inline(e.then, env, depth)
            orelse = self.inline(e.orelse, env, depth) if e.orelse is not None else A.Skip()
            return A.Case(
                arms=(A.CaseArm(e.cond, then, "break"),),
                otherwise=orelse,
            )

        return _rebuild(e, lambda c: self.inline(c, env, depth))


def _rebuild(e: A.Expr, f) -> A.Expr:
    """Rebuild ``e`` with ``f`` applied to each direct child expression."""
    if isinstance(e, A.FateBlock):
        return A.FateBlock(f(e.body))
    if isinstance(e, A.Transaction):
        return A.Transaction(f(e.body))
    if isinstance(e, A.Seq):
        return A.seq(*(f(i) for i in e.items))
    if isinstance(e, A.Par):
        return A.par(*(f(i) for i in e.items))
    if isinstance(e, A.RepPar):
        return A.RepPar(tuple(f(i) for i in e.items))
    if isinstance(e, A.Otherwise):
        return A.Otherwise(f(e.body), e.timeout, f(e.handler))
    if isinstance(e, A.Case):
        arms = []
        for arm in e.arms:
            if isinstance(arm, A.ForArm):
                arms.append(
                    A.ForArm(
                        arm.var,
                        arm.iterable,
                        A.CaseArm(arm.arm.formula, f(arm.arm.body), arm.arm.terminator),
                    )
                )
            else:
                arms.append(A.CaseArm(arm.formula, f(arm.body), arm.terminator))
        return A.Case(tuple(arms), f(e.otherwise))
    if isinstance(e, A.For):
        return A.For(e.var, e.iterable, e.op, f(e.body), e.op_timeout)
    return e


def inline_functions(
    body: A.Expr, functions: Mapping[str, A.FunctionDef]
) -> tuple[A.Expr, tuple[A.Decl, ...]]:
    """Inline all function calls in ``body``; returns the rewritten body
    and any declarations contributed by inlined functions."""
    inl = _Inliner(functions)
    out = inl.inline(body, {})
    return out, tuple(inl.collected_decls)


# ---------------------------------------------------------------------------
# Substitution
# ---------------------------------------------------------------------------

def subst_arg(a: object, env: Mapping[str, Value]) -> object:
    """Substitute bound names inside an argument expression, folding
    arithmetic when both operands become numbers."""
    if isinstance(a, A.Ref):
        if a.is_simple and a.name in env:
            return env[a.name]
        if not a.is_simple and a.parts[0] in env:
            head = env[a.parts[0]]
            if isinstance(head, A.Ref):
                return A.Ref(head.parts + a.parts[1:])
            raise ExpansionError(f"cannot qualify non-reference value with ::{a.parts[1:]}")
        return a
    if isinstance(a, A.Num):
        return a
    if isinstance(a, A.SetLit):
        return A.SetLit(tuple(subst_arg(i, env) for i in a.items))
    if isinstance(a, A.BinArith):
        left = subst_arg(a.left, env)
        right = subst_arg(a.right, env)
        if isinstance(left, A.Num) and isinstance(right, A.Num):
            ops = {
                "+": lambda x, y: x + y,
                "-": lambda x, y: x - y,
                "*": lambda x, y: x * y,
                "/": lambda x, y: x / y,
            }
            return A.Num(ops[a.op](left.value, right.value))
        return A.BinArith(a.op, left, right)
    return a


def _subst_name(name: str, env: Mapping[str, Value], what: str) -> str:
    """Substitute a name-position occurrence (data name, prop name)."""
    if name in env:
        v = env[name]
        if isinstance(v, A.Ref) and v.is_simple:
            return v.name
        raise ExpansionError(f"parameter {name!r} used as a {what} must be bound to a simple name")
    return name


def _subst_index(index: object, env: Mapping[str, Value]) -> object:
    if index is None:
        return None
    if isinstance(index, (A.Ref, A.Num, A.BinArith)):
        return subst_arg(index, env)
    return index


def _subst_target(t: object, env: Mapping[str, Value]) -> object:
    if isinstance(t, A.SelfTarget):
        return t
    if isinstance(t, A.Ref):
        return subst_arg(t, env)
    return t


def subst_formula(f: Formula, env: Mapping[str, Value]) -> Formula:
    if isinstance(f, Prop):
        name = _subst_name(f.name, env, "proposition")
        return Prop(name, _subst_index(f.index, env))
    if isinstance(f, FalseF):
        return f
    if isinstance(f, Not):
        return Not(subst_formula(f.operand, env))
    if isinstance(f, And):
        return And(subst_formula(f.left, env), subst_formula(f.right, env))
    if isinstance(f, Or):
        return Or(subst_formula(f.left, env), subst_formula(f.right, env))
    if isinstance(f, Implies):
        return Implies(subst_formula(f.left, env), subst_formula(f.right, env))
    if isinstance(f, At):
        return At(_subst_target(f.junction, env), subst_formula(f.body, env))
    if isinstance(f, Live):
        return Live(_subst_target(f.instance, env))
    if isinstance(f, A.ForFormula):
        inner = {k: v for k, v in env.items() if k != f.var}
        return A.ForFormula(f.var, subst_arg(f.iterable, env), f.op, subst_formula(f.body, inner))
    raise ExpansionError(f"cannot substitute into formula {f!r}")


def subst_decl(d: A.Decl, env: Mapping[str, Value]) -> A.Decl:
    if isinstance(d, A.InitProp):
        return A.InitProp(_subst_name(d.name, env, "proposition"), d.value, _subst_index(d.index, env))
    if isinstance(d, A.InitData):
        return A.InitData(_subst_name(d.name, env, "data name"))
    if isinstance(d, A.Guard):
        return A.Guard(subst_formula(d.formula, env))
    if isinstance(d, A.SetDecl):
        lit = A.SetLit(tuple(subst_arg(i, env) for i in d.literal.items)) if d.literal else None
        return A.SetDecl(d.name, lit)
    if isinstance(d, A.SubsetDecl):
        return A.SubsetDecl(d.name, subst_arg(d.of_set, env))
    if isinstance(d, A.IdxDecl):
        return A.IdxDecl(d.name, subst_arg(d.of_set, env))
    if isinstance(d, A.ForInit):
        inner = {k: v for k, v in env.items() if k != d.var}
        return A.ForInit(d.var, subst_arg(d.iterable, env), subst_decl(d.decl, inner))
    raise ExpansionError(f"cannot substitute into declaration {d!r}")


def subst_expr(e: A.Expr, env: Mapping[str, Value]) -> A.Expr:
    if isinstance(e, (A.Skip, A.Return, A.Retry, A.HostBlock, A.Keep)):
        return e
    if isinstance(e, A.Write):
        return A.Write(_subst_name(e.name, env, "data name"), _subst_target(e.target, env))
    if isinstance(e, A.Save):
        return A.Save(_subst_name(e.name, env, "data name"))
    if isinstance(e, A.Restore):
        return A.Restore(_subst_name(e.name, env, "data name"))
    if isinstance(e, A.Wait):
        keys = tuple(_subst_name(k, env, "data name") for k in e.keys)
        return A.Wait(keys, subst_formula(e.formula, env))
    if isinstance(e, A.Assert):
        return A.Assert(
            _subst_target(e.target, env),
            _subst_name(e.prop, env, "proposition"),
            _subst_index(e.index, env),
        )
    if isinstance(e, A.Retract):
        return A.Retract(
            _subst_target(e.target, env),
            _subst_name(e.prop, env, "proposition"),
            _subst_index(e.index, env),
        )
    if isinstance(e, A.Verify):
        return A.Verify(subst_formula(e.formula, env))
    if isinstance(e, A.Otherwise):
        return A.Otherwise(
            subst_expr(e.body, env),
            subst_arg(e.timeout, env) if e.timeout is not None else None,
            subst_expr(e.handler, env),
        )
    if isinstance(e, A.Start):
        groups = tuple(
            (jname, tuple(subst_arg(a, env) for a in args)) for jname, args in e.junction_args
        )
        target = _subst_target(e.instance, env)
        if not isinstance(target, A.Ref):
            raise ExpansionError(f"start target must be an instance reference, got {target!r}")
        return A.Start(target, groups)
    if isinstance(e, A.Stop):
        target = _subst_target(e.instance, env)
        if not isinstance(target, A.Ref):
            raise ExpansionError(f"stop target must be an instance reference, got {target!r}")
        return A.Stop(target)
    if isinstance(e, A.Call):
        return A.Call(e.func, tuple(subst_arg(a, env) for a in e.args))
    if isinstance(e, A.Case):
        arms = []
        for arm in e.arms:
            if isinstance(arm, A.ForArm):
                inner = {k: v for k, v in env.items() if k != arm.var}
                arms.append(
                    A.ForArm(
                        arm.var,
                        subst_arg(arm.iterable, env),
                        A.CaseArm(
                            subst_formula(arm.arm.formula, inner),
                            subst_expr(arm.arm.body, inner),
                            arm.arm.terminator,
                        ),
                    )
                )
            else:
                arms.append(
                    A.CaseArm(
                        subst_formula(arm.formula, env),
                        subst_expr(arm.body, env),
                        arm.terminator,
                    )
                )
        return A.Case(tuple(arms), subst_expr(e.otherwise, env))
    if isinstance(e, A.If):
        return A.If(
            subst_formula(e.cond, env),
            subst_expr(e.then, env),
            subst_expr(e.orelse, env) if e.orelse is not None else None,
        )
    if isinstance(e, A.For):
        inner = {k: v for k, v in env.items() if k != e.var}
        return A.For(
            e.var,
            subst_arg(e.iterable, env),
            e.op,
            subst_expr(e.body, inner),
            subst_arg(e.op_timeout, env) if e.op_timeout is not None else None,
        )
    if isinstance(e, A.FateBlock):
        return A.FateBlock(subst_expr(e.body, env))
    if isinstance(e, A.Transaction):
        return A.Transaction(subst_expr(e.body, env))
    if isinstance(e, A.Seq):
        return A.seq(*(subst_expr(i, env) for i in e.items))
    if isinstance(e, A.Par):
        return A.par(*(subst_expr(i, env) for i in e.items))
    if isinstance(e, A.RepPar):
        return A.RepPar(tuple(subst_expr(i, env) for i in e.items))
    raise ExpansionError(f"cannot substitute into {type(e).__name__}")


# ---------------------------------------------------------------------------
# ``me::`` resolution
# ---------------------------------------------------------------------------

def _resolve_me_ref(r: object, instance: str, junction: str) -> object:
    if not isinstance(r, A.Ref) or r.parts[0] != "me":
        return r
    parts = r.parts
    if parts == ("me", "junction"):
        return A.Ref((instance, junction))
    if parts[0] == "me" and len(parts) >= 2 and parts[1] == "instance":
        if len(parts) == 2:
            return A.Ref((instance,))
        return A.Ref((instance,) + parts[2:])
    raise ExpansionError(f"unknown special reference {r}")


def resolve_me_formula(f: Formula, instance: str, junction: str) -> Formula:
    if isinstance(f, Prop):
        return Prop(f.name, _resolve_me_ref(f.index, instance, junction))
    if isinstance(f, Not):
        return Not(resolve_me_formula(f.operand, instance, junction))
    if isinstance(f, And):
        return And(
            resolve_me_formula(f.left, instance, junction),
            resolve_me_formula(f.right, instance, junction),
        )
    if isinstance(f, Or):
        return Or(
            resolve_me_formula(f.left, instance, junction),
            resolve_me_formula(f.right, instance, junction),
        )
    if isinstance(f, Implies):
        return Implies(
            resolve_me_formula(f.left, instance, junction),
            resolve_me_formula(f.right, instance, junction),
        )
    if isinstance(f, At):
        return At(
            _resolve_me_ref(f.junction, instance, junction),
            resolve_me_formula(f.body, instance, junction),
        )
    if isinstance(f, Live):
        return Live(_resolve_me_ref(f.instance, instance, junction))
    return f


def resolve_me_decl(d: A.Decl, instance: str, junction: str) -> A.Decl:
    if isinstance(d, A.InitProp):
        return A.InitProp(d.name, d.value, _resolve_me_ref(d.index, instance, junction))
    if isinstance(d, A.Guard):
        return A.Guard(resolve_me_formula(d.formula, instance, junction))
    return d


def resolve_me_expr(e: A.Expr, instance: str, junction: str) -> A.Expr:
    """Rewrite ``me::junction`` / ``me::instance[::j]`` references to the
    concrete instance and junction names (done at bind time)."""

    def rme(x):
        return resolve_me_expr(x, instance, junction)

    if isinstance(e, A.Write):
        return A.Write(e.name, _resolve_me_ref(e.target, instance, junction))
    if isinstance(e, A.Assert):
        return A.Assert(
            _resolve_me_ref(e.target, instance, junction),
            e.prop,
            _resolve_me_ref(e.index, instance, junction),
        )
    if isinstance(e, A.Retract):
        return A.Retract(
            _resolve_me_ref(e.target, instance, junction),
            e.prop,
            _resolve_me_ref(e.index, instance, junction),
        )
    if isinstance(e, A.Wait):
        return A.Wait(e.keys, resolve_me_formula(e.formula, instance, junction))
    if isinstance(e, A.Verify):
        return A.Verify(resolve_me_formula(e.formula, instance, junction))
    if isinstance(e, A.Start):
        return A.Start(
            _resolve_me_ref(e.instance, instance, junction), e.junction_args
        )
    if isinstance(e, A.Stop):
        return A.Stop(_resolve_me_ref(e.instance, instance, junction))
    if isinstance(e, A.Case):
        arms = tuple(
            A.CaseArm(
                resolve_me_formula(a.formula, instance, junction),
                rme(a.body),
                a.terminator,
            )
            for a in e.arms
        )
        return A.Case(arms, rme(e.otherwise))
    return _rebuild(e, rme)


# ---------------------------------------------------------------------------
# Phase 2: set resolution + for unrolling
# ---------------------------------------------------------------------------

def resolve_set(iterable: object, env: Mapping[str, Value]) -> tuple:
    """Resolve a set expression (a set name or literal) to its elements."""
    s = subst_arg(iterable, env) if isinstance(iterable, (A.Ref, A.BinArith)) else iterable
    if isinstance(s, A.SetLit):
        return tuple(subst_arg(i, env) for i in s.items)
    if isinstance(s, A.Ref):
        raise ExpansionError(f"set {s} has no value at expansion time")
    raise ExpansionError(f"not a set: {s!r}")


#: env-key prefix marking a subset declaration's parent set, so that
#: ``for x in <subset>`` can unroll over the parent with membership
#: guards (subsets are runtime-populated; sec. 7.1's Fig. 6).
SUBSET_PARENT_PREFIX = "__subset_parent__:"


def subset_membership_prop(subset_name: str) -> str:
    """The auto-declared proposition family tracking a subset's
    membership: ``__in_<name>[elem]``."""
    return f"__in_{subset_name}"


def unroll_for(e: A.For, env: Mapping[str, Value]) -> A.Expr:
    """Unroll one ``for`` node per the paper's template-recursion rules.

    Iterating over a *subset* unrolls over its (compile-time) parent
    set, wrapping each instantiation in a membership test on the
    auto-maintained ``__in_<subset>[elem]`` proposition — "all sets and
    subsets are necessarily finite, and it is always possible to
    iterate over them" (sec. 6)."""
    if isinstance(e.iterable, A.Ref) and e.iterable.is_simple:
        parent_key = SUBSET_PARENT_PREFIX + e.iterable.name
        if parent_key in env:
            member = subset_membership_prop(e.iterable.name)
            guarded = A.Case(
                arms=(A.CaseArm(Prop(member, A.ref(e.var)), e.body, "break"),),
                otherwise=A.Skip(),
            )
            inner = A.For(e.var, env[parent_key], e.op, guarded, e.op_timeout)
            return unroll_for(inner, env)
    elems = resolve_set(e.iterable, env)
    if not elems:
        return A.Skip()  # expression-level ops: empty set -> skip
    bodies = []
    for elem in elems:
        inner = dict(env)
        inner[e.var] = elem
        bodies.append(unroll_expr(subst_expr(e.body, {e.var: elem}), inner))
    if len(bodies) == 1:
        return bodies[0]
    if e.op == ";":
        return A.seq(*bodies)
    if e.op == "+":
        return A.par(*bodies)
    if e.op == "||":
        return A.RepPar(tuple(bodies))
    if e.op == "otherwise":
        # right-associative: E1 otherwise (E2 otherwise E3)
        out = bodies[-1]
        for b in reversed(bodies[:-1]):
            out = A.Otherwise(b, e.op_timeout, out)
        return out
    raise ExpansionError(f"unknown for-operator {e.op!r}")


def unroll_formula(f: Formula, env: Mapping[str, Value]) -> Formula:
    """Unroll ``ForFormula`` nodes and substitute the environment."""
    f = subst_formula(f, env)
    if isinstance(f, A.ForFormula):
        elems = resolve_set(f.iterable, env)
        if not elems:
            return FalseF() if f.op == "||" else TRUE
        parts = [unroll_formula(subst_formula(f.body, {f.var: el}), env) for el in elems]
        out = parts[-1]
        ctor = Or if f.op == "||" else And
        for p in reversed(parts[:-1]):
            out = ctor(p, out)
        return out
    if isinstance(f, Not):
        return Not(unroll_formula(f.operand, env))
    if isinstance(f, And):
        return And(unroll_formula(f.left, env), unroll_formula(f.right, env))
    if isinstance(f, Or):
        return Or(unroll_formula(f.left, env), unroll_formula(f.right, env))
    if isinstance(f, Implies):
        return Implies(unroll_formula(f.left, env), unroll_formula(f.right, env))
    if isinstance(f, At):
        return At(f.junction, unroll_formula(f.body, env))
    return f


def unroll_expr(e: A.Expr, env: Mapping[str, Value]) -> A.Expr:
    """Recursively unroll every ``for`` in ``e`` under ``env``."""
    if isinstance(e, A.For):
        return unroll_for(A.For(e.var, e.iterable, e.op, e.body, e.op_timeout), env)
    if isinstance(e, A.Wait):
        return A.Wait(e.keys, unroll_formula(e.formula, env))
    if isinstance(e, A.Verify):
        return A.Verify(unroll_formula(e.formula, env))
    if isinstance(e, A.Case):
        arms: list[A.CaseArm] = []
        for arm in e.arms:
            if isinstance(arm, A.ForArm):
                for elem in resolve_set(arm.iterable, env):
                    sub = {arm.var: elem}
                    arms.append(
                        A.CaseArm(
                            unroll_formula(subst_formula(arm.arm.formula, sub), env),
                            unroll_expr(subst_expr(arm.arm.body, sub), env),
                            arm.arm.terminator,
                        )
                    )
            else:
                arms.append(
                    A.CaseArm(
                        unroll_formula(arm.formula, env),
                        unroll_expr(arm.body, env),
                        arm.terminator,
                    )
                )
        return A.Case(tuple(arms), unroll_expr(e.otherwise, env))
    if isinstance(e, A.If):
        # If survives only if phase 1 was skipped (direct API use).
        orelse = unroll_expr(e.orelse, env) if e.orelse is not None else A.Skip()
        return A.Case(
            arms=(A.CaseArm(unroll_formula(e.cond, env), unroll_expr(e.then, env), "break"),),
            otherwise=orelse,
        )
    return _rebuild(e, lambda c: unroll_expr(c, env))


def specialize(
    body: A.Expr,
    decls: tuple[A.Decl, ...],
    env: Mapping[str, Value],
) -> tuple[A.Expr, tuple[A.Decl, ...]]:
    """Bind-time specialization: substitute parameter values into
    ``body`` and ``decls``, resolve set declarations, and unroll all
    templates.  Returns the closed body and the flattened declarations
    (ForInit expanded to concrete InitProps).

    Set declarations with literals extend the environment so later
    declarations and the body can iterate over them.
    """
    env = dict(env)
    out_decls: list[A.Decl] = []
    # register subset parents first so body unrolling sees them
    for d in decls:
        if isinstance(d, A.SubsetDecl):
            of = subst_arg(d.of_set, env)
            if isinstance(of, A.Ref) and of.is_simple:
                # parent set declared by a (possibly later) SetDecl or env
                for d2 in decls:
                    if isinstance(d2, A.SetDecl) and d2.name == of.name and d2.literal:
                        of = d2.literal
                        break
                else:
                    of = env.get(of.name, of)
            if isinstance(of, A.SetLit):
                env[SUBSET_PARENT_PREFIX + d.name] = of
    for d in decls:
        d = subst_decl(d, env)
        if isinstance(d, A.SetDecl):
            if d.literal is None:
                if d.name not in env:
                    raise ExpansionError(
                        f"set {d.name!r} has no literal and no value supplied at load time"
                    )
            else:
                env[d.name] = d.literal
            out_decls.append(A.SetDecl(d.name, d.literal or env.get(d.name)))
        elif isinstance(d, A.ForInit):
            for elem in resolve_set(d.iterable, env):
                out_decls.append(subst_decl(d.decl, {d.var: elem}))
        elif isinstance(d, A.Guard):
            out_decls.append(A.Guard(unroll_formula(d.formula, env)))
        else:
            out_decls.append(d)

    new_body = unroll_expr(subst_expr(body, env), env)
    return new_body, tuple(out_decls)
