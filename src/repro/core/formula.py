"""Propositional formulas of the C-Saw DSL.

The grammar (Table 1 of the paper) is::

    F ::= P | false | !F | F && F | F || F | F -> F
    G ::= F | gamma@F          -- junction-scoped formulas
    plus S(iota)               -- instance-liveness predicate (sec. 7.4)

``true`` is sugar for ``!false``.  Propositions may be indexed
(``Work[tgt]``); an index is resolved against the junction's bindings
before evaluation, after which the proposition is identified by the
flat key ``"Work[Bck1]"``.

The module provides:

* frozen AST dataclasses for formulas,
* three-valued evaluation (``True`` / ``False`` / ``UNKNOWN``) used by
  ``verify`` and junction guards,
* conversion to disjunctive normal form (sets of literal sets), used by
  the event-structure semantics (sec. 8.3) and by the runtime's ``wait``
  machinery to know which propositions a blocked formula observes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, FrozenSet, Iterator, Tuple


class Ternary:
    """Singleton third truth value for the paper's ternary logic."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "UNKNOWN"

    def __bool__(self) -> bool:
        raise TypeError("UNKNOWN has no boolean value; handle it explicitly")


#: The third truth value.  ``verify`` treats it as an error.
UNKNOWN = Ternary()


class Formula:
    """Base class of formula AST nodes.  All nodes are immutable."""

    __slots__ = ()

    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Prop(Formula):
    """A user-defined proposition, optionally indexed.

    ``index`` is either ``None``, a variable name (to be resolved), or a
    concrete set element (after substitution).
    """

    name: str
    index: object | None = None

    def key(self) -> str:
        """Flat KV-table key for this proposition."""
        if self.index is None:
            return self.name
        return f"{self.name}[{self.index}]"

    def __str__(self) -> str:
        return self.key()


@dataclass(frozen=True)
class FalseF(Formula):
    """The constant ``false``."""

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def __str__(self) -> str:
        return f"!{_paren(self.operand)}"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"{_paren(self.left)} && {_paren(self.right)}"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"{_paren(self.left)} || {_paren(self.right)}"


@dataclass(frozen=True)
class Implies(Formula):
    left: Formula
    right: Formula

    def __str__(self) -> str:
        return f"{_paren(self.left)} -> {_paren(self.right)}"


@dataclass(frozen=True)
class At(Formula):
    """``gamma@F``: formula ``F`` interpreted in junction ``gamma``.

    ``junction`` is a reference expression resolved by the runtime (it
    may involve ``me::instance``).  Evaluating ``At`` when the target's
    instance is not running yields :data:`UNKNOWN`.
    """

    junction: object  # a core.ast.Ref, kept loose to avoid a cycle
    body: Formula

    def __str__(self) -> str:
        return f"{self.junction}@{_paren(self.body)}"


@dataclass(frozen=True)
class Live(Formula):
    """``S(iota)``: true iff instance ``iota`` is currently running.

    Used by the watched fail-over architecture (sec. 7.4) to guard
    watchdog junctions on subsystem liveness.
    """

    instance: object

    def __str__(self) -> str:
        return f"S({self.instance})"


TRUE: Formula = Not(FalseF())


def _paren(f: Formula) -> str:
    if isinstance(f, (Prop, FalseF, Not, Live)):
        return str(f)
    return f"({f})"


# ---------------------------------------------------------------------------
# Evaluation
# ---------------------------------------------------------------------------

#: An environment maps a proposition key to True/False/UNKNOWN.  ``at``
#: resolves junction-scoped sub-formulas; ``live`` resolves liveness.
PropEnv = Callable[[str], object]


def evaluate(
    f: Formula,
    env: PropEnv,
    *,
    at: Callable[[object, Formula], object] | None = None,
    live: Callable[[object], object] | None = None,
) -> object:
    """Three-valued (Kleene) evaluation of ``f``.

    ``env(key)`` returns the truth value of proposition ``key`` —
    ``True``, ``False`` or :data:`UNKNOWN`.  ``at(junction, body)``
    evaluates a junction-scoped sub-formula; ``live(instance)`` tests
    liveness.  Missing handlers make the respective constructs evaluate
    to :data:`UNKNOWN`.
    """
    if isinstance(f, FalseF):
        return False
    if isinstance(f, Prop):
        return env(f.key())
    if isinstance(f, Not):
        v = evaluate(f.operand, env, at=at, live=live)
        return UNKNOWN if v is UNKNOWN else (not v)
    if isinstance(f, And):
        l = evaluate(f.left, env, at=at, live=live)
        r = evaluate(f.right, env, at=at, live=live)
        if l is False or r is False:
            return False
        if l is UNKNOWN or r is UNKNOWN:
            return UNKNOWN
        return True
    if isinstance(f, Or):
        l = evaluate(f.left, env, at=at, live=live)
        r = evaluate(f.right, env, at=at, live=live)
        if l is True or r is True:
            return True
        if l is UNKNOWN or r is UNKNOWN:
            return UNKNOWN
        return False
    if isinstance(f, Implies):
        return evaluate(Or(Not(f.left), f.right), env, at=at, live=live)
    if isinstance(f, At):
        if at is None:
            return UNKNOWN
        return at(f.junction, f.body)
    if isinstance(f, Live):
        if live is None:
            return UNKNOWN
        return live(f.instance)
    raise TypeError(f"not a formula: {f!r}")


def evaluate_bool(f: Formula, env: PropEnv, **kw) -> bool:
    """Two-valued evaluation; :data:`UNKNOWN` collapses to ``False``."""
    v = evaluate(f, env, **kw)
    return v is True


# ---------------------------------------------------------------------------
# Structural queries
# ---------------------------------------------------------------------------

def propositions(f: Formula) -> FrozenSet[str]:
    """The set of flat proposition keys occurring in ``f`` (local scope
    only; propositions under an ``@`` belong to the remote junction and
    are excluded)."""
    out: set[str] = set()

    def walk(g: Formula) -> None:
        if isinstance(g, Prop):
            out.add(g.key())
        elif isinstance(g, Not):
            walk(g.operand)
        elif isinstance(g, (And, Or, Implies)):
            walk(g.left)
            walk(g.right)
        # At / Live / FalseF contribute no local propositions

    walk(f)
    return frozenset(out)


def prop_nodes(f: Formula) -> Iterator[Prop]:
    """Iterate over every :class:`Prop` node, including under ``@``."""
    if isinstance(f, Prop):
        yield f
    elif isinstance(f, Not):
        yield from prop_nodes(f.operand)
    elif isinstance(f, (And, Or, Implies)):
        yield from prop_nodes(f.left)
        yield from prop_nodes(f.right)
    elif isinstance(f, At):
        yield from prop_nodes(f.body)


# ---------------------------------------------------------------------------
# Disjunctive normal form
# ---------------------------------------------------------------------------

#: A literal is ``(key, polarity)``; a DNF is a frozenset of frozensets
#: of literals.  The empty DNF denotes ``false``; a DNF containing the
#: empty clause denotes ``true``.
Literal = Tuple[str, bool]
Clause = FrozenSet[Literal]
DNF = FrozenSet[Clause]

DNF_FALSE: DNF = frozenset()
DNF_TRUE: DNF = frozenset({frozenset()})


def to_dnf(f: Formula) -> DNF:
    """Convert ``f`` to disjunctive normal form (sec. 8.3 of the paper).

    ``At`` and ``Live`` sub-formulas are not supported here: the DNF is
    only needed for local ``wait``/guard formulas and for the semantics'
    read-event decomposition, both of which are local by construction.
    Contradictory clauses (containing ``P`` and ``!P``) are dropped and
    subsumed clauses removed, yielding a canonical-ish form suitable for
    equality testing in tests.
    """
    nnf = _to_nnf(f, positive=True)
    clauses = _dnf_clauses(nnf)
    cleaned = set()
    for c in clauses:
        keys = {}
        contradictory = False
        for key, pol in c:
            if keys.get(key, pol) != pol:
                contradictory = True
                break
            keys[key] = pol
        if not contradictory:
            cleaned.add(frozenset(c))
    # Remove subsumed clauses: drop c if a strict subset c' exists.
    minimal = {
        c
        for c in cleaned
        if not any(other < c for other in cleaned)
    }
    return frozenset(minimal)


def _to_nnf(f: Formula, positive: bool) -> Formula:
    """Push negations to the literals."""
    if isinstance(f, FalseF):
        return f if positive else TRUE
    if isinstance(f, Prop):
        return f if positive else Not(f)
    if isinstance(f, Not):
        return _to_nnf(f.operand, not positive)
    if isinstance(f, And):
        l = _to_nnf(f.left, positive)
        r = _to_nnf(f.right, positive)
        return And(l, r) if positive else Or(l, r)
    if isinstance(f, Or):
        l = _to_nnf(f.left, positive)
        r = _to_nnf(f.right, positive)
        return Or(l, r) if positive else And(l, r)
    if isinstance(f, Implies):
        return _to_nnf(Or(Not(f.left), f.right), positive)
    raise TypeError(f"to_dnf does not support {type(f).__name__} nodes")


def _dnf_clauses(f: Formula) -> set[frozenset]:
    """Clauses of an NNF formula (Not(Not(FalseF)) patterns resolved)."""
    if isinstance(f, FalseF):
        return set()
    if isinstance(f, Not) and isinstance(f.operand, FalseF):
        return {frozenset()}
    if isinstance(f, Prop):
        return {frozenset({(f.key(), True)})}
    if isinstance(f, Not) and isinstance(f.operand, Prop):
        return {frozenset({(f.operand.key(), False)})}
    if isinstance(f, Or):
        return _dnf_clauses(f.left) | _dnf_clauses(f.right)
    if isinstance(f, And):
        left = _dnf_clauses(f.left)
        right = _dnf_clauses(f.right)
        return {lc | rc for lc in left for rc in right}
    raise TypeError(f"formula not in NNF: {f!r}")


def dnf_to_formula(dnf: DNF) -> Formula:
    """Rebuild a formula from its DNF (for testing equivalences)."""
    if not dnf:
        return FalseF()
    clause_fs = []
    for clause in sorted(dnf, key=lambda c: sorted(c)):
        if not clause:
            return TRUE
        lits = [
            Prop(key) if pol else Not(Prop(key))
            for key, pol in sorted(clause)
        ]
        g = lits[0]
        for lit in lits[1:]:
            g = And(g, lit)
        clause_fs.append(g)
    f = clause_fs[0]
    for g in clause_fs[1:]:
        f = Or(f, g)
    return f
