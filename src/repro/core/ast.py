"""Abstract syntax of the C-Saw DSL (Table 1 of the paper).

Every node is an immutable dataclass.  The tree produced by the parser
is *unexpanded*: it may still contain function calls (templates),
``for`` loops, ``if`` sugar and unresolved parameter names.  The
expander (:mod:`repro.core.expand`) rewrites it into a closed form that
the runtime interprets directly.

Naming follows the paper:

=================  =====================================================
Paper              Here
=================  =====================================================
``⌊H⌉{V}``         :class:`HostBlock`
``⟨E⟩``            :class:`FateBlock`
``⟨|E|⟩``          :class:`Transaction`
``E1; E2``         :class:`Seq` (n-ary)
``E1 + E2``        :class:`Par` (n-ary)
``∥n E``           :class:`RepPar`
``otherwise[t]``   :class:`Otherwise`
``case {..}``      :class:`Case` / :class:`CaseArm`
=================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .formula import Formula


# ---------------------------------------------------------------------------
# References and argument expressions
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Ref:
    """A possibly-qualified name: ``g``, ``f::c``, ``me::junction``,
    ``me::instance::serve``.

    ``parts`` holds the ``::``-separated components.  A single-part Ref
    may denote (depending on context, resolved later): a parameter, a
    proposition, a data name, an instance, a set, or an index variable.
    """

    parts: Tuple[str, ...]

    def __post_init__(self):
        if not self.parts:
            raise ValueError("empty reference")

    @property
    def is_simple(self) -> bool:
        return len(self.parts) == 1

    @property
    def name(self) -> str:
        """The sole component of a simple reference."""
        if not self.is_simple:
            raise ValueError(f"{self} is not a simple name")
        return self.parts[0]

    def __str__(self) -> str:
        return "::".join(self.parts)


def ref(text: str) -> Ref:
    """Build a :class:`Ref` from ``'a::b::c'`` notation."""
    return Ref(tuple(text.split("::")))


@dataclass(frozen=True)
class Num:
    """A numeric literal argument (timeout values etc.)."""

    value: float

    def __str__(self) -> str:
        v = self.value
        return str(int(v)) if float(v).is_integer() else str(v)


@dataclass(frozen=True)
class BinArith:
    """Arithmetic on arguments, e.g. the ``3*t`` of Fig. 12."""

    op: str  # '+', '-', '*', '/'
    left: "Arg"
    right: "Arg"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class SetLit:
    """A literal set: ``{b1::serve, b2::serve}``.  Elements are Refs or
    Nums; sets may not contain sets (checked by validation)."""

    items: Tuple[object, ...]

    def __str__(self) -> str:
        return "{" + ", ".join(str(i) for i in self.items) + "}"


#: Things that may appear as definition arguments.
Arg = object  # Ref | Num | BinArith | SetLit


# ---------------------------------------------------------------------------
# Targets of assert/retract/write
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SelfTarget:
    """The ``[]`` target: the junction's own table."""

    def __str__(self) -> str:
        return "[]"


#: A communication target: SelfTarget, or a Ref (instance, junction,
#: parameter or index variable — resolved at runtime).
Target = object


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class HostBlock(Expr):
    """``host Name {w1, w2}``: run host-language code ``Name``.

    ``writes`` lists the junction-state symbols the host code may write
    (the ``{V}`` of ``⌊H⌉{V}``); host code may *read* arbitrary junction
    state.  An empty tuple means the block cannot alter the KV table.
    """

    name: str
    writes: Tuple[str, ...] = ()

    def __str__(self) -> str:
        w = "{" + ", ".join(self.writes) + "}" if self.writes else ""
        return f"host {self.name}{w}"


@dataclass(frozen=True)
class FateBlock(Expr):
    """``⟨E⟩``: a common fate scope.  Failure inside propagates out;
    no rollback is performed.  ``return`` inside leaves the block."""

    body: Expr

    def __str__(self) -> str:
        return f"{{ {self.body} }}"


@dataclass(frozen=True)
class Transaction(Expr):
    """``⟨|E|⟩``: like :class:`FateBlock` but a failure rolls the KV
    table back to its state at block entry before re-raising.  Host
    blocks are forbidden inside (rollback is undefined for them)."""

    body: Expr

    def __str__(self) -> str:
        return f"<| {self.body} |>"


@dataclass(frozen=True)
class Skip(Expr):
    """No-op; always succeeds."""

    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Return(Expr):
    """Leave the enclosing fate scope (or the junction at top level)."""

    def __str__(self) -> str:
        return "return"


@dataclass(frozen=True)
class Retry(Expr):
    """Branch back to the start of the junction; bounded per scheduling."""

    def __str__(self) -> str:
        return "retry"


@dataclass(frozen=True)
class Write(Expr):
    """``write(n, target)``: push named data ``n`` to another junction's
    table.  ``n`` must have been produced by ``save``."""

    name: str
    target: Target

    def __str__(self) -> str:
        return f"write({self.name}, {self.target})"


@dataclass(frozen=True)
class Save(Expr):
    """``save(n)`` — the paper's ``save(..., n)``: serialize host state
    into named data ``n`` in the local table."""

    name: str

    def __str__(self) -> str:
        return f"save({self.name})"


@dataclass(frozen=True)
class Restore(Expr):
    """``restore(n)`` — the paper's ``restore(n, ...)``: deserialize
    named data ``n`` back into host state.  Fails on ``undef``."""

    name: str

    def __str__(self) -> str:
        return f"restore({self.name})"


@dataclass(frozen=True)
class Wait(Expr):
    """``wait [n1, n2] F``: block until formula ``F`` holds.  While
    blocked, remote updates to ``F``'s propositions and to the listed
    data keys are admitted into the table immediately."""

    keys: Tuple[str, ...]
    formula: Formula

    def __str__(self) -> str:
        return f"wait [{', '.join(self.keys)}] {self.formula}"


@dataclass(frozen=True)
class Assert(Expr):
    """``assert [target] P`` — set proposition ``P`` true at ``target``
    (and locally, once the remote update is acknowledged).  A
    :class:`SelfTarget` asserts locally only."""

    target: Target
    prop: str
    index: object | None = None

    def key(self) -> str:
        return self.prop if self.index is None else f"{self.prop}[{self.index}]"

    def __str__(self) -> str:
        return f"assert [{self.target}] {self.key()}"


@dataclass(frozen=True)
class Retract(Expr):
    """``retract [target] P`` — dual of :class:`Assert`."""

    target: Target
    prop: str
    index: object | None = None

    def key(self) -> str:
        return self.prop if self.index is None else f"{self.prop}[{self.index}]"

    def __str__(self) -> str:
        return f"retract [{self.target}] {self.key()}"


@dataclass(frozen=True)
class Keep(Expr):
    """``keep(k1, k2)``: discard pending remote updates to the listed
    propositions/data.  Idempotent."""

    keys: Tuple[str, ...]

    def __str__(self) -> str:
        return f"keep({', '.join(self.keys)})"


@dataclass(frozen=True)
class Verify(Expr):
    """``verify G``: fail unless the (possibly junction-scoped) formula
    holds; evaluating ``gamma@P`` against a non-running instance is an
    error (ternary logic)."""

    formula: Formula

    def __str__(self) -> str:
        return f"verify {self.formula}"


@dataclass(frozen=True)
class Seq(Expr):
    """``E1; E2; ...`` — n-ary sequential composition."""

    items: Tuple[Expr, ...]

    def __str__(self) -> str:
        return "; ".join(str(i) for i in self.items)


@dataclass(frozen=True)
class Par(Expr):
    """``E1 + E2 + ...`` — parallel composition; all branches must
    complete for the composition to succeed."""

    items: Tuple[Expr, ...]

    def __str__(self) -> str:
        return " + ".join(f"({i})" for i in self.items)


@dataclass(frozen=True)
class RepPar(Expr):
    """``E1 || E2 || ...`` — the paper's ``∥n`` replicated-parallel
    composition.  Operationally like :class:`Par`; its event-structure
    semantics additionally cross-copies continuations (Fig. 20)."""

    items: Tuple[Expr, ...]

    def __str__(self) -> str:
        return " || ".join(f"({i})" for i in self.items)


@dataclass(frozen=True)
class Otherwise(Expr):
    """``E1 otherwise[t] E2``: run ``E1`` under deadline ``t`` (an Arg
    expression in simulated time units; ``None`` = no deadline).  If
    ``E1`` fails — including by exceeding the deadline — run ``E2``."""

    body: Expr
    timeout: Optional[Arg]
    handler: Expr

    def __str__(self) -> str:
        t = f"[{self.timeout}]" if self.timeout is not None else ""
        return f"({self.body}) otherwise{t} ({self.handler})"


@dataclass(frozen=True)
class Start(Expr):
    """``start iota (args)`` or ``start iota j1(args) j2(args) ...``.

    ``junction_args`` maps junction names to their argument tuples; the
    key ``None`` holds a single anonymous argument list distributed to
    the instance's sole junction.  Fails if the instance is running.
    """

    instance: Ref
    junction_args: Tuple[Tuple[Optional[str], Tuple[Arg, ...]], ...] = ()

    def __str__(self) -> str:
        parts = [f"start {self.instance}"]
        for jname, args in self.junction_args:
            argstr = "(" + ", ".join(str(a) for a in args) + ")"
            parts.append(argstr if jname is None else f"{jname}{argstr}")
        return " ".join(parts)


@dataclass(frozen=True)
class Stop(Expr):
    """``stop iota``: fail if already stopped."""

    instance: Ref

    def __str__(self) -> str:
        return f"stop {self.instance}"


@dataclass(frozen=True)
class Call(Expr):
    """``f(args)``: invocation of a DSL function (a compile-time
    template; inlined by the expander)."""

    func: str
    args: Tuple[Arg, ...] = ()

    def __str__(self) -> str:
        return f"{self.func}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True)
class CaseArm:
    """One arm of a ``case``: formula, body, and a terminator from
    ``{break, next, reconsider}``."""

    formula: Formula
    body: Expr
    terminator: str  # 'break' | 'next' | 'reconsider'

    def __str__(self) -> str:
        return f"{self.formula} => {self.body}; {self.terminator}"


@dataclass(frozen=True)
class ForArm:
    """A ``for``-generated family of case arms (Fig. 10's
    ``for b in backends !Call && InitBackend[b] => ...``).  Expansion
    produces one :class:`CaseArm` per set element, in set order."""

    var: str
    iterable: object  # Ref | SetLit
    arm: CaseArm

    def __str__(self) -> str:
        return f"for {self.var} in {self.iterable} {self.arm}"


@dataclass(frozen=True)
class Case(Expr):
    """``case { F1 => E1; T1 ... otherwise => En }``.

    ``arms`` may contain :class:`ForArm` entries before expansion.
    """

    arms: Tuple[CaseArm, ...]
    otherwise: Expr

    def __str__(self) -> str:
        inner = " ".join(str(a) for a in self.arms)
        return f"case {{ {inner} otherwise => {self.otherwise} }}"


@dataclass(frozen=True)
class If(Expr):
    """``if F then E1 [else E2]`` — sugar, desugared to a 2-arm case by
    the expander."""

    cond: Formula
    then: Expr
    orelse: Optional[Expr] = None

    def __str__(self) -> str:
        e = f" else {self.orelse}" if self.orelse is not None else ""
        return f"if {self.cond} then {self.then}{e}"


@dataclass(frozen=True)
class For(Expr):
    """``for x in S op E[x]`` — template recursion, unrolled at
    expansion time with the paper's rules:

    * right-associative folding with ``op`` in
      ``{'||' (or), '&&' (and), ';', '+', 'par' (∥), 'otherwise[t]'}``
    * empty set: ``false`` for ∨, ``!false`` for ∧, ``skip`` otherwise
    * singleton: the single instantiation.

    ``op_timeout`` carries the ``[t]`` when ``op`` is ``otherwise``.
    ``iterable`` is a set name (Ref) or a :class:`SetLit`.
    """

    var: str
    iterable: object  # Ref | SetLit
    op: str
    body: Expr
    op_timeout: Optional[Arg] = None

    def __str__(self) -> str:
        t = f"[{self.op_timeout}]" if self.op_timeout is not None else ""
        return f"for {self.var} in {self.iterable} {self.op}{t} {self.body}"


@dataclass(frozen=True)
class ForFormula(Formula):
    """``for x in S op F[x]`` at the formula level, with ``op`` in
    ``{'&&', '||'}`` — unrolled by the expander into a conjunction or
    disjunction (empty set: ``!false`` for &&, ``false`` for ||)."""

    var: str
    iterable: object  # Ref | SetLit
    op: str
    body: Formula

    def __str__(self) -> str:
        return f"for {self.var} in {self.iterable} {self.op} {self.body}"


# ---------------------------------------------------------------------------
# Declarations (junction headers)
# ---------------------------------------------------------------------------

class Decl:
    """Base class for ``|``-prefixed declarations."""

    __slots__ = ()


@dataclass(frozen=True)
class InitProp(Decl):
    """``init prop [!]P`` or indexed ``init prop [!]P[x]``."""

    name: str
    value: bool
    index: object | None = None

    def key(self) -> str:
        return self.name if self.index is None else f"{self.name}[{self.index}]"

    def __str__(self) -> str:
        neg = "" if self.value else "!"
        return f"init prop {neg}{self.key()}"


@dataclass(frozen=True)
class InitData(Decl):
    """``init data n`` — initialized to the special ``undef``."""

    name: str

    def __str__(self) -> str:
        return f"init data {self.name}"


@dataclass(frozen=True)
class Guard(Decl):
    """``guard G``: the junction may only be scheduled while G holds."""

    formula: Formula

    def __str__(self) -> str:
        return f"guard {self.formula}"


@dataclass(frozen=True)
class SetDecl(Decl):
    """``set S`` (value supplied at load time through the expansion
    config) or ``set S = {a, b}`` (literal)."""

    name: str
    literal: Optional[SetLit] = None

    def __str__(self) -> str:
        lit = f" = {self.literal}" if self.literal is not None else ""
        return f"set {self.name}{lit}"


@dataclass(frozen=True)
class SubsetDecl(Decl):
    """``subset x of S``: a runtime-populated subset of ``S`` writable
    only by host blocks that declare ``x``; initialized ``undef``."""

    name: str
    of_set: object  # Ref | SetLit

    def __str__(self) -> str:
        return f"subset {self.name} of {self.of_set}"


@dataclass(frozen=True)
class IdxDecl(Decl):
    """``idx x of S``: a host-writable choice over set ``S`` (also used
    as a cursor: as a target, resolves to the chosen element)."""

    name: str
    of_set: object  # Ref | SetLit

    def __str__(self) -> str:
        return f"idx {self.name} of {self.of_set}"


@dataclass(frozen=True)
class ForInit(Decl):
    """``for x in S init prop [!]P[x]``: one proposition per element."""

    var: str
    iterable: object  # Ref | SetLit
    decl: InitProp

    def __str__(self) -> str:
        return f"for {self.var} in {self.iterable} {self.decl}"


# ---------------------------------------------------------------------------
# Definitions and programs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class JunctionDef:
    """``def Type::name(params) = | decls... body``.

    ``junction`` may be ``"junction"`` (the default used when the paper
    writes ``def tau :: (t)`` with an anonymous junction).
    """

    type_name: str
    junction: str
    params: Tuple[str, ...]
    decls: Tuple[Decl, ...]
    body: Expr

    @property
    def qualified(self) -> str:
        return f"{self.type_name}::{self.junction}"


@dataclass(frozen=True)
class FunctionDef:
    """``def f(params) = body`` — a compile-time template.  Functions
    may carry declarations (e.g. ``Watch`` in Fig. 16); these merge into
    the junction that inlines them."""

    name: str
    params: Tuple[str, ...]
    decls: Tuple[Decl, ...]
    body: Expr


@dataclass(frozen=True)
class MainDef:
    """``def main(params) = body`` — the start-up expression."""

    params: Tuple[str, ...]
    body: Expr


@dataclass(frozen=True)
class Program:
    """A parsed architecture description.

    ``instances`` maps instance name to instance-type name.  ``defs``
    holds junction definitions keyed by qualified name; ``functions``
    holds templates keyed by name.
    """

    instance_types: Tuple[str, ...]
    instances: Tuple[Tuple[str, str], ...]
    main: Optional[MainDef]
    defs: Tuple[JunctionDef, ...] = ()
    functions: Tuple[FunctionDef, ...] = ()

    def instance_map(self) -> dict[str, str]:
        return dict(self.instances)

    def junctions_of_type(self, type_name: str) -> list[JunctionDef]:
        return [d for d in self.defs if d.type_name == type_name]

    def function_map(self) -> dict[str, FunctionDef]:
        return {f.name: f for f in self.functions}


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

def seq(*items: Expr) -> Expr:
    """Sequential composition, flattening nested Seqs and eliding
    trivial cases."""
    flat: list[Expr] = []
    for it in items:
        if isinstance(it, Seq):
            flat.extend(it.items)
        else:
            flat.append(it)
    if not flat:
        return Skip()
    if len(flat) == 1:
        return flat[0]
    return Seq(tuple(flat))


def par(*items: Expr) -> Expr:
    flat: list[Expr] = []
    for it in items:
        if isinstance(it, Par):
            flat.extend(it.items)
        else:
            flat.append(it)
    if not flat:
        return Skip()
    if len(flat) == 1:
        return flat[0]
    return Par(tuple(flat))


def children(e: Expr):
    """Yield the direct sub-expressions of ``e`` (for generic walks)."""
    if isinstance(e, (FateBlock, Transaction)):
        yield e.body
    elif isinstance(e, (Seq, Par, RepPar)):
        yield from e.items
    elif isinstance(e, Otherwise):
        yield e.body
        yield e.handler
    elif isinstance(e, Case):
        for arm in e.arms:
            # pre-expansion arms may be ForArm templates wrapping the arm
            yield arm.arm.body if isinstance(arm, ForArm) else arm.body
        yield e.otherwise
    elif isinstance(e, If):
        yield e.then
        if e.orelse is not None:
            yield e.orelse
    elif isinstance(e, For):
        yield e.body


def walk(e: Expr):
    """Depth-first pre-order traversal of an expression tree."""
    yield e
    for c in children(e):
        yield from walk(c)
