"""Well-formedness checks for C-Saw programs.

The paper states several validity constraints (secs. 4 and 6):

* ``case`` expressions cannot be empty or contain only an ``otherwise``
  branch, and ``next`` cannot be used immediately before ``otherwise``
  (i.e. on the final non-otherwise arm).
* Host blocks (``⌊.⌉``) are not allowed inside transactions ``⟨|.|⟩``
  since rollback is undefined for them.
* Junctions cannot ``write`` data to themselves, and ``assert [j] P``
  is rejected when ``j`` is the containing junction (communication to
  self, sec. 6).
* Neither indices nor sets may be serialized or transmitted between
  junctions (``write`` of a set/subset/idx name is an error).
* Definitions must be given the right number of parameters (checked at
  expansion for functions; here for ``start``).
* Instances must name declared instance types; junction definitions
  must belong to declared types.

Two entry points:

* :func:`validate_program` — static checks on a parsed program.
* :func:`validate_closed_junction` — checks on a specialized junction
  body (names resolved, templates unrolled) before interpretation.
"""

from __future__ import annotations

from . import ast as A
from .errors import ValidationError
from .formula import At, Formula, Live, Prop


def _duplicates(names) -> list[str]:
    seen: set[str] = set()
    out: list[str] = []
    for n in names:
        if n in seen and n not in out:
            out.append(n)
        seen.add(n)
    return out


def validate_program(program: A.Program) -> None:
    """Static validation of a parsed (unexpanded) program."""
    types = set(program.instance_types)
    if len(program.instance_types) != len(types):
        dupes = _duplicates(program.instance_types)
        raise ValidationError(f"duplicate instance type name(s): {', '.join(dupes)}")

    inst_names = [n for n, _ in program.instances]
    if len(inst_names) != len(set(inst_names)):
        dupes = _duplicates(inst_names)
        raise ValidationError(
            f"duplicate instance name(s): {', '.join(dupes)} — each name in "
            f"`instances {{...}}` must be unique"
        )
    for name, tname in program.instances:
        if tname not in types:
            raise ValidationError(f"instance {name!r} has undeclared type {tname!r}")

    seen_defs = set()
    for d in program.defs:
        if d.type_name not in types:
            raise ValidationError(f"junction {d.qualified!r} belongs to undeclared type {d.type_name!r}")
        if d.qualified in seen_defs:
            raise ValidationError(f"duplicate junction definition {d.qualified!r}")
        seen_defs.add(d.qualified)
        _validate_decls(d.decls, where=d.qualified)
        _validate_expr(d.body, where=d.qualified, in_transaction=False, own=d)

    fn_names = set()
    for fn in program.functions:
        if fn.name in fn_names:
            raise ValidationError(f"duplicate function {fn.name!r}")
        fn_names.add(fn.name)
        _validate_expr(fn.body, where=fn.name, in_transaction=False, own=None)

    if program.main is not None:
        _validate_expr(program.main.body, where="main", in_transaction=False, own=None)
        if not any(isinstance(e, A.Start) for e in A.walk(program.main.body)):
            raise ValidationError("main must start at least one instance")


def _validate_decls(decls: tuple[A.Decl, ...], where: str) -> None:
    declared: set[str] = set()
    guards = 0
    for d in decls:
        if isinstance(d, (A.InitProp, A.InitData, A.SetDecl, A.SubsetDecl, A.IdxDecl)):
            name = d.name
            if isinstance(d, A.InitProp) and d.index is not None:
                continue  # indexed init: many keys under one family name
            if name in declared:
                raise ValidationError(f"{where}: duplicate declaration of {name!r}")
            declared.add(name)
        elif isinstance(d, A.Guard):
            guards += 1
            if guards > 1:
                raise ValidationError(f"{where}: more than one guard declaration")
        elif isinstance(d, A.ForInit):
            pass  # family declarations may share names across vars
        else:
            raise ValidationError(f"{where}: unknown declaration {d!r}")


def _is_self_ref(target: object, own: A.JunctionDef | None) -> bool:
    if not isinstance(target, A.Ref):
        return False
    if target.parts == ("me", "junction"):
        return True
    if own is not None and target.parts == (own.type_name, own.junction):
        return True
    return False


def _validate_expr(e: A.Expr, where: str, in_transaction: bool, own: A.JunctionDef | None) -> None:
    if isinstance(e, A.HostBlock):
        if in_transaction:
            raise ValidationError(
                f"{where}: host block {e.name!r} inside a transaction (rollback undefined for host code)"
            )
        return
    if isinstance(e, A.Write):
        if _is_self_ref(e.target, own):
            raise ValidationError(f"{where}: write to self is redundant and not allowed")
        return
    if isinstance(e, (A.Assert, A.Retract)):
        if _is_self_ref(e.target, own):
            kind = "assert" if isinstance(e, A.Assert) else "retract"
            raise ValidationError(
                f"{where}: {kind} [{e.target}] names the containing junction; use the local form '[]'"
            )
        return
    if isinstance(e, A.Case):
        real_arms = [a for a in e.arms]
        if not real_arms:
            raise ValidationError(f"{where}: case must contain at least one non-otherwise arm")
        for i, arm in enumerate(real_arms):
            inner = arm.arm if isinstance(arm, A.ForArm) else arm
            if inner.terminator not in ("break", "next", "reconsider"):
                raise ValidationError(f"{where}: invalid case terminator {inner.terminator!r}")
            is_last = i == len(real_arms) - 1
            if is_last and inner.terminator == "next" and not isinstance(arm, A.ForArm):
                raise ValidationError(
                    f"{where}: 'next' cannot be used immediately before 'otherwise'"
                )
            _validate_expr(inner.body, where, in_transaction, own)
        _validate_expr(e.otherwise, where, in_transaction, own)
        return
    if isinstance(e, A.Transaction):
        _validate_expr(e.body, where, True, own)
        return
    if isinstance(e, A.Start):
        names = [j for j, _ in e.junction_args]
        anon = [j for j in names if j is None]
        if anon and len(names) > 1:
            raise ValidationError(
                f"{where}: start {e.instance} mixes anonymous and named argument groups"
            )
        if len([j for j in names if j is not None]) != len(set(j for j in names if j is not None)):
            raise ValidationError(f"{where}: start {e.instance} repeats a junction name")
        return
    for c in A.children(e):
        _validate_expr(c, where, in_transaction, own)


# ---------------------------------------------------------------------------
# Closed-junction validation (post-specialization)
# ---------------------------------------------------------------------------

def collect_declared(decls: tuple[A.Decl, ...]) -> dict[str, set[str]]:
    """Partition declared names by kind: props (flat keys and family
    names), data, sets, subsets, idx."""
    out = {"prop": set(), "data": set(), "set": set(), "subset": set(), "idx": set()}
    for d in decls:
        if isinstance(d, A.InitProp):
            out["prop"].add(d.key())
            out["prop"].add(d.name)
        elif isinstance(d, A.InitData):
            out["data"].add(d.name)
        elif isinstance(d, A.SetDecl):
            out["set"].add(d.name)
        elif isinstance(d, A.SubsetDecl):
            out["subset"].add(d.name)
        elif isinstance(d, A.IdxDecl):
            out["idx"].add(d.name)
    return out


def validate_closed_junction(
    qualified: str,
    decls: tuple[A.Decl, ...],
    body: A.Expr,
    params: tuple[str, ...] = (),
) -> None:
    """Validate a specialized junction: names used by statements must be
    declared, sets/indices must not be transmitted, and host writes must
    target declared writable state."""
    declared = collect_declared(decls)
    data = declared["data"]
    props = declared["prop"]
    unserializable = declared["set"] | declared["subset"] | declared["idx"]
    writable_by_host = data | props | declared["subset"] | declared["idx"]
    params_set = set(params)

    for e in A.walk(body):
        if isinstance(e, A.Write):
            if e.name in unserializable:
                raise ValidationError(
                    f"{qualified}: sets and indices must not be transmitted (write({e.name}, ...))"
                )
            if e.name not in data:
                raise ValidationError(f"{qualified}: write of undeclared data {e.name!r}")
        elif isinstance(e, A.Save):
            if e.name not in data:
                raise ValidationError(f"{qualified}: save into undeclared data {e.name!r}")
        elif isinstance(e, A.Restore):
            if e.name in params_set:
                raise ValidationError(
                    f"{qualified}: parameters are read-only and cannot be restored"
                )
            if e.name not in data:
                raise ValidationError(f"{qualified}: restore of undeclared data {e.name!r}")
        elif isinstance(e, A.Wait):
            for k in e.keys:
                if k not in data:
                    raise ValidationError(f"{qualified}: wait admits undeclared data {k!r}")
            _check_local_props(qualified, e.formula, props)
        elif isinstance(e, (A.Assert, A.Retract)):
            if isinstance(e.target, A.SelfTarget) and e.prop not in props:
                raise ValidationError(
                    f"{qualified}: {'assert' if isinstance(e, A.Assert) else 'retract'} of undeclared proposition {e.prop!r}"
                )
        elif isinstance(e, A.HostBlock):
            for w in e.writes:
                if w not in writable_by_host:
                    raise ValidationError(
                        f"{qualified}: host block {e.name!r} declares write to unknown state {w!r}"
                    )
        elif isinstance(e, A.Keep):
            for k in e.keys:
                if k not in data and k not in props:
                    raise ValidationError(f"{qualified}: keep of undeclared key {k!r}")


def _check_local_props(qualified: str, f: Formula, props: set[str]) -> None:
    for p in _local_props(f):
        if p.key() not in props and p.name not in props:
            raise ValidationError(
                f"{qualified}: wait formula references undeclared proposition {p.key()!r}"
            )


def _local_props(f: Formula):
    """Prop nodes of ``f`` outside any ``@`` scope."""
    from .formula import And, Implies, Not, Or

    if isinstance(f, Prop):
        yield f
    elif isinstance(f, (At, Live)):
        return
    elif isinstance(f, Not):
        yield from _local_props(f.operand)
    elif isinstance(f, (And, Or, Implies)):
        yield from _local_props(f.left)
        yield from _local_props(f.right)
