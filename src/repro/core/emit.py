"""Emitting DSL concrete syntax from the AST (a formatter).

``emit_program`` renders a :class:`~repro.core.ast.Program` back into
parseable text; ``parse(emit(p))`` re-produces an equivalent AST
(property-tested).  Useful for normalizing architecture files, for
showing the result of compile-time expansion, and as documentation of
the concrete syntax.
"""

from __future__ import annotations

from . import ast as A
from .formula import And, At, FalseF, Formula, Implies, Live, Not, Or, Prop, TRUE


def emit_formula(f: Formula) -> str:
    return _fml(f, 0)


#: precedence levels: -> (1) < || (2) < && (3) < atom (4)
def _fml(f: Formula, prec: int) -> str:
    if f == TRUE:
        return "true"
    if isinstance(f, FalseF):
        return "false"
    if isinstance(f, Prop):
        return f.key()
    if isinstance(f, Not):
        return "!" + _fml(f.operand, 4)
    if isinstance(f, And):
        # parser folds && left-associatively: parenthesize a right-nested And
        s = f"{_fml(f.left, 3)} && {_fml(f.right, 4)}"
        return f"({s})" if prec > 3 else s
    if isinstance(f, Or):
        s = f"{_fml(f.left, 2)} || {_fml(f.right, 3)}"
        return f"({s})" if prec > 2 else s
    if isinstance(f, Implies):
        s = f"{_fml(f.left, 2)} -> {_fml(f.right, 1)}"
        return f"({s})" if prec > 1 else s
    if isinstance(f, At):
        return f"{_arg(f.junction)}@{_fml(f.body, 4)}"
    if isinstance(f, Live):
        return f"live({_arg(f.instance)})"
    if isinstance(f, A.ForFormula):
        s = f"for {f.var} in {_arg(f.iterable)} {f.op} {_fml(f.body, 4)}"
        return f"({s})" if prec > 1 else s
    raise TypeError(f"cannot emit formula {f!r}")


def _arg(a: object) -> str:
    if isinstance(a, A.Ref):
        return str(a)
    if isinstance(a, A.Num):
        return str(a)
    if isinstance(a, A.SetLit):
        return "{" + ", ".join(_arg(i) for i in a.items) + "}"
    if isinstance(a, A.BinArith):
        return f"({_arg(a.left)} {a.op} {_arg(a.right)})"
    if isinstance(a, A.SelfTarget):
        return ""
    return str(a)


def _target(t: object) -> str:
    if isinstance(t, A.SelfTarget):
        return ""
    return _arg(t)


def _index(i: object) -> str:
    return "" if i is None else f"[{_arg(i)}]"


def emit_expr(e: A.Expr, indent: int = 0) -> str:
    pad = "  " * indent

    if isinstance(e, A.Skip):
        return "skip"
    if isinstance(e, A.Return):
        return "return"
    if isinstance(e, A.Retry):
        return "retry"
    if isinstance(e, A.HostBlock):
        w = " {" + ", ".join(e.writes) + "}" if e.writes else ""
        return f"host {e.name}{w}"
    if isinstance(e, A.Write):
        return f"write({e.name}, {_target(e.target)})"
    if isinstance(e, A.Save):
        return f"save({e.name})"
    if isinstance(e, A.Restore):
        return f"restore({e.name})"
    if isinstance(e, A.Wait):
        return f"wait[{', '.join(e.keys)}] {emit_formula(e.formula)}"
    if isinstance(e, A.Assert):
        return f"assert[{_target(e.target)}] {e.prop}{_index(e.index)}"
    if isinstance(e, A.Retract):
        return f"retract[{_target(e.target)}] {e.prop}{_index(e.index)}"
    if isinstance(e, A.Keep):
        return f"keep({', '.join(e.keys)})"
    if isinstance(e, A.Verify):
        return f"verify {emit_formula(e.formula)}"
    if isinstance(e, A.FateBlock):
        return f"{{ {emit_expr(e.body, indent)} }}"
    if isinstance(e, A.Transaction):
        return f"<| {emit_expr(e.body, indent)} |>"
    if isinstance(e, A.Seq):
        return "; ".join(_wrap_for_seq(i, indent) for i in e.items)
    if isinstance(e, A.Par):
        return " + ".join(_atom(i, indent) for i in e.items)
    if isinstance(e, A.RepPar):
        return " || ".join(_atom(i, indent) for i in e.items)
    if isinstance(e, A.Otherwise):
        t = f"[{_arg(e.timeout)}]" if e.timeout is not None else ""
        return f"({_atom(e.body, indent)} otherwise{t} {_atom(e.handler, indent)})"
    if isinstance(e, A.Start):
        parts = [f"start {e.instance}"]
        for jname, args in e.junction_args:
            argstr = "(" + ", ".join(_arg(a) for a in args) + ")"
            parts.append(argstr if jname is None else f"{jname}{argstr}")
        return " ".join(parts)
    if isinstance(e, A.Stop):
        return f"stop {e.instance}"
    if isinstance(e, A.Call):
        return f"{e.func}({', '.join(_arg(a) for a in e.args)})"
    if isinstance(e, A.If):
        s = f"if {emit_formula(e.cond)} then {_atom(e.then, indent)}"
        if e.orelse is not None:
            s += f" else {_atom(e.orelse, indent)}"
        return f"({s})"
    if isinstance(e, A.For):
        t = f"[{_arg(e.op_timeout)}]" if e.op_timeout is not None else ""
        op = "otherwise" + t if e.op == "otherwise" else e.op
        return f"(for {e.var} in {_arg(e.iterable)} {op} {_atom(e.body, indent)})"
    if isinstance(e, A.Case):
        inner_pad = "  " * (indent + 1)
        lines = ["case {"]
        for arm in e.arms:
            if isinstance(arm, A.ForArm):
                head = f"for {arm.var} in {_arg(arm.iterable)} ({emit_formula(arm.arm.formula)})"
                body, term = arm.arm.body, arm.arm.terminator
            else:
                head = emit_formula(arm.formula)
                body, term = arm.body, arm.terminator
            lines.append(f"{inner_pad}{head} =>")
            lines.append(f"{inner_pad}  {emit_expr(body, indent + 2)};")
            lines.append(f"{inner_pad}  {term}")
        lines.append(f"{inner_pad}otherwise => {emit_expr(e.otherwise, indent + 1)}")
        lines.append(pad + "}")
        return ("\n" + pad).join([lines[0]] + lines[1:-1]) + "\n" + lines[-1]
    raise TypeError(f"cannot emit {type(e).__name__}")


def _wrap_for_seq(e: A.Expr, indent: int) -> str:
    # a Seq item that is itself a Seq would merge; keep flat items
    return emit_expr(e, indent)


def _atom(e: A.Expr, indent: int) -> str:
    s = emit_expr(e, indent)
    if isinstance(e, (A.Seq, A.Par, A.RepPar)):
        return f"({s})"
    return s


def emit_decl(d: A.Decl) -> str:
    if isinstance(d, A.InitProp):
        neg = "" if d.value else "!"
        return f"| init prop {neg}{d.name}{_index(d.index)}"
    if isinstance(d, A.InitData):
        return f"| init data {d.name}"
    if isinstance(d, A.Guard):
        return f"| guard {emit_formula(d.formula)}"
    if isinstance(d, A.SetDecl):
        lit = f" = {_arg(d.literal)}" if d.literal is not None else ""
        return f"| set {d.name}{lit}"
    if isinstance(d, A.SubsetDecl):
        return f"| subset {d.name} of {_arg(d.of_set)}"
    if isinstance(d, A.IdxDecl):
        return f"| idx {d.name} of {_arg(d.of_set)}"
    if isinstance(d, A.ForInit):
        inner = emit_decl(d.decl)[2:]  # strip "| "
        return f"| for {d.var} in {_arg(d.iterable)} {inner}"
    raise TypeError(f"cannot emit declaration {d!r}")


def emit_program(p: A.Program) -> str:
    out: list[str] = []
    if p.instance_types:
        out.append("instance_types { " + ", ".join(p.instance_types) + " }")
    if p.instances:
        out.append(
            "instances { " + ", ".join(f"{n}: {t}" for n, t in p.instances) + " }"
        )
    if p.main is not None:
        out.append("")
        out.append(f"def main({', '.join(p.main.params)}) =")
        out.append("  " + emit_expr(p.main.body, 1))
    for fn in p.functions:
        out.append("")
        out.append(f"def {fn.name}({', '.join(fn.params)}) =")
        for d in fn.decls:
            out.append("  " + emit_decl(d))
        out.append("  " + emit_expr(fn.body, 1))
    for d in p.defs:
        out.append("")
        out.append(f"def {d.type_name}::{d.junction}({', '.join(d.params)}) =")
        for decl in d.decls:
            out.append("  " + emit_decl(decl))
        out.append("  " + emit_expr(d.body, 1))
    return "\n".join(out) + "\n"
