"""Topology extraction (sec. 8.7 of the paper).

``Topo`` produces a directed graph whose nodes are junctions (as
``"instance::junction"`` strings) and whose edges indicate
communication from one junction to another, derived by analyzing the
``assert``/``retract``/``write`` targets in each junction's (inlined
and specialized) DSL expression.

Targets that are parameters or index variables are resolved
conservatively: an ``idx x of S`` target contributes an edge to every
member of ``S``.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from . import ast as A
from .compiler import CompiledProgram
from .expand import specialize, to_ast_value


def _junction_nodes(program: CompiledProgram) -> dict[str, list[str]]:
    """Map instance name -> its junction names."""
    out: dict[str, list[str]] = {}
    for inst, tname in program.instance_map().items():
        out[inst] = [j.name for j in program.junctions_of_type(tname)]
    return out


def _resolve_targets(
    target: object,
    inst: str,
    junctions_by_instance: dict[str, list[str]],
    idx_sets: dict[str, tuple],
) -> Iterable[str]:
    """Resolve a target reference to zero or more ``inst::junction``
    node names."""
    if isinstance(target, A.SelfTarget):
        return []
    if not isinstance(target, A.Ref):
        return []
    parts = target.parts
    if parts[0] == "me":
        if parts == ("me", "junction"):
            return []
        if len(parts) == 3 and parts[1] == "instance":
            return [f"{inst}::{parts[2]}"]
        return []
    if parts[0] in idx_sets:
        out: list[str] = []
        for elem in idx_sets[parts[0]]:
            out.extend(
                _resolve_targets(elem, inst, junctions_by_instance, {})
                if isinstance(elem, (A.Ref, A.SelfTarget))
                else []
            )
        return out
    head = parts[0]
    if head in junctions_by_instance:
        if len(parts) == 1:
            juncs = junctions_by_instance[head]
            if len(juncs) == 1:
                return [f"{head}::{juncs[0]}"]
            return [f"{head}::{j}" for j in juncs]
        return [f"{head}::{parts[1]}"]
    return []


def topology(program: CompiledProgram, env: dict[str, object] | None = None) -> nx.DiGraph:
    """Compute the communication topology of ``program``.

    ``env`` supplies values for junction parameters (by name) so that
    parameterized targets resolve; entries are lifted with
    :func:`~repro.core.expand.to_ast_value`.  Unresolvable targets are
    skipped (they contribute no edges).
    """
    g: "nx.DiGraph" = nx.DiGraph()
    inst_map = program.instance_map()
    junctions_by_instance = _junction_nodes(program)
    base_env = program.config_env()
    if env:
        base_env.update({k: to_ast_value(v) for k, v in env.items()})

    for inst, tname in inst_map.items():
        for cj in program.junctions_of_type(tname):
            node = f"{inst}::{cj.name}"
            g.add_node(node, instance=inst, type=tname, junction=cj.name)

    for inst, tname in inst_map.items():
        for cj in program.junctions_of_type(tname):
            node = f"{inst}::{cj.name}"
            # Best-effort specialization: parameters without supplied
            # values stay symbolic and their targets are skipped.
            try:
                body, decls = specialize(cj.body, cj.decls, base_env)
            except Exception:
                body, decls = cj.body, cj.decls
            idx_sets: dict[str, tuple] = {}
            for d in decls:
                if isinstance(d, (A.IdxDecl, A.SubsetDecl)):
                    of = d.of_set
                    if isinstance(of, A.Ref) and of.name in base_env:
                        of = base_env[of.name]
                    if isinstance(of, A.SetLit):
                        idx_sets[d.name] = of.items
            for e in A.walk(body):
                targets: Iterable[str] = []
                if isinstance(e, (A.Assert, A.Retract)):
                    targets = _resolve_targets(e.target, inst, junctions_by_instance, idx_sets)
                elif isinstance(e, A.Write):
                    targets = _resolve_targets(e.target, inst, junctions_by_instance, idx_sets)
                for t in targets:
                    if t != node and g.has_node(t):
                        g.add_edge(node, t)
    return g


def topology_edges(program: CompiledProgram, env: dict[str, object] | None = None) -> set[tuple[str, str]]:
    """Convenience: the edge set of :func:`topology`."""
    return set(topology(program, env).edges())
