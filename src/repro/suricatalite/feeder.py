"""A rate-based packet feeder driving a pipeline on the simulator.

Models Suricata's capture loop: packets arrive at the trace rate into a
bounded queue; the pipeline drains them as fast as its per-packet CPU
cost allows.  ``stall`` freezes processing (checkpoint serialization),
making the queue grow and the processed-rate dip — the mechanism behind
Figs. 24a and 24c.

Packets are processed in ticks (batches) so the discrete-event
simulation stays tractable at tens of thousands of packets per second.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from ..runtime.sim import Simulator
from .packet import Packet
from .pipeline import Pipeline


class PacketFeeder:
    def __init__(
        self,
        sim: Simulator,
        pipeline: Pipeline,
        *,
        tick: float = 0.01,
        queue_limit: int = 200_000,
    ):
        self.sim = sim
        self.pipeline = pipeline
        self.tick = tick
        self.queue_limit = queue_limit
        self.queue: deque[Packet] = deque()
        self.dropped = 0
        self._stalled_until = 0.0
        self._cpu_debt = 0.0
        #: (time, packets_processed_in_tick) samples
        self.samples: list[tuple[float, int]] = []
        self._running = False

    # -- input -------------------------------------------------------------

    def feed_trace(self, packets: Iterable[Packet], start: float = 0.0) -> int:
        """Enqueue arrivals at their timestamps (batched per tick).
        Returns the number of packets scheduled."""
        buckets: dict[int, list[Packet]] = {}
        n = 0
        for pkt in packets:
            buckets.setdefault(int(pkt.ts / self.tick), []).append(pkt)
            n += 1
        for idx, batch in sorted(buckets.items()):
            self.sim.call_at(start + idx * self.tick, lambda b=batch: self._arrive(b))
        return n

    def _arrive(self, batch: list[Packet]) -> None:
        for pkt in batch:
            if len(self.queue) >= self.queue_limit:
                self.dropped += 1
            else:
                self.queue.append(pkt)

    # -- control -------------------------------------------------------------

    def stall(self, duration: float) -> None:
        """Freeze processing (e.g. during checkpoint serialization)."""
        self._stalled_until = max(self._stalled_until, self.sim.now + duration)

    def start(self, until: float) -> None:
        self._running = True

        def step():
            if not self._running or self.sim.now > until:
                return
            processed = self._drain_tick()
            self.samples.append((self.sim.now, processed))
            self.sim.call_after(self.tick, step)

        self.sim.call_after(self.tick, step)

    def stop(self) -> None:
        self._running = False

    # -- processing ----------------------------------------------------------

    def _drain_tick(self) -> int:
        if self.sim.now < self._stalled_until:
            return 0
        budget = self.tick + self._cpu_debt
        processed = 0
        while self.queue and budget > 0:
            pkt = self.queue.popleft()
            budget -= self.pipeline.process(pkt)
            processed += 1
        self._cpu_debt = min(budget, self.tick) if budget > 0 else budget
        if self._cpu_debt < 0:
            # overshoot: borrow from the next tick
            pass
        return processed

    # -- reporting ------------------------------------------------------------

    def rate_series(self, dt: float = 1.0) -> list[tuple[float, float]]:
        """(time, packets/s) aggregated over ``dt`` windows."""
        if not self.samples:
            return []
        buckets: dict[int, int] = {}
        for t, n in self.samples:
            buckets[int(t / dt)] = buckets.get(int(t / dt), 0) + n
        top = max(buckets)
        return [(i * dt, buckets.get(i, 0) / dt) for i in range(top + 1)]

    def total_processed(self) -> int:
        return sum(n for _, n in self.samples)
