"""The Click-style packet pipeline.

Suricata "implements a graph-based abstraction for packet handling,
reminiscent of Click" (sec. 2): packets traverse a graph of processing
nodes.  Here the graph is explicit — :class:`Node` subclasses wired by
:class:`Pipeline` — so architectures can splice a C-Saw junction in as
a new node, exactly how the paper integrated C-Saw with Suricata ("most
of the effort involved creating a new node in Suricata's pipeline that
serves as a junction", sec. 10.2).

Each node reports a per-packet simulated CPU cost; the pipeline sums
costs so host blocks can charge the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .flows import FlowTable
from .packet import Packet
from .rules import Alert, RuleSet


class Node:
    """A pipeline processing node."""

    name = "node"
    cost_per_packet = 0.2e-6

    def process(self, pkt: Packet, ctx: "PipelineContext") -> Packet | None:
        """Return the (possibly annotated) packet, or None to drop."""
        raise NotImplementedError


@dataclass
class PipelineContext:
    flow_table: FlowTable
    rules: RuleSet
    alerts: list[Alert] = field(default_factory=list)
    dropped: int = 0
    decoded: int = 0


class CaptureNode(Node):
    name = "capture"
    cost_per_packet = 0.1e-6

    def process(self, pkt, ctx):
        return pkt


class DecodeNode(Node):
    name = "decode"
    cost_per_packet = 0.3e-6

    def process(self, pkt, ctx):
        if pkt.size <= 0:
            ctx.dropped += 1
            return None
        ctx.decoded += 1
        return pkt


class FlowNode(Node):
    name = "flow"
    cost_per_packet = 0.4e-6

    def process(self, pkt, ctx):
        ctx.flow_table.update(pkt)
        return pkt


class DetectNode(Node):
    name = "detect"
    cost_per_packet = 1.2e-6

    def process(self, pkt, ctx):
        flow = ctx.flow_table.flows[str(pkt.flow)]
        fired = ctx.rules.inspect(pkt, flow)
        ctx.alerts.extend(fired)
        return pkt


class OutputNode(Node):
    name = "output"
    cost_per_packet = 0.2e-6

    def process(self, pkt, ctx):
        return pkt


class HookNode(Node):
    """A splice point: calls an arbitrary callback — how C-Saw junctions
    enter the pipeline."""

    def __init__(self, name: str, fn: Callable[[Packet, PipelineContext], Packet | None], cost: float = 0.2e-6):
        self.name = name
        self._fn = fn
        self.cost_per_packet = cost

    def process(self, pkt, ctx):
        return self._fn(pkt, ctx)


class Pipeline:
    """A linear chain through the node graph (Suricata's per-thread
    pipeline).  ``insert_after`` splices new nodes (junction hooks)."""

    def __init__(self, rules: RuleSet | None = None):
        self.ctx = PipelineContext(flow_table=FlowTable(), rules=rules or RuleSet())
        self.nodes: list[Node] = [
            CaptureNode(),
            DecodeNode(),
            FlowNode(),
            DetectNode(),
            OutputNode(),
        ]
        self.packets_processed = 0

    def insert_after(self, node_name: str, node: Node) -> None:
        for i, n in enumerate(self.nodes):
            if n.name == node_name:
                self.nodes.insert(i + 1, node)
                return
        raise KeyError(f"no pipeline node {node_name!r}")

    def node_names(self) -> list[str]:
        return [n.name for n in self.nodes]

    def process(self, pkt: Packet) -> float:
        """Run ``pkt`` through the chain; returns simulated CPU cost."""
        cost = 0.0
        cur: Packet | None = pkt
        for node in self.nodes:
            if cur is None:
                break
            cost += node.cost_per_packet
            cur = node.process(cur, self.ctx)
        self.packets_processed += 1
        return cost

    # -- checkpointing ---------------------------------------------------------

    CHECKPOINT_BASE = 0.100
    CHECKPOINT_PER_FLOW = 10e-6
    RESTORE_BASE = 0.150
    RESTORE_PER_FLOW = 12e-6

    def checkpoint(self) -> tuple[dict, float]:
        snap = {
            "flows": self.ctx.flow_table.snapshot(),
            "packets_processed": self.packets_processed,
            "alert_count": len(self.ctx.alerts),
        }
        cost = self.CHECKPOINT_BASE + self.ctx.flow_table.size() * self.CHECKPOINT_PER_FLOW
        return snap, cost

    def restore(self, snap: dict) -> float:
        self.ctx.flow_table.restore(snap["flows"])
        self.packets_processed = snap["packets_processed"]
        return self.RESTORE_BASE + self.ctx.flow_table.size() * self.RESTORE_PER_FLOW
