"""suricatalite — a mini network security monitor standing in for
Suricata v6.0.3 (Click-style pipeline, flow table, signature rules)."""

from .feeder import PacketFeeder
from .flows import FlowRecord, FlowTable
from .packet import FiveTuple, Packet
from .pipeline import (
    CaptureNode,
    DecodeNode,
    DetectNode,
    FlowNode,
    HookNode,
    Node,
    OutputNode,
    Pipeline,
    PipelineContext,
)
from .rules import Alert, DEFAULT_RULES, Rule, RuleSet
from .traces import TraceConfig, TraceGenerator

__all__ = [
    "Alert",
    "CaptureNode",
    "DecodeNode",
    "DEFAULT_RULES",
    "DetectNode",
    "FiveTuple",
    "FlowNode",
    "FlowRecord",
    "FlowTable",
    "HookNode",
    "Node",
    "OutputNode",
    "Packet",
    "PacketFeeder",
    "Pipeline",
    "PipelineContext",
    "Rule",
    "RuleSet",
    "TraceConfig",
    "TraceGenerator",
]
