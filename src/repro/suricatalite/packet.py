"""Packets and 5-tuples.

A packet carries the classic 5-tuple (source/destination IP and port,
protocol) the paper uses for flow-level sharding ("the 5-tuple of each
packet ... is hashed to determine which of four back-end Suricata
instances should process it", sec. 10.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..redislite.workload import djb2


@dataclass(frozen=True)
class FiveTuple:
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    proto: str  # 'tcp' | 'udp' | 'icmp'

    def hash(self) -> int:
        """Deterministic hash used for packet steering (djb2 over the
        canonical textual form, mirroring the key-based sharding)."""
        return djb2(f"{self.src_ip}:{self.src_port}>{self.dst_ip}:{self.dst_port}/{self.proto}")

    def __str__(self) -> str:
        return f"{self.src_ip}:{self.src_port}->{self.dst_ip}:{self.dst_port}/{self.proto}"


@dataclass(frozen=True)
class Packet:
    ts: float
    flow: FiveTuple
    size: int
    payload: bytes = b""
    app: str = "unknown"  # generator annotation (http/dns/... )

    def five_tuple(self) -> FiveTuple:
        return self.flow
