"""Flow tracking.

Suricata keeps a flow table keyed by 5-tuple; detection state is
per-flow.  The table is the principal state captured by the
checkpointing architecture (availability + diagnostics, sec. 2), so it
supports full snapshot/restore.
"""

from __future__ import annotations

from dataclasses import dataclass

from .packet import Packet


@dataclass
class FlowRecord:
    tuple_key: str
    packets: int = 0
    bytes: int = 0
    first_seen: float = 0.0
    last_seen: float = 0.0
    alerts: int = 0
    app: str = "unknown"


class FlowTable:
    def __init__(self, idle_timeout: float = 60.0):
        self.flows: dict[str, FlowRecord] = {}
        self.idle_timeout = idle_timeout
        self.evicted = 0

    def update(self, pkt: Packet) -> FlowRecord:
        key = str(pkt.flow)
        rec = self.flows.get(key)
        if rec is None:
            rec = FlowRecord(tuple_key=key, first_seen=pkt.ts, app=pkt.app)
            self.flows[key] = rec
        rec.packets += 1
        rec.bytes += pkt.size
        rec.last_seen = pkt.ts
        return rec

    def evict_idle(self, now: float) -> int:
        stale = [k for k, r in self.flows.items() if now - r.last_seen > self.idle_timeout]
        for k in stale:
            del self.flows[k]
        self.evicted += len(stale)
        return len(stale)

    def size(self) -> int:
        return len(self.flows)

    # -- checkpointing ----------------------------------------------------------

    def snapshot(self) -> dict:
        return {
            k: {
                "packets": r.packets,
                "bytes": r.bytes,
                "first_seen": r.first_seen,
                "last_seen": r.last_seen,
                "alerts": r.alerts,
                "app": r.app,
            }
            for k, r in self.flows.items()
        }

    def restore(self, snap: dict) -> None:
        self.flows = {
            k: FlowRecord(
                tuple_key=k,
                packets=v["packets"],
                bytes=v["bytes"],
                first_seen=v["first_seen"],
                last_seen=v["last_seen"],
                alerts=v["alerts"],
                app=v["app"],
            )
            for k, v in snap.items()
        }
