"""Synthetic traffic traces (the bigFlows.pcap stand-in).

bigFlows.pcap is "a public packet-capture benchmark that contains
several flows from different applications" (sec. 10.1).  We cannot ship
it, so :class:`TraceGenerator` synthesizes a seeded trace with the
relevant properties:

* many concurrent flows from a mix of applications (http, dns, smtp,
  video, ssh) with heavy-tailed flow sizes — a few elephant flows carry
  most packets, as in real captures;
* 5-tuples drawn from realistic address/port pools so 5-tuple hashing
  spreads flows unevenly across shards (the stepped cumulative curves
  of Fig. 24b);
* a sprinkle of rule-triggering payloads so the detection stage does
  real work.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from .packet import FiveTuple, Packet

_APP_PROFILES = {
    # app: (proto, dst_port, mean_pkt_size, flow_len_range, weight)
    "http": ("tcp", 80, 900, (10, 2000), 0.35),
    "https": ("tcp", 443, 1000, (10, 3000), 0.25),
    "dns": ("udp", 53, 120, (1, 8), 0.15),
    "smtp": ("tcp", 25, 600, (20, 200), 0.05),
    "video": ("udp", 8801, 1200, (500, 20000), 0.10),
    "ssh": ("tcp", 22, 250, (50, 1000), 0.10),
}

_SUSPICIOUS_PAYLOADS = [b"GET /gate.php HTTP/1.1", b"PASS hunter2", b"\x90\x90\x90\x90\x90"]


@dataclass
class TraceConfig:
    n_flows: int = 200
    duration: float = 120.0
    packets_per_second: float = 50_000.0
    suspicious_fraction: float = 0.002
    seed: int = 7


class TraceGenerator:
    """Generates a deterministic packet stream."""

    def __init__(self, config: TraceConfig | None = None, **overrides):
        cfg = config or TraceConfig()
        for k, v in overrides.items():
            if not hasattr(cfg, k):
                raise TypeError(f"unknown trace option {k!r}")
            setattr(cfg, k, v)
        self.config = cfg
        self.rng = random.Random(cfg.seed)
        self._flows = self._make_flows()

    def _make_flows(self) -> list[tuple[FiveTuple, str, int, int]]:
        """(tuple, app, mean_size, weight) per flow; weight ∝ flow length
        drawn from the app's heavy-tailed range."""
        out = []
        apps = list(_APP_PROFILES)
        weights = [_APP_PROFILES[a][4] for a in apps]
        for i in range(self.config.n_flows):
            app = self.rng.choices(apps, weights=weights)[0]
            proto, port, mean_size, (lo, hi), _w = _APP_PROFILES[app]
            # heavy tail: sample exponent-skewed flow length
            u = self.rng.random()
            length = int(lo + (hi - lo) * (u ** 3))
            ft = FiveTuple(
                src_ip=f"10.{self.rng.randrange(256)}.{self.rng.randrange(256)}.{self.rng.randrange(1, 255)}",
                dst_ip=f"192.168.{self.rng.randrange(16)}.{self.rng.randrange(1, 255)}",
                src_port=self.rng.randrange(1024, 65535),
                dst_port=port,
                proto=proto,
            )
            out.append((ft, app, mean_size, max(1, length)))
        return out

    def packets(self, n: int | None = None) -> Iterator[Packet]:
        """Yield ``n`` packets (default: duration × rate), timestamps
        spaced at the configured constant rate."""
        cfg = self.config
        total = n if n is not None else int(cfg.duration * cfg.packets_per_second)
        weights = [w for (_ft, _a, _s, w) in self._flows]
        dt = 1.0 / cfg.packets_per_second
        for i in range(total):
            ft, app, mean_size, _w = self.rng.choices(self._flows, weights=weights)[0]
            size = max(64, int(self.rng.gauss(mean_size, mean_size * 0.25)))
            payload = b""
            if self.rng.random() < cfg.suspicious_fraction:
                payload = self.rng.choice(_SUSPICIOUS_PAYLOADS)
            yield Packet(ts=i * dt, flow=ft, size=size, payload=payload, app=app)

    def flow_count(self) -> int:
        return len(self._flows)
