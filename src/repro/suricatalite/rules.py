"""Signature rules and matching.

A simplified Suricata rule: protocol + optional port constraint +
payload substring (``content:``) + per-flow threshold.  The default
ruleset exercises all features and produces a realistic trickle of
alerts on the synthetic trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from .flows import FlowRecord
from .packet import Packet


@dataclass(frozen=True)
class Rule:
    sid: int
    msg: str
    proto: str | None = None          # None = any
    dst_port: int | None = None
    content: bytes | None = None      # payload substring
    min_flow_packets: int = 0         # threshold: fire only after N pkts

    def matches(self, pkt: Packet, flow: FlowRecord) -> bool:
        if self.proto is not None and pkt.flow.proto != self.proto:
            return False
        if self.dst_port is not None and pkt.flow.dst_port != self.dst_port:
            return False
        if flow.packets < self.min_flow_packets:
            return False
        if self.content is not None and self.content not in pkt.payload:
            return False
        return True


@dataclass(frozen=True)
class Alert:
    ts: float
    sid: int
    msg: str
    flow_key: str


DEFAULT_RULES: tuple[Rule, ...] = (
    Rule(1000001, "ET SCAN suspicious SYN flood", proto="tcp", min_flow_packets=200),
    Rule(1000002, "ET MALWARE beacon URI", proto="tcp", dst_port=80, content=b"/gate.php"),
    Rule(1000003, "ET DNS oversized query", proto="udp", dst_port=53, min_flow_packets=50),
    Rule(1000004, "ET POLICY cleartext credentials", proto="tcp", content=b"PASS "),
    Rule(1000005, "ET EXPLOIT shellcode NOP sled", content=b"\x90\x90\x90\x90"),
)


class RuleSet:
    def __init__(self, rules: tuple[Rule, ...] = DEFAULT_RULES):
        self.rules = rules
        self.alerts: list[Alert] = []

    def inspect(self, pkt: Packet, flow: FlowRecord) -> list[Alert]:
        fired = []
        for r in self.rules:
            if r.matches(pkt, flow):
                a = Alert(pkt.ts, r.sid, r.msg, flow.tuple_key)
                fired.append(a)
                flow.alerts += 1
        self.alerts.extend(fired)
        return fired
