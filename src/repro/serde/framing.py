"""Wire framing and the runtime :class:`Serializer`.

``save`` produces a :class:`SavedData` — a schema-tagged opaque blob —
which is what lives in KV tables and crosses the network via ``write``.
Schemas registered against a :class:`~repro.serde.ctypes_model.TypeRegistry`
use the type-aware C encoding; unregistered data falls back to a small
generic codec covering the Python shapes substrates exchange (dict,
list, tuple, str, bytes, int, float, bool, None).
"""

from __future__ import annotations

import struct as _struct
from dataclasses import dataclass

from ..core.errors import SerdeError
from .ctypes_model import TypeRegistry
from .traverse import Decoder, Encoder

_LEN = _struct.Struct("<I")
_I64 = _struct.Struct("<q")
_F64 = _struct.Struct("<d")


@dataclass(frozen=True)
class SavedData:
    """A serialized value as stored in KV tables.

    ``schema`` is the registered type name (or ``None`` for the generic
    codec); ``blob`` the encoded bytes.
    """

    schema: str | None
    blob: bytes

    def __len__(self) -> int:
        return len(self.blob)


# ---------------------------------------------------------------------------
# Generic codec
# ---------------------------------------------------------------------------

def _enc_generic(value: object, out: bytearray) -> None:
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        out += b"i"
        out += _I64.pack(value)
    elif isinstance(value, float):
        out += b"f"
        out += _F64.pack(value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s"
        out += _LEN.pack(len(raw))
        out += raw
    elif isinstance(value, bytes):
        out += b"b"
        out += _LEN.pack(len(value))
        out += value
    elif isinstance(value, (list, tuple)):
        out += b"l" if isinstance(value, list) else b"t"
        out += _LEN.pack(len(value))
        for v in value:
            _enc_generic(v, out)
    elif isinstance(value, dict):
        out += b"d"
        out += _LEN.pack(len(value))
        for k, v in value.items():
            _enc_generic(k, out)
            _enc_generic(v, out)
    else:
        raise SerdeError(
            f"generic codec cannot serialize {type(value).__name__}; register a schema"
        )


def _dec_generic(data: bytes, off: int):
    if off >= len(data):
        raise SerdeError("truncated generic value")
    tag = data[off : off + 1]
    off += 1
    if tag == b"N":
        return None, off
    if tag == b"T":
        return True, off
    if tag == b"F":
        return False, off
    if tag == b"i":
        if off + _I64.size > len(data):
            raise SerdeError("truncated integer")
        return _I64.unpack_from(data, off)[0], off + _I64.size
    if tag == b"f":
        if off + _F64.size > len(data):
            raise SerdeError("truncated float")
        return _F64.unpack_from(data, off)[0], off + _F64.size
    if tag in (b"s", b"b"):
        if off + _LEN.size > len(data):
            raise SerdeError("truncated length prefix")
        (n,) = _LEN.unpack_from(data, off)
        off += _LEN.size
        raw = data[off : off + n]
        if len(raw) != n:
            raise SerdeError("truncated string/bytes")
        off += n
        if tag == b"b":
            return raw, off
        try:
            return raw.decode("utf-8"), off
        except UnicodeDecodeError as exc:
            raise SerdeError(f"invalid utf-8 in string: {exc}") from exc
    if tag in (b"l", b"t"):
        if off + _LEN.size > len(data):
            raise SerdeError("truncated length prefix")
        (n,) = _LEN.unpack_from(data, off)
        off += _LEN.size
        items = []
        for _ in range(n):
            v, off = _dec_generic(data, off)
            items.append(v)
        return (items if tag == b"l" else tuple(items)), off
    if tag == b"d":
        if off + _LEN.size > len(data):
            raise SerdeError("truncated length prefix")
        (n,) = _LEN.unpack_from(data, off)
        off += _LEN.size
        d = {}
        for _ in range(n):
            k, off = _dec_generic(data, off)
            v, off = _dec_generic(data, off)
            d[k] = v
        return d, off
    raise SerdeError(f"unknown generic tag {tag!r}")


def encode_generic(value: object) -> bytes:
    out = bytearray()
    _enc_generic(value, out)
    return bytes(out)


def decode_generic(data: bytes) -> object:
    value, off = _dec_generic(data, 0)
    if off != len(data):
        raise SerdeError("trailing bytes after generic decode")
    return value


# ---------------------------------------------------------------------------
# Serializer
# ---------------------------------------------------------------------------

class Serializer:
    """Schema-dispatching serializer used by the runtime's
    ``save``/``restore``/``write`` primitives."""

    def __init__(self, registry: TypeRegistry | None = None):
        self.registry = registry or TypeRegistry()
        self._encoder = Encoder(self.registry)
        self._decoder = Decoder(self.registry)

    def encode(self, schema: str | None, value: object) -> SavedData:
        if schema is None:
            return SavedData(None, encode_generic(value))
        if self.registry.get(schema) is None:
            raise SerdeError(f"unknown schema {schema!r}")
        return SavedData(schema, self._encoder.encode(schema, value))

    def decode(self, saved: SavedData) -> object:
        if not isinstance(saved, SavedData):
            raise SerdeError(f"expected SavedData, got {type(saved).__name__}")
        if saved.schema is None:
            return decode_generic(saved.blob)
        return self._decoder.decode(saved.schema, saved.blob)
