"""Type-aware traversal, encoding and decoding of C-typed values.

This is the runtime half of the C-strider-style framework: given a
schema from :mod:`repro.serde.ctypes_model` and a Python value shaped
like the C data (dicts for structs, lists for arrays, ``None`` for NULL
pointers, ``(tag, value)`` for tagged unions), it performs a
depth-bounded traversal that either visits fields (for user callbacks,
as C-strider's per-field serialization calls do) or writes/reads a
compact binary encoding.

The recursion-depth bound mirrors the paper's prototype: "recursive
datatypes [are supported] up to a maximum, though configurable,
recursion depth.  For instance, linked lists are only serialized up to
a maximum length" — pointer chains beyond ``max_depth`` encode as NULL.
"""

from __future__ import annotations

import struct as _struct
from typing import Callable, Iterator

from ..core.errors import SerdeError
from .ctypes_model import (
    Array,
    CString,
    CType,
    Pointer,
    Primitive,
    SizedBuffer,
    Struct,
    TaggedUnion,
    TypeRegistry,
)

_LEN = _struct.Struct("<I")


class Encoder:
    """Encodes a value of a given C type into bytes."""

    def __init__(self, registry: TypeRegistry):
        self.registry = registry

    def encode(self, t: object, value: object) -> bytes:
        out = bytearray()
        self._enc(self.registry.resolve(t), value, out, depth=0)
        return bytes(out)

    def _enc(self, t: CType, value: object, out: bytearray, depth: int) -> None:
        if isinstance(t, Primitive):
            self._enc_primitive(t, value, out)
            return
        if isinstance(t, Pointer):
            if value is None or depth >= self.registry.max_depth:
                out.append(0)
                return
            out.append(1)
            self._enc(self.registry.resolve(t.target), value, out, depth + 1)
            return
        if isinstance(t, Array):
            seq = list(value) if value is not None else []
            if len(seq) != t.length:
                raise SerdeError(f"array expects {t.length} elements, got {len(seq)}")
            elem = self.registry.resolve(t.element)
            for v in seq:
                self._enc(elem, v, out, depth)
            return
        if isinstance(t, SizedBuffer):
            data = bytes(value or b"")
            if len(data) > t.max_length:
                raise SerdeError(
                    f"buffer of {len(data)} bytes exceeds declared maximum {t.max_length}"
                )
            out += _LEN.pack(len(data))
            out += data
            return
        if isinstance(t, CString):
            data = (value or "").encode("utf-8")
            if len(data) > t.max_length:
                raise SerdeError(f"string exceeds declared maximum {t.max_length}")
            out += _LEN.pack(len(data))
            out += data
            return
        if isinstance(t, Struct):
            if not isinstance(value, dict):
                raise SerdeError(f"struct {t.name} expects a dict, got {type(value).__name__}")
            for f in t.fields:
                if f.name not in value:
                    raise SerdeError(f"struct {t.name} missing field {f.name!r}")
                self._enc(self.registry.resolve(f.type), value[f.name], out, depth)
            return
        if isinstance(t, TaggedUnion):
            if not (isinstance(value, tuple) and len(value) == 2):
                raise SerdeError(f"union {t.name} expects (tag, value)")
            tag, payload = value
            variants = t.variant_map()
            if tag not in variants:
                raise SerdeError(f"union {t.name}: unknown tag {tag!r}")
            out.append(tag & 0xFF)
            self._enc(self.registry.resolve(variants[tag]), payload, out, depth)
            return
        raise SerdeError(f"cannot encode type {t!r}")

    @staticmethod
    def _enc_primitive(t: Primitive, value: object, out: bytearray) -> None:
        if t.kind == "char":
            if isinstance(value, str):
                value = value.encode("latin-1")
            if not (isinstance(value, bytes) and len(value) == 1):
                raise SerdeError("char expects a single byte")
            out += value
            return
        try:
            out += _struct.pack("<" + t.fmt, value)
        except _struct.error as exc:
            raise SerdeError(f"cannot pack {value!r} as {t.kind}: {exc}") from exc


class Decoder:
    """Decodes bytes back into the Python representation."""

    def __init__(self, registry: TypeRegistry):
        self.registry = registry

    def decode(self, t: object, data: bytes) -> object:
        value, offset = self._dec(self.registry.resolve(t), data, 0)
        if offset != len(data):
            raise SerdeError(f"{len(data) - offset} trailing byte(s) after decode")
        return value

    def _dec(self, t: CType, data: bytes, off: int):
        if isinstance(t, Primitive):
            if t.kind == "char":
                return data[off : off + 1], off + 1
            s = _struct.Struct("<" + t.fmt)
            if off + s.size > len(data):
                raise SerdeError("truncated input")
            return s.unpack_from(data, off)[0], off + s.size
        if isinstance(t, Pointer):
            if off >= len(data):
                raise SerdeError("truncated pointer flag")
            flag = data[off]
            off += 1
            if flag == 0:
                return None, off
            return self._dec(self.registry.resolve(t.target), data, off)
        if isinstance(t, Array):
            elem = self.registry.resolve(t.element)
            out = []
            for _ in range(t.length):
                v, off = self._dec(elem, data, off)
                out.append(v)
            return out, off
        if isinstance(t, (SizedBuffer, CString)):
            if off + _LEN.size > len(data):
                raise SerdeError("truncated length prefix")
            (n,) = _LEN.unpack_from(data, off)
            off += _LEN.size
            if off + n > len(data):
                raise SerdeError("truncated buffer")
            raw = data[off : off + n]
            off += n
            if isinstance(t, CString):
                return raw.decode("utf-8"), off
            return raw, off
        if isinstance(t, Struct):
            out = {}
            for f in t.fields:
                v, off = self._dec(self.registry.resolve(f.type), data, off)
                out[f.name] = v
            return out, off
        if isinstance(t, TaggedUnion):
            if off >= len(data):
                raise SerdeError("truncated union tag")
            tag = data[off]
            off += 1
            variants = t.variant_map()
            if tag not in variants:
                raise SerdeError(f"union {t.name}: unknown tag {tag}")
            v, off = self._dec(self.registry.resolve(variants[tag]), data, off)
            return (tag, v), off
        raise SerdeError(f"cannot decode type {t!r}")


# ---------------------------------------------------------------------------
# Visitor traversal (C-strider's user-callback mode)
# ---------------------------------------------------------------------------

def visit(
    registry: TypeRegistry,
    t: object,
    value: object,
    callback: Callable[[str, CType, object], None],
    path: str = "$",
    depth: int = 0,
) -> None:
    """Depth-bounded, type-aware traversal invoking ``callback(path,
    ctype, value)`` on every primitive/buffer/string leaf — the
    C-strider "heap traversal guided by user-defined callbacks"."""
    t = registry.resolve(t)
    if isinstance(t, (Primitive, SizedBuffer, CString)):
        callback(path, t, value)
        return
    if isinstance(t, Pointer):
        if value is None or depth >= registry.max_depth:
            return
        visit(registry, t.target, value, callback, path + "*", depth + 1)
        return
    if isinstance(t, Array):
        for i, v in enumerate(value or []):
            visit(registry, t.element, v, callback, f"{path}[{i}]", depth)
        return
    if isinstance(t, Struct):
        for f in t.fields:
            visit(registry, f.type, (value or {}).get(f.name), callback, f"{path}.{f.name}", depth)
        return
    if isinstance(t, TaggedUnion):
        if value is None:
            return
        tag, payload = value
        visit(registry, t.variant_map()[tag], payload, callback, f"{path}<{tag}>", depth)
        return
    raise SerdeError(f"cannot visit type {t!r}")


def leaf_paths(registry: TypeRegistry, t: object, value: object) -> Iterator[tuple[str, object]]:
    """Convenience: yield ``(path, leaf_value)`` pairs."""
    acc: list[tuple[str, object]] = []
    visit(registry, t, value, lambda p, _t, v: acc.append((p, v)))
    return iter(acc)
