"""A model of C data types for the serialization framework.

The paper's serializer (sec. 9) is a libclang-based tool in the
C-strider tradition: it statically analyzes C datatype definitions and
generates type-aware traversal/serialization code.  This module models
the C type system that tool operates over:

* primitives (fixed-width integers, floats, chars, booleans),
* pointers (nullable; cycles and long chains handled by a configurable
  maximum recursion depth — the paper's linked-list cap),
* fixed-length arrays,
* length-prefixed buffers (the "implicit size of memory objects"
  problem: the tool asks the user size-related questions; here the
  answer is recorded in the schema as a ``SizedBuffer``),
* structs with named fields,
* tagged unions (the ``void*`` / arbitrary-cast problem: a ``void*``
  must be declared as a :class:`TaggedUnion` over the possible pointee
  types, with an explicit tag).

Schemas live in a :class:`TypeRegistry` so that named struct types can
reference each other (including recursively).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from ..core.errors import SerdeError


class CType:
    """Base class for C type descriptions."""

    __slots__ = ()


@dataclass(frozen=True)
class Primitive(CType):
    """A fixed-width scalar.  ``kind`` is one of
    ``int8/int16/int32/int64/uint8/uint16/uint32/uint64/float32/
    float64/char/bool``."""

    kind: str

    _STRUCT_FMT = {
        "int8": "b",
        "int16": "h",
        "int32": "i",
        "int64": "q",
        "uint8": "B",
        "uint16": "H",
        "uint32": "I",
        "uint64": "Q",
        "float32": "f",
        "float64": "d",
        "char": "c",
        "bool": "?",
    }

    def __post_init__(self):
        if self.kind not in self._STRUCT_FMT:
            raise SerdeError(f"unknown primitive kind {self.kind!r}")

    @property
    def fmt(self) -> str:
        return self._STRUCT_FMT[self.kind]


@dataclass(frozen=True)
class Pointer(CType):
    """A nullable pointer to ``target`` (a CType or a named struct)."""

    target: object  # CType | str (registry name)


@dataclass(frozen=True)
class Array(CType):
    """A fixed-length array of ``element``."""

    element: object
    length: int

    def __post_init__(self):
        if self.length < 0:
            raise SerdeError("array length must be non-negative")


@dataclass(frozen=True)
class SizedBuffer(CType):
    """A variable-length byte buffer whose size is implicit in C (e.g.
    ``char *buf`` + ``size_t len``); the schema records the answer to
    the tool's "size question" as a maximum length."""

    max_length: int = 1 << 20


@dataclass(frozen=True)
class CString(CType):
    """A NUL-terminated ``char*`` (encoded as UTF-8 text)."""

    max_length: int = 1 << 16


@dataclass(frozen=True)
class Field:
    name: str
    type: object  # CType | str


@dataclass(frozen=True)
class Struct(CType):
    """A C struct with named, ordered fields."""

    name: str
    fields: tuple[Field, ...]

    def field_map(self) -> dict[str, object]:
        return {f.name: f.type for f in self.fields}


@dataclass(frozen=True)
class TaggedUnion(CType):
    """Models a ``void*`` or C union: a uint8 tag selects the variant.

    ``variants`` maps tag value -> CType (or registry name).
    """

    name: str
    variants: tuple[tuple[int, object], ...]

    def variant_map(self) -> dict[int, object]:
        return dict(self.variants)


class TypeRegistry:
    """Named struct/union schemas; supports recursive references."""

    def __init__(self, max_depth: int = 16):
        if max_depth < 1:
            raise SerdeError("max_depth must be >= 1")
        self._types: dict[str, CType] = {}
        self.max_depth = max_depth

    def register(self, name: str, ctype: CType, /) -> CType:
        if name in self._types:
            raise SerdeError(f"type {name!r} already registered")
        self._types[name] = ctype
        return ctype

    def struct(self, name: str, /, **fields: object) -> Struct:
        """Declare and register a struct in one call."""
        s = Struct(name, tuple(Field(k, v) for k, v in fields.items()))
        self.register(name, s)
        return s

    def resolve(self, t: object) -> CType:
        if isinstance(t, str):
            if t not in self._types:
                raise SerdeError(f"unknown type name {t!r}")
            return self._types[t]
        if isinstance(t, CType):
            return t
        raise SerdeError(f"not a C type: {t!r}")

    def get(self, name: str) -> CType | None:
        return self._types.get(name)

    def names(self) -> list[str]:
        return sorted(self._types)

    def validate(self) -> None:
        """Check that every referenced name resolves."""
        for name in self._types:
            self._validate_type(self._types[name], seen=set())

    def _validate_type(self, t: object, seen: set[str]) -> None:
        if isinstance(t, str):
            if t in seen:
                return
            seen.add(t)
            self._validate_type(self.resolve(t), seen)
            return
        if isinstance(t, Primitive):
            return
        if isinstance(t, (SizedBuffer, CString)):
            return
        if isinstance(t, Pointer):
            self._validate_type(t.target, seen)
            return
        if isinstance(t, Array):
            self._validate_type(t.element, seen)
            return
        if isinstance(t, Struct):
            if t.name in seen:
                return
            seen.add(t.name)
            for f in t.fields:
                self._validate_type(f.type, seen)
            return
        if isinstance(t, TaggedUnion):
            if t.name in seen:
                return
            seen.add(t.name)
            for _tag, vt in t.variants:
                self._validate_type(vt, seen)
            return
        raise SerdeError(f"not a C type: {t!r}")
