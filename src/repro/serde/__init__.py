"""C-strider-style serialization framework (paper sec. 9)."""

from .codegen import CodeGenerator, generate_module, load_generated
from .ctypes_model import (
    Array,
    CString,
    CType,
    Field,
    Pointer,
    Primitive,
    SizedBuffer,
    Struct,
    TaggedUnion,
    TypeRegistry,
)
from .framing import SavedData, Serializer, decode_generic, encode_generic
from .traverse import Decoder, Encoder, leaf_paths, visit

__all__ = [
    "Array",
    "CString",
    "CType",
    "CodeGenerator",
    "Decoder",
    "Encoder",
    "Field",
    "Pointer",
    "Primitive",
    "SavedData",
    "Serializer",
    "SizedBuffer",
    "Struct",
    "TaggedUnion",
    "TypeRegistry",
    "decode_generic",
    "encode_generic",
    "generate_module",
    "leaf_paths",
    "load_generated",
    "visit",
]
