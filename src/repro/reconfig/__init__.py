"""Live architecture reconfiguration: apply a ``.csaw`` diff to a
running system.

* :mod:`repro.reconfig.diff` — the architecture differ
  (:class:`ArchDiff`, :func:`diff_programs`, :func:`apply_diff`).
* :mod:`repro.reconfig.plan` — the transition planner
  (:class:`TransitionPlan`, :func:`plan_transition`).
* :mod:`repro.reconfig.executor` — the engine-portable executor behind
  :meth:`repro.runtime.system.System.reconfigure`
  (:class:`ReconfigReport`).

See ``docs/RECONFIG.md`` for the model, the zero-drop quiesce protocol
and the verification matrix.
"""

from .diff import ArchDiff, apply_diff, diff_programs, program_signature
from .executor import ReconfigError, ReconfigReport, execute_reconfiguration
from .plan import PlanStep, TransitionPlan, plan_transition

__all__ = [
    "ArchDiff",
    "apply_diff",
    "diff_programs",
    "program_signature",
    "PlanStep",
    "TransitionPlan",
    "plan_transition",
    "ReconfigError",
    "ReconfigReport",
    "execute_reconfiguration",
]
