"""Architecture differ: two compiled programs → a typed :class:`ArchDiff`.

The diff is computed over :class:`~repro.core.compiler.CompiledProgram`
(i.e. *after* function inlining), so two sources that inline to the same
junction templates are considered equal — exactly the equivalence the
runtime observes.  The diff carries the *new* definitions for everything
that changed, which makes it an applicable patch: ``apply_diff(a,
diff_programs(a, b))`` reconstructs a program equivalent to ``b``
(:func:`program_signature` defines the equivalence; instance/junction
order is normalized away).

Categories mirror what the reconfiguration planner needs:

* instances added / removed (a retyped instance appears in both lists —
  at runtime it is stopped and started fresh, there is no state to carry
  across a type change),
* instance types added / removed,
* junction templates added / changed / removed (templates of newly
  added types ride along, making the diff an applicable patch),
* a changed ``main`` start-up expression (new parameter defaults, new
  ``start`` arguments),
* load-time config keys set / removed (shard sets, timeouts).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ast as A
from ..core.compiler import CompiledJunction, CompiledProgram

__all__ = ["ArchDiff", "apply_diff", "diff_programs", "program_signature"]


@dataclass(frozen=True)
class ArchDiff:
    """A typed, applicable difference between two architectures."""

    #: ``(name, type_name)`` pairs present only in the new program
    instances_added: tuple[tuple[str, str], ...] = ()
    #: ``(name, type_name)`` pairs present only in the old program
    instances_removed: tuple[tuple[str, str], ...] = ()
    #: instance-type names present only in the new program
    types_added: tuple[str, ...] = ()
    #: instance-type names present only in the old program
    types_removed: tuple[str, ...] = ()
    #: new templates for junctions that are new or changed — including
    #: the junctions of newly added types, so the diff alone suffices
    #: to reconstruct the target program
    junctions_changed: tuple[CompiledJunction, ...] = ()
    #: ``(type_name, junction_name)`` of junctions dropped from kept types
    junctions_removed: tuple[tuple[str, str], ...] = ()
    #: the new ``main`` when it changed (``None`` + ``main_changed`` for
    #: a main that was removed outright)
    new_main: A.MainDef | None = None
    main_changed: bool = False
    #: ``(key, new_value)`` for config keys added or changed
    config_set: tuple[tuple[str, object], ...] = ()
    #: config keys dropped
    config_removed: tuple[str, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (
            self.instances_added
            or self.instances_removed
            or self.types_added
            or self.types_removed
            or self.junctions_changed
            or self.junctions_removed
            or self.main_changed
            or self.config_set
            or self.config_removed
        )

    def summary(self) -> str:
        if self.is_empty:
            return "architectures are equivalent (empty diff)"
        lines = []
        for name, tname in self.instances_added:
            lines.append(f"+ instance {name}: {tname}")
        for name, tname in self.instances_removed:
            lines.append(f"- instance {name}: {tname}")
        for tname in self.types_added:
            lines.append(f"+ type {tname}")
        for tname in self.types_removed:
            lines.append(f"- type {tname}")
        for cj in self.junctions_changed:
            lines.append(f"~ junction {cj.qualified}")
        for tname, jname in self.junctions_removed:
            lines.append(f"- junction {tname}::{jname}")
        if self.main_changed:
            lines.append("~ main" if self.new_main is not None else "- main")
        for key, value in self.config_set:
            lines.append(f"~ config {key} = {value!r}")
        for key in self.config_removed:
            lines.append(f"- config {key}")
        return "\n".join(lines)


def _as_compiled(p: CompiledProgram) -> CompiledProgram:
    if not isinstance(p, CompiledProgram):
        raise TypeError(f"expected a CompiledProgram, got {type(p).__name__}")
    return p


def diff_programs(old: CompiledProgram, new: CompiledProgram) -> ArchDiff:
    """Diff two compiled architectures (old → new)."""
    old = _as_compiled(old)
    new = _as_compiled(new)
    old_imap = old.instance_map()
    new_imap = new.instance_map()

    added = []
    removed = []
    for name in sorted(new_imap):
        if name not in old_imap:
            added.append((name, new_imap[name]))
        elif new_imap[name] != old_imap[name]:  # retyped: remove + add
            removed.append((name, old_imap[name]))
            added.append((name, new_imap[name]))
    for name in sorted(old_imap):
        if name not in new_imap:
            removed.append((name, old_imap[name]))

    old_types = set(old.source.instance_types)
    new_types = set(new.source.instance_types)
    types_added = tuple(sorted(new_types - old_types))
    types_removed = tuple(sorted(old_types - new_types))

    old_j = {(j.type_name, j.name): j for j in old.junctions}
    new_j = {(j.type_name, j.name): j for j in new.junctions}
    junctions_changed = []
    junctions_removed = []
    for key in sorted(new_j):
        prev = old_j.get(key)
        cur = new_j[key]
        if prev is None or (prev.params, prev.decls, prev.body) != (
            cur.params,
            cur.decls,
            cur.body,
        ):
            junctions_changed.append(cur)
    for key in sorted(old_j):
        tname, jname = key
        if tname in types_removed:
            continue  # implied by the type removal
        if key not in new_j:
            junctions_removed.append((tname, jname))

    main_changed = old.main != new.main
    config_set = []
    config_removed = []
    for key in sorted(new.config):
        if key not in old.config or old.config[key] != new.config[key]:
            config_set.append((key, new.config[key]))
    for key in sorted(old.config):
        if key not in new.config:
            config_removed.append(key)

    return ArchDiff(
        instances_added=tuple(sorted(added)),
        instances_removed=tuple(sorted(removed)),
        types_added=types_added,
        types_removed=types_removed,
        junctions_changed=tuple(junctions_changed),
        junctions_removed=tuple(junctions_removed),
        new_main=new.main if main_changed else None,
        main_changed=main_changed,
        config_set=tuple(config_set),
        config_removed=tuple(config_removed),
    )


def apply_diff(old: CompiledProgram, diff: ArchDiff) -> CompiledProgram:
    """Patch ``old`` with ``diff``, reconstructing the target program.

    The result is equivalent to the program the diff was computed
    against: ``program_signature(apply_diff(a, diff_programs(a, b))) ==
    program_signature(b)``.  The reconstructed :class:`~repro.core.ast.
    Program` lists one :class:`~repro.core.ast.JunctionDef` per compiled
    junction (functions are already inlined), so it revalidates and
    recompiles cleanly.
    """
    old = _as_compiled(old)
    removed_names = {name for name, _ in diff.instances_removed}
    instances = [
        (name, tname)
        for name, tname in old.source.instances
        if name not in removed_names
    ]
    instances += [pair for pair in diff.instances_added]
    instances.sort()

    types = [t for t in old.source.instance_types if t not in diff.types_removed]
    types += [t for t in diff.types_added if t not in types]

    overridden = {(j.type_name, j.name) for j in diff.junctions_changed}
    dropped = set(diff.junctions_removed)
    junctions = [
        j
        for j in old.junctions
        if j.type_name not in diff.types_removed
        and (j.type_name, j.name) not in overridden
        and (j.type_name, j.name) not in dropped
    ]
    junctions += list(diff.junctions_changed)
    junctions.sort(key=lambda j: (j.type_name, j.name))

    main = diff.new_main if diff.main_changed else old.main

    config = {k: v for k, v in old.config.items() if k not in diff.config_removed}
    for key, value in diff.config_set:
        config[key] = value

    source = A.Program(
        instance_types=tuple(types),
        instances=tuple(instances),
        main=main,
        defs=tuple(
            A.JunctionDef(
                type_name=j.type_name,
                junction=j.name,
                params=j.params,
                decls=j.decls,
                body=j.body,
            )
            for j in junctions
        ),
        functions=(),
    )
    return CompiledProgram(
        source=source,
        junctions=tuple(junctions),
        main=main,
        config=config,
        source_text=None,
    )


def program_signature(p: CompiledProgram):
    """A normalized, order-insensitive identity of an architecture.

    Two programs with equal signatures bind the same instances to the
    same junction templates under the same ``main`` and config — the
    equivalence :func:`apply_diff` round-trips under.
    """
    p = _as_compiled(p)
    return (
        frozenset(p.source.instance_types),
        tuple(sorted(p.instance_map().items())),
        tuple(
            sorted(
                (j.type_name, j.name, j.params, j.decls, j.body)
                for j in p.junctions
            )
        ),
        p.main,
        tuple(sorted(p.config.items())),
    )
