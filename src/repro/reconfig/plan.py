"""Transition planner: an :class:`ArchDiff` → per-instance lifecycle steps.

The plan is decentralized in Concerto-D's sense: each affected instance
gets its *own* lifecycle chain (quiesce → snapshot → rebind/stop/start
→ resume) and unaffected instances appear nowhere — they keep serving
throughout.  The only global synchronization point is the ``cutover``
step, which waits for every quiesce/snapshot/spawn and gates every
rebind/start/stop/resume:

* kept-but-affected instance X:  ``quiesce:X → snapshot:X → cutover →
  rebind:X → resume:X``
* removed instance R:            ``quiesce:R → snapshot:R → cutover →
  stop:R``
* added instance A:              ``spawn:A → cutover → start:A →
  resume:A``
* application state transfer:    ``cutover → transfer → resume:*``

The executor (:mod:`repro.reconfig.executor`) applies plans phase by
phase; :meth:`TransitionPlan.ordered` is the contract tests check —
every topological order it can emit respects quiesce-before-cutover and
cutover-before-resume.
"""

from __future__ import annotations

from dataclasses import dataclass

from .diff import ArchDiff

__all__ = ["PlanStep", "TransitionPlan", "plan_transition"]

#: step kinds in lifecycle order
KINDS = (
    "quiesce",
    "snapshot",
    "spawn",
    "cutover",
    "rebind",
    "stop",
    "start",
    "transfer",
    "resume",
)


@dataclass(frozen=True)
class PlanStep:
    """One lifecycle action on one instance (or the global cutover)."""

    step_id: str
    kind: str
    target: str | None
    deps: tuple[str, ...] = ()

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ValueError(f"unknown plan step kind {self.kind!r}")


@dataclass(frozen=True)
class TransitionPlan:
    """A dependency DAG of :class:`PlanStep`."""

    steps: tuple[PlanStep, ...]

    def __getitem__(self, step_id: str) -> PlanStep:
        for s in self.steps:
            if s.step_id == step_id:
                return s
        raise KeyError(step_id)

    def by_kind(self, kind: str) -> list[PlanStep]:
        return [s for s in self.steps if s.kind == kind]

    def validate(self) -> None:
        """Raise ``ValueError`` on dangling dependencies or cycles."""
        ids = {s.step_id for s in self.steps}
        if len(ids) != len(self.steps):
            raise ValueError("duplicate step ids")
        for s in self.steps:
            for d in s.deps:
                if d not in ids:
                    raise ValueError(f"step {s.step_id!r} depends on unknown {d!r}")
        self.ordered()  # raises on cycles

    def ordered(self) -> list[PlanStep]:
        """A deterministic topological order (Kahn's algorithm with a
        stable lexicographic tie-break on step id)."""
        steps = {s.step_id: s for s in self.steps}
        indeg = {sid: len(s.deps) for sid, s in steps.items()}
        rdeps: dict[str, list[str]] = {sid: [] for sid in steps}
        for s in self.steps:
            for d in s.deps:
                rdeps[d].append(s.step_id)
        ready = sorted(sid for sid, n in indeg.items() if n == 0)
        out: list[PlanStep] = []
        while ready:
            sid = ready.pop(0)
            out.append(steps[sid])
            changed = False
            for nxt in rdeps[sid]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
                    changed = True
            if changed:
                ready.sort()
        if len(out) != len(self.steps):
            raise ValueError("transition plan has a dependency cycle")
        return out

    def closure(self, step_id: str) -> set[str]:
        """All step ids ``step_id`` transitively depends on."""
        steps = {s.step_id: s for s in self.steps}
        seen: set[str] = set()
        stack = list(steps[step_id].deps)
        while stack:
            d = stack.pop()
            if d not in seen:
                seen.add(d)
                stack.extend(steps[d].deps)
        return seen

    def render(self) -> str:
        lines = []
        for s in self.ordered():
            dep = f"  (after {', '.join(s.deps)})" if s.deps else ""
            tgt = f" {s.target}" if s.target else ""
            lines.append(f"{s.kind}{tgt}{dep}")
        return "\n".join(lines)


def plan_transition(
    diff: ArchDiff,
    *,
    rebind: tuple[str, ...] = (),
    transfer: bool = False,
) -> TransitionPlan:
    """Compile a diff into a transition plan.

    ``rebind`` names the kept instances whose junctions must rebind —
    the executor derives this from the running system (changed
    templates, changed start arguments, changed config); pure-diff
    callers may leave it empty.  ``transfer`` inserts the application
    state-transfer step between cutover and resume.
    """
    added = [name for name, _ in diff.instances_added]
    removed = [name for name, _ in diff.instances_removed]
    rebind = tuple(n for n in rebind if n not in added and n not in removed)

    steps: list[PlanStep] = []
    pre_cutover: list[str] = []

    for name in sorted(set(rebind) | set(removed)):
        steps.append(PlanStep(f"quiesce:{name}", "quiesce", name))
        steps.append(
            PlanStep(f"snapshot:{name}", "snapshot", name, deps=(f"quiesce:{name}",))
        )
        pre_cutover.append(f"snapshot:{name}")
    for name in sorted(added):
        steps.append(PlanStep(f"spawn:{name}", "spawn", name))
        pre_cutover.append(f"spawn:{name}")

    steps.append(PlanStep("cutover", "cutover", None, deps=tuple(pre_cutover)))

    post_cutover: list[str] = []
    for name in sorted(rebind):
        steps.append(PlanStep(f"rebind:{name}", "rebind", name, deps=("cutover",)))
        post_cutover.append(f"rebind:{name}")
    for name in sorted(removed):
        steps.append(PlanStep(f"stop:{name}", "stop", name, deps=("cutover",)))
    for name in sorted(added):
        steps.append(PlanStep(f"start:{name}", "start", name, deps=("cutover",)))
        post_cutover.append(f"start:{name}")

    resume_dep: tuple[str, ...] = ("cutover", *post_cutover)
    if transfer:
        steps.append(PlanStep("transfer", "transfer", None, deps=resume_dep))
        resume_dep = ("transfer",)
    for name in sorted(set(rebind) | set(added)):
        steps.append(PlanStep(f"resume:{name}", "resume", name, deps=resume_dep))

    plan = TransitionPlan(steps=tuple(steps))
    plan.validate()
    return plan
