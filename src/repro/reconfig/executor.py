"""Transition executor: apply an :class:`ArchDiff` to a *running* System.

The executor is engine-portable — it drives the transition from
blocking code through the same ``engine.run_until`` surface the
embedding application uses, so the identical plan executes on the sim,
realtime and cluster engines.  On the cluster engine, worker processes
for added instances spawn in the prepare phase and removed instances'
workers retire after the transition, both while the event loop is idle
(`engine.prepare_instances` / `engine.retire_instances`).

Zero-drop protocol
------------------

Quiesce happens in two waves (the decentralized part — unaffected
instances never stop serving):

1. *Close the doors*: junctions of affected instances that have ever
   been driven from outside the architecture (``external_update`` /
   ``poke`` — the client-facing boundary) are paused.  A paused
   junction schedules no new executions, but its table still receives,
   acks and dedups inbound updates through the reliable-delivery
   layer, so client requests submitted during the window buffer
   instead of dropping.
2. *Drain*: the engine pumps until every affected junction is
   simultaneously quiescent — not mid-execution, and (unless paused)
   with no pending updates.  In-flight request chains complete
   normally because only the boundary is closed.  If the drain misses
   the grace deadline the transition rolls back (unpause, retire any
   pre-spawned workers) having mutated nothing.

Cutover then runs as one atomic blocking stretch (the engine never
runs between quiesce convergence and resume): junction tables are
serde-snapshotted, templates swapped, junctions re-specialized against
the new program, snapshots restored for keys the new binding still
declares, buffered updates carried over, removed instances stopped and
added instances started.  ``resume`` unpauses everything and replays
the buffered work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Mapping

from dataclasses import dataclass, field

from ..core import ast as A
from ..core.compiler import CompiledProgram
from ..core.errors import SerdeError
from ..core.expand import specialize, to_ast_value
from .diff import ArchDiff, diff_programs
from .plan import TransitionPlan, plan_transition

if TYPE_CHECKING:  # pragma: no cover
    from ..runtime.system import System

__all__ = ["ReconfigError", "ReconfigReport", "execute_reconfiguration"]


class ReconfigError(Exception):
    """A live reconfiguration could not be planned or applied."""


@dataclass
class ReconfigReport:
    """Outcome of one live reconfiguration."""

    ok: bool
    rolled_back: bool = False
    reason: str = ""
    started_at: float = 0.0
    finished_at: float = 0.0
    instances_added: tuple[str, ...] = ()
    instances_removed: tuple[str, ...] = ()
    instances_rebound: tuple[str, ...] = ()
    updates_replayed: int = 0
    snapshot_bytes: int = 0
    diff: ArchDiff | None = None
    plan: TransitionPlan | None = None

    @property
    def duration(self) -> float:
        return max(0.0, self.finished_at - self.started_at)

    def render(self) -> str:
        verdict = (
            "rolled back" if self.rolled_back else ("ok" if self.ok else "failed")
        )
        line = (
            f"reconfigure: {verdict} in {self.duration:.3f}s "
            f"(+{len(self.instances_added)} -{len(self.instances_removed)} "
            f"~{len(self.instances_rebound)} instances, "
            f"{self.updates_replayed} update(s) replayed, "
            f"{self.snapshot_bytes} snapshot byte(s))"
        )
        if self.reason:
            line += f" — {self.reason}"
        return line


@dataclass
class _JunctionSnapshot:
    values: dict = field(default_factory=dict)
    pending: list = field(default_factory=list)
    nbytes: int = 0


def _main_start_args(
    program: CompiledProgram, env: Mapping[str, object]
) -> dict[str, dict[str, tuple]]:
    """Per-instance junction arguments from ``main``'s start expression,
    specialized against ``env`` — the same specialization path
    ``System.start`` uses, so reconfigured and freshly-started bindings
    agree exactly."""
    main = program.main
    if main is None:
        return {}
    body, _ = specialize(main.body, (), dict(env))
    imap = program.instance_map()
    out: dict[str, dict[str, tuple]] = {}
    for node in A.walk(body):
        if not isinstance(node, A.Start):
            continue
        name = str(node.instance)
        tname = imap.get(name)
        if tname is None:
            continue  # dynamic target (idx deref) — runtime-only
        groups = dict(node.junction_args)
        if None in groups and len(groups) == 1:
            junctions = program.junctions_of_type(tname)
            if len(junctions) == 1:
                groups = {junctions[0].name: groups[None]}
            else:
                continue
        out[name] = {j: tuple(args) for j, args in groups.items() if j is not None}
    return out


def _quiescent(system: "System", jr) -> bool:
    if jr.node in system._executions:
        return False
    return jr.paused or not jr.table.has_pending


def _snapshot_junction(system: "System", jr) -> _JunctionSnapshot:
    """Serde-roundtrip the junction's KV state.  Values the generic
    codec covers travel through ``Serializer`` (this is the path a
    future cross-host transfer takes — and it counts transfer bytes);
    host-object values (app handles, UNDEF) are carried by reference."""
    snap = _JunctionSnapshot(pending=jr.table.pending_updates())
    for key, value in jr.table.values.items():
        try:
            saved = system.serializer.encode(None, value)
            snap.values[key] = system.serializer.decode(saved)
            snap.nbytes += len(saved.blob)
        except (SerdeError, TypeError):
            snap.values[key] = value
    return snap


def _rebind_args(
    jr, cj, new_start_args: Mapping[str, Mapping[str, tuple]], inst_name: str
) -> tuple:
    """Arguments for rebinding one junction: the new ``main``'s start
    expression wins; otherwise carried-over arguments matched by
    parameter name."""
    from_main = new_start_args.get(inst_name, {}).get(cj.name)
    if from_main is not None:
        return from_main
    missing = [p for p in cj.params if p not in jr.ast_params]
    if missing:
        raise ReconfigError(
            f"cannot rebind {jr.node}: no value for new parameter(s) {missing} "
            "(not started by the new main; pass main_args or start it explicitly)"
        )
    return tuple(jr.ast_params[p] for p in cj.params)


def execute_reconfiguration(
    system: "System",
    new_program: CompiledProgram | None = None,
    *,
    main_args: Mapping[str, object] | None = None,
    quiesce_grace: float = 5.0,
    poll: float = 0.01,
    bind: "Callable[[System], None] | None" = None,
    on_transfer=None,
) -> ReconfigReport:
    """Apply a live reconfiguration to ``system`` (see
    :meth:`repro.runtime.system.System.reconfigure`)."""
    if system._reconfiguring:
        raise ReconfigError("a reconfiguration is already in progress")
    if not system._started_main:
        raise ReconfigError("reconfigure a *running* system (call start() first)")
    system._reconfiguring = True
    try:
        return _execute(
            system,
            new_program if new_program is not None else system.program,
            main_args or {},
            quiesce_grace,
            poll,
            bind,
            on_transfer,
        )
    finally:
        system._reconfiguring = False


def _execute(
    system: "System",
    new: CompiledProgram,
    main_args: Mapping[str, object],
    quiesce_grace: float,
    poll: float,
    bind,
    on_transfer,
) -> ReconfigReport:
    tel = system.telemetry
    clock = system.clock
    old = system.program
    diff = diff_programs(old, new)

    # -- new main environment: new config, then parameters carried over
    #    from the original start, then explicit overrides
    env = new.config_env()
    if new.main is not None:
        for p in new.main.params:
            if p in system._main_env:
                env[p] = system._main_env[p]
    for k, v in main_args.items():
        env[k] = to_ast_value(v)
    if new.main is not None:
        missing = [p for p in new.main.params if p not in env]
        if missing:
            raise ReconfigError(f"main parameters missing values: {missing}")
    new_start_args = _main_start_args(new, env)

    # -- derive the rebind set: kept running instances whose junction
    #    templates, start arguments or config changed
    new_imap = new.instance_map()
    added = tuple(name for name, _ in diff.instances_added)
    removed = tuple(name for name, _ in diff.instances_removed)
    changed_types = {cj.type_name for cj in diff.junctions_changed}
    changed_types.update(t for t, _ in diff.junctions_removed)
    config_changed = bool(diff.config_set or diff.config_removed)

    rebind: list[str] = []
    for name, inst in system.instances.items():
        if name in removed or name not in new_imap or not inst.running:
            continue
        tname = new_imap[name]
        if tname in changed_types or config_changed:
            rebind.append(name)
            continue
        for cj in new.junctions_of_type(tname):
            jr = inst.junctions.get(cj.name)
            if jr is None or jr.body is None:
                continue
            try:
                if _rebind_args(jr, cj, new_start_args, name) != tuple(
                    jr.ast_params.get(p) for p in cj.params
                ):
                    rebind.append(name)
                    break
            except ReconfigError:
                continue
    rebind.sort()

    plan = plan_transition(
        diff, rebind=tuple(rebind), transfer=on_transfer is not None
    )

    report = ReconfigReport(
        ok=False,
        started_at=clock.now,
        instances_added=added,
        instances_removed=removed,
        instances_rebound=tuple(rebind),
        diff=diff,
        plan=plan,
    )
    if diff.is_empty and not rebind:
        report.ok = True
        report.finished_at = clock.now
        report.reason = "no changes"
        return report

    begin_ev = tel.emit(
        "reconfig_begin",
        "__reconfig__",
        added=list(added),
        removed=list(removed),
        rebound=list(rebind),
    )
    tel.counter("reconfig_transitions").inc()
    tel.gauge("reconfig_in_progress").set(1)

    try:
        # ---- prepare: host bindings for new types, backend resources
        #      (cluster worker processes) for added instances — blocking,
        #      before anything observable changes
        from ..runtime.instance import InstanceTypeRuntime

        for tname in diff.types_added:
            if tname not in system.types:
                system.types[tname] = InstanceTypeRuntime(
                    tname, new.junctions_of_type(tname)
                )
        if bind is not None:
            bind(system)
        system.engine.prepare_instances(added)

        # ---- quiesce wave 1: close the client-facing boundary
        affected = [
            system.instances[n]
            for n in sorted(set(rebind) | set(removed))
            if n in system.instances
        ]
        tel.emit("reconfig_quiesce", "__reconfig__", parent=begin_ev)
        for inst in affected:
            for jr in inst.junctions.values():
                if jr.external_inbound:
                    jr.paused = True

        # ---- quiesce wave 2: drain in-flight work
        deadline = clock.now + max(quiesce_grace, 0.0)
        step = max(poll, 1e-6)

        def drained() -> bool:
            return all(
                _quiescent(system, jr)
                for inst in affected
                for jr in inst.junctions.values()
            )

        while not drained():
            if clock.now >= deadline:
                for inst in affected:
                    inst.set_paused(False)
                    for jr in inst.junctions.values():
                        system._attempt_soon(jr)
                system.engine.retire_instances(added)
                tel.emit("reconfig_rollback", "__reconfig__", parent=begin_ev)
                report.rolled_back = True
                report.finished_at = clock.now
                report.reason = f"quiesce did not drain within {quiesce_grace}s"
                return report
            system.engine.run_until(min(clock.now + step, deadline))

        # from here to resume the engine never runs: the cutover is
        # atomic with respect to message delivery and scheduling
        for inst in affected:
            inst.set_paused(True)

        # ---- snapshot
        snapshots: dict[str, dict[str, _JunctionSnapshot]] = {}
        for inst in affected:
            snapshots[inst.name] = {
                jname: _snapshot_junction(system, jr)
                for jname, jr in inst.junctions.items()
                if jr.body is not None
            }
            report.snapshot_bytes += sum(
                s.nbytes for s in snapshots[inst.name].values()
            )
        tel.emit(
            "reconfig_snapshot",
            "__reconfig__",
            parent=begin_ev,
            bytes=report.snapshot_bytes,
        )

        # ---- cutover
        cut_ev = tel.emit("reconfig_cutover", "__reconfig__", parent=begin_ev)
        system.program = new
        system._main_env = dict(env)
        system._compile_cache.clear()
        system._junction_cache.clear()
        for tname in set(new.source.instance_types):
            trt = system.types.get(tname)
            if trt is None:
                system.types[tname] = InstanceTypeRuntime(
                    tname, new.junctions_of_type(tname)
                )
            else:
                trt.junctions = {j.name: j for j in new.junctions_of_type(tname)}

        removed_apps: dict[str, object] = {}
        for name in removed:
            inst = system.instances.get(name)
            if inst is None:
                continue
            removed_apps[name] = inst.app
            if inst.running:
                system.stop_instance(name, _parent=cut_ev)
            del system.instances[name]

        config_env = new.config_env()
        from ..runtime.instance import JunctionRuntime

        for name, inst in system.instances.items():
            trt = system.types.get(new_imap.get(name, ""))
            if trt is None:
                continue
            if name in rebind:
                snap = snapshots.get(name, {})
                # drop junctions the new type no longer declares
                for jname in [j for j in inst.junctions if j not in trt.junctions]:
                    jr = inst.junctions.pop(jname)
                    system._executions.pop(jr.node, None)
                    system.network.unregister(jr.node)
                for jname, cj in trt.junctions.items():
                    jr = inst.junctions.get(jname)
                    if jr is None:
                        jr = inst.junctions[jname] = JunctionRuntime(inst, cj)
                        jr.paused = True
                    was_bound = jr.body is not None
                    jr.compiled = cj
                    args = _rebind_args(jr, cj, new_start_args, name)
                    system._bind_junction(inst, jr, args, config_env)
                    if was_bound and jname in snap:
                        s = snap[jname]
                        # restore by key *name*: the new program may
                        # declare the same keys at different slots
                        for key, value in s.values.items():
                            if key in jr.table.values:
                                jr.table.values[key] = value
                        jr.table.enqueue_pending(
                            u for u in s.pending if u.key in jr.table.values
                        )
                tel.emit("reconfig_rebind", name, parent=cut_ev)
            else:
                # template bookkeeping for instances that don't rebind
                # now (not running, or unaffected): future starts bind
                # against the new program
                for jname in [j for j in inst.junctions if j not in trt.junctions]:
                    jr = inst.junctions[jname]
                    if jr.body is None:
                        del inst.junctions[jname]
                for jname, cj in trt.junctions.items():
                    jr = inst.junctions.get(jname)
                    if jr is None:
                        inst.junctions[jname] = JunctionRuntime(inst, cj)
                    elif jr.body is None:
                        jr.compiled = cj

        from ..runtime.instance import InstanceRuntime

        for name, tname in diff.instances_added:
            inst = system.instances[name] = InstanceRuntime(
                name, system.types[tname]
            )
            if name in new_start_args:
                system._start_instance(inst, new_start_args[name], parent=cut_ev)

        # node-name resolutions made during the cutover must not
        # outlive it: instances and junction runtimes were replaced
        system._junction_cache.clear()

        # ---- transfer (application-level state movement, e.g. resharding)
        if on_transfer is not None:
            on_transfer(system, removed_apps)
            tel.emit("reconfig_transfer", "__reconfig__", parent=cut_ev)

        # ---- resume: unpause and replay buffered work
        for inst in affected:
            if inst.name not in system.instances:
                continue
            inst.set_paused(False)
            for jr in inst.junctions.values():
                report.updates_replayed += jr.table.pending_count
                system._attempt_soon(jr)
        tel.emit(
            "reconfig_resume",
            "__reconfig__",
            parent=begin_ev,
            replayed=report.updates_replayed,
        )
        if report.updates_replayed:
            tel.counter("reconfig_replayed_updates").inc(report.updates_replayed)

        # drain the immediate wake-ups, then release backend resources
        # of the removed instances (cluster workers) while the loop is
        # idle again
        system.engine.run_until(clock.now)
        system.engine.retire_instances(removed)

        report.ok = True
        report.finished_at = clock.now
        tel.emit(
            "reconfig_end",
            "__reconfig__",
            parent=begin_ev,
            duration=round(report.duration, 6),
        )
        tel.histogram("reconfig_seconds").observe(report.duration)
        return report
    finally:
        tel.gauge("reconfig_in_progress").set(0)
