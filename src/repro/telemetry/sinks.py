"""Bounded event sinks and trace exporters.

The runtime emits into a :class:`RingBufferSink` — a bounded deque, so
an unbounded soak cannot grow memory without limit (the pre-telemetry
``System._trace`` list grew forever).  Exporters turn the retained
events into:

* **JSONL** — one sorted-keys JSON object per line; deterministic
  under a fixed seed, byte-identical across runs (the chaos-soak
  determinism test asserts exactly this).
* **Chrome trace-event format** — a ``{"traceEvents": [...]}`` JSON
  document loadable in ``chrome://tracing`` / Perfetto.  Junction
  executions (``sched``/``unsched``) become duration slices on a
  per-junction track; spans become complete ``X`` slices; everything
  else becomes an instant event.  Causal parents are preserved in
  ``args.parent``.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Iterable, Iterator

from .events import TraceEvent


class RingBufferSink:
    """Bounded in-memory event sink (drops the oldest on overflow)."""

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self._buf: deque[TraceEvent] = deque(maxlen=capacity)
        self.total = 0  # events ever appended (dropped = total - len)

    def append(self, event: TraceEvent) -> None:
        self._buf.append(event)
        self.total += 1

    @property
    def dropped(self) -> int:
        return self.total - len(self._buf)

    def clear(self) -> None:
        self._buf.clear()

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buf)


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def to_jsonl(
    events: Iterable[TraceEvent],
    *,
    system: str | None = None,
    engine: str | None = None,
) -> str:
    """One JSON object per event, keys sorted, non-JSON values via
    ``str`` — deterministic for seeded runs.  ``system`` labels every
    line when several systems are merged into one export; ``engine``
    tags each line with the execution engine that produced it."""
    lines = []
    for e in events:
        rec = e.record()
        if system is not None:
            rec["system"] = system
        if engine is not None:
            rec["engine"] = engine
        lines.append(json.dumps(rec, sort_keys=True, default=str))
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------

#: kinds rendered as duration begin/end pairs on the junction's track
_BEGIN, _END = "sched", "unsched"


def to_chrome(
    groups: Iterable[tuple[str, Iterable[TraceEvent]]],
    *,
    engine: str | None = None,
) -> dict:
    """Build a Chrome trace-event document from ``(label, events)``
    groups — one traced process per system.  ``engine`` is recorded in
    each process's metadata args."""
    trace: list[dict] = []
    for pid, (label, events) in enumerate(groups):
        proc_args = {"name": label}
        if engine is not None:
            proc_args["engine"] = engine
        trace.append(
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": proc_args}
        )
        tids: dict[str, int] = {}
        for e in events:
            tid = tids.get(e.node)
            if tid is None:
                tid = tids[e.node] = len(tids) + 1
                trace.append(
                    {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                     "args": {"name": e.node}}
                )
            args = {"seq": e.seq}
            if e.parent is not None:
                args["parent"] = e.parent
            for k, v in e.attrs.items():
                args[k] = v if isinstance(v, (int, float, str, bool, type(None))) else str(v)
            ts = e.time * 1e6  # Chrome wants microseconds
            if e.kind == _BEGIN:
                trace.append({"name": "execution", "ph": "B", "ts": ts,
                              "pid": pid, "tid": tid, "args": args})
            elif e.kind == _END:
                trace.append({"name": "execution", "ph": "E", "ts": ts,
                              "pid": pid, "tid": tid, "args": args})
            elif "dur" in e.attrs:
                args = dict(args)
                dur = args.pop("dur")
                trace.append({"name": e.kind, "ph": "X", "ts": ts,
                              "dur": float(dur) * 1e6, "pid": pid, "tid": tid,
                              "args": args})
            else:
                trace.append({"name": e.kind, "ph": "i", "ts": ts, "s": "t",
                              "pid": pid, "tid": tid, "args": args})
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def chrome_json(
    groups: Iterable[tuple[str, Iterable[TraceEvent]]],
    *,
    engine: str | None = None,
) -> str:
    return json.dumps(to_chrome(groups, engine=engine), sort_keys=True)
