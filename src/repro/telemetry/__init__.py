"""First-class observability for the C-Saw runtime.

The paper's evaluation (Figs. 23–26, Table 3) is built on per-operation
latency and reconfiguration-overhead measurements; this package gives
the reproduction a real telemetry layer to measure them with:

* :mod:`repro.telemetry.events` — structured trace events with causal
  parent links (a runtime trace is a concrete event structure matching
  :mod:`repro.semantics.events`);
* :mod:`repro.telemetry.metrics` — a registry of labeled counters,
  gauges and fixed-bucket simulated-time histograms;
* :mod:`repro.telemetry.sinks` — bounded ring-buffer retention and the
  JSONL / Chrome-trace exporters;
* :mod:`repro.telemetry.facade` — the :class:`Telemetry` facade every
  :class:`~repro.runtime.system.System` owns as ``system.telemetry``.

See ``docs/OBSERVABILITY.md`` for the event schema, causal-link
semantics and the migration table from the deprecated
``System.trace``-era API.
"""

from .events import TraceEvent
from .facade import Telemetry, capture_systems, note_system
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .sinks import RingBufferSink, chrome_json, to_chrome, to_jsonl

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RingBufferSink",
    "Telemetry",
    "TraceEvent",
    "capture_systems",
    "chrome_json",
    "note_system",
    "to_chrome",
    "to_jsonl",
]
