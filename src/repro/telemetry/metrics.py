"""Metrics registry: labeled counters, gauges and fixed-bucket histograms.

Replaces the scattered ``Network.stats`` ad-hoc counter dict with one
registry shared by the whole :class:`~repro.runtime.system.System`:
the transport, the delivery layer, the KV tables and the interpreter
all register metrics here, labeled per instance / per link / per
message kind, and benchmarks read their latency distributions back out
instead of re-deriving them from raw completion logs.

Design notes
------------

* Metric handles are plain mutable objects; the hot path is
  ``handle.inc()`` / ``handle.observe(v)`` — one attribute update.
  Call sites cache handles (see ``Network._counter``) so label
  resolution happens once per label combination, not per event.
* Histograms use *fixed* bucket upper bounds over simulated seconds
  (default: a 1–2–5 log ladder from 1µs to 100s).  Sums are exact, so
  ``mean`` is exact; percentiles interpolate within a bucket.
* Everything is deterministic: iteration orders are insertion orders,
  snapshots sort keys.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator

#: Default histogram upper bounds (simulated seconds): 1-2-5 ladder,
#: 1µs .. 100s, plus the implicit +inf overflow bucket.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = tuple(
    m * 10.0**e for e in range(-6, 3) for m in (1.0, 2.0, 5.0)
)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A value that can go up and down (queue depths, open breakers)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def set(self, v) -> None:
        self.value = v

    def inc(self, n=1) -> None:
        self.value += n

    def dec(self, n=1) -> None:
        self.value -= n


class Histogram:
    """A fixed-bucket histogram over simulated-time durations.

    ``bounds`` are the inclusive upper bounds of each bucket; an extra
    overflow bucket catches observations above the last bound.  The
    exact ``sum``/``count`` make :meth:`mean` exact; :meth:`percentile`
    interpolates linearly within the winning bucket.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_TIME_BUCKETS):
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, v: float) -> None:
        self.counts[bisect_left(self.bounds, v)] += 1
        self.sum += v
        self.count += 1

    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Approximate ``q``-quantile (linear within the bucket)."""
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            if cum + c >= rank and c > 0:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
                frac = (rank - cum) / c
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            cum += c
        return self.bounds[-1]

    def nonzero_buckets(self) -> list[tuple[float, int]]:
        """(upper_bound, count) for the populated buckets (inf for the
        overflow bucket) — the shape printed by benchmark reports."""
        out = []
        for i, c in enumerate(self.counts):
            if c:
                ub = self.bounds[i] if i < len(self.bounds) else float("inf")
                out.append((ub, c))
        return out


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Registry of named, labeled metrics.

    ``counter("net_sent", kind="update", src="f", dst="g")`` returns
    the one Counter for that name + label combination, creating it on
    first use.  A name is bound to one metric type; mixing types under
    one name is an error.
    """

    def __init__(self):
        # name -> (type, {label_key: metric})
        self._metrics: dict[str, tuple[type, dict[tuple, object]]] = {}
        #: labels merged into every metric registered from now on (the
        #: System stamps ``engine=<name>`` here so sim and realtime runs
        #: of one workload are distinguishable in snapshots); explicit
        #: labels win on collision
        self.constant_labels: dict[str, str] = {}

    def _get(self, cls: type, name: str, labels: dict, *args):
        if self.constant_labels:
            labels = {**self.constant_labels, **labels}
        try:
            kind, family = self._metrics[name]
        except KeyError:
            kind, family = self._metrics.setdefault(name, (cls, {}))
        if kind is not cls:
            raise TypeError(f"metric {name!r} is a {kind.__name__}, not a {cls.__name__}")
        key = _label_key(labels)
        m = family.get(key)
        if m is None:
            m = family[key] = cls(*args)
        return m

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS, **labels
    ) -> Histogram:
        return self._get(Histogram, name, labels, buckets)

    # -- reading ------------------------------------------------------------

    def collect(self, prefix: str = "") -> Iterator[tuple[str, dict, object]]:
        """Yield ``(name, labels, metric)`` for every registered metric
        (optionally restricted to names starting with ``prefix``)."""
        for name, (_kind, family) in self._metrics.items():
            if not name.startswith(prefix):
                continue
            for key, metric in family.items():
                yield name, dict(key), metric

    def sum(self, name: str, **match) -> float:
        """Sum of ``value`` over all metrics named ``name`` whose
        labels include every ``match`` pair (counters/gauges)."""
        entry = self._metrics.get(name)
        if entry is None:
            return 0
        total = 0
        items = match.items()
        for key, metric in entry[1].items():
            d = dict(key)
            if all(d.get(k) == v for k, v in items):
                total += metric.value
        return total

    def snapshot(self) -> dict:
        """Deterministic nested dict of every scalar metric value —
        ``{name: {"k=v,k=v": value}}`` — for dumps and equality probes."""
        out: dict[str, dict] = {}
        for name in sorted(self._metrics):
            kind, family = self._metrics[name]
            view: dict[str, object] = {}
            for key in sorted(family):
                label_str = ",".join(f"{k}={v}" for k, v in key)
                m = family[key]
                if kind is Histogram:
                    view[label_str] = {"count": m.count, "sum": m.sum}
                else:
                    view[label_str] = m.value
            out[name] = view
        return out
