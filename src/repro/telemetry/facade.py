"""The :class:`Telemetry` facade — the one observability surface.

A :class:`~repro.runtime.system.System` owns exactly one ``Telemetry``;
everything the pre-telemetry ad-hoc API scattered (the removed
``System.trace`` / ``on_trace`` / ``trace_net_stats`` / ``trace_log``)
goes through it:

* ``emit(kind, node, parent=..., **attrs)`` — structured trace events
  with causal parent links, into a bounded ring buffer;
* ``span(kind, node)`` — a context manager measuring a simulated-time
  duration (rendered as a complete slice by the Chrome exporter);
* ``counter`` / ``gauge`` / ``histogram`` — the metrics registry;
* ``export(fmt)`` — JSONL or Chrome trace-event output.

A disabled facade (``Telemetry(enabled=False)`` or
``System(..., telemetry=False)``) keeps the metrics registry (plain
integer counters, as cheap as the pre-telemetry ``Network.stats``) but
turns every ``emit`` into an immediate return — the near-zero-overhead
path benchmarks use for clean timing runs.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable

from .events import TraceEvent
from .metrics import DEFAULT_TIME_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from .sinks import RingBufferSink, chrome_json, to_jsonl

#: upper bound on remembered msg_id -> send-event links; FIFO-evicted
#: (message ids are monotonic, old ids stop being referenced once their
#: retransmission budget is exhausted)
_MSG_LINK_WINDOW = 65536


class _Span:
    __slots__ = ("_tel", "kind", "node", "parent", "attrs", "t0", "event")

    def __init__(self, tel: "Telemetry", kind: str, node: str, parent, attrs: dict):
        self._tel = tel
        self.kind = kind
        self.node = node
        self.parent = parent
        self.attrs = attrs
        self.t0 = 0.0
        self.event: int | None = None

    def __enter__(self) -> "_Span":
        self.t0 = self._tel.now
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        attrs = dict(self.attrs)
        attrs["dur"] = self._tel.now - self.t0
        if exc is not None:
            attrs["error"] = repr(exc)
        self.event = self._tel.emit(
            self.kind, self.node, parent=self.parent, t=self.t0, **attrs
        )


class Telemetry:
    """Structured tracing + metrics for one running system."""

    def __init__(
        self,
        clock=None,
        *,
        enabled: bool = True,
        capacity: int = 65536,
        registry: MetricsRegistry | None = None,
    ):
        #: anything with a ``now`` attribute (a Simulator); settable
        #: after construction so a Telemetry can be built first
        self.clock = clock
        self.enabled = enabled
        #: name of the execution engine driving the owning system
        #: (``"sim"`` / ``"realtime"``); stamped by ``System.__init__``
        #: and carried into every exported trace line
        self.engine: str | None = None
        self.events = RingBufferSink(capacity)
        self.metrics = registry if registry is not None else MetricsRegistry()
        self._seq = 0
        self._hooks: list[Callable[[dict], None]] = []
        self._msg_events: dict[int, int] = {}

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now if self.clock is not None else 0.0

    # -- events -------------------------------------------------------------

    def emit(
        self,
        kind: str,
        node: str,
        parent: int | None = None,
        t: float | None = None,
        **attrs,
    ) -> int | None:
        """Record an event; returns its sequence number (the handle
        child events pass as ``parent``), or ``None`` when disabled."""
        if not self.enabled:
            return None
        self._seq += 1
        ev = TraceEvent(
            self._seq,
            self.now if t is None else t,
            kind,
            node,
            parent,
            attrs or None,
        )
        self.events.append(ev)
        if self._hooks:
            rec = ev.legacy()
            for hook in self._hooks:
                hook(rec)
        return self._seq

    def span(self, kind: str, node: str, parent: int | None = None, **attrs) -> _Span:
        """Measure a simulated-time duration::

            with telemetry.span("checkpoint", "b1::j"):
                ...
        """
        return _Span(self, kind, node, parent, attrs)

    def on_emit(self, hook: Callable[[dict], None]) -> None:
        """Register a live subscriber; called with each event's legacy
        dict view as it is emitted."""
        self._hooks.append(hook)

    # -- causal message links ----------------------------------------------

    def bind_message(self, msg_id: int, event: int | None) -> None:
        """Link an outbound message id to its ``send`` event, so the
        transport/delivery/receiver sides can parent their events to
        it."""
        if not self.enabled or event is None or msg_id == 0:
            return
        self._msg_events[msg_id] = event
        if len(self._msg_events) > _MSG_LINK_WINDOW:
            # FIFO eviction: dict preserves insertion order
            self._msg_events.pop(next(iter(self._msg_events)))

    def message_event(self, msg_id: int) -> int | None:
        return self._msg_events.get(msg_id)

    # -- metrics ------------------------------------------------------------

    def counter(self, name: str, **labels) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] = DEFAULT_TIME_BUCKETS, **labels
    ) -> Histogram:
        return self.metrics.histogram(name, buckets, **labels)

    # -- export -------------------------------------------------------------

    def export(self, fmt: str = "jsonl", path=None, label: str = "system") -> str:
        """Serialize retained events (``fmt``: ``jsonl`` | ``chrome``);
        writes to ``path`` when given, always returns the text."""
        if fmt == "jsonl":
            out = to_jsonl(self.events, engine=self.engine)
        elif fmt == "chrome":
            out = chrome_json([(label, self.events)], engine=self.engine)
        else:
            raise ValueError(f"unknown export format {fmt!r} (expected jsonl|chrome)")
        if path is not None:
            with open(path, "w") as f:
                f.write(out)
        return out


# ---------------------------------------------------------------------------
# Capture: collect the telemetry of systems created inside a scope
# (used by the ``repro trace`` CLI to trace unmodified example scripts)
# ---------------------------------------------------------------------------

_capture_stack: list[list[Telemetry]] = []


def note_system(telemetry: Telemetry) -> None:
    """Called by ``System.__init__``; registers the system's telemetry
    with the innermost active capture scope (no-op otherwise)."""
    if _capture_stack:
        telemetry.enabled = True
        _capture_stack[-1].append(telemetry)


@contextmanager
def capture_systems():
    """Collect the :class:`Telemetry` of every ``System`` constructed
    inside the ``with`` block (forcing them enabled)::

        with capture_systems() as captured:
            runpy.run_path("examples/redis_sharding.py", ...)
        for tel in captured: ...
    """
    captured: list[Telemetry] = []
    _capture_stack.append(captured)
    try:
        yield captured
    finally:
        _capture_stack.pop()


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Telemetry",
    "capture_systems",
    "note_system",
]
