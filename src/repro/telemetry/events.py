"""Structured trace events with causal parent links.

A :class:`TraceEvent` records one observable runtime activity at a
simulated timestamp.  Events form a *forest*: each event may name a
causal parent (by sequence number), so a trace is a concrete event
structure in the sense of the paper's sec. 8 semantics
(:mod:`repro.semantics.events`) — the causality relation ``<`` of the
abstract semantics becomes the transitive closure of ``parent`` links
over the events the runtime actually emitted.

The emitted causal chain mirrors one remote update end to end::

    attempt ──> sched ──> send ──┬──> retransmit*
                                 ├──> apply | dedup   (receiver side)
                                 ├──> drop*           (transport)
                                 └──> ack             (sender side)

Event kinds and their attributes are documented in
``docs/OBSERVABILITY.md``.  Everything in an event is deterministic
under a fixed seed: sequence numbers are per-:class:`~repro.telemetry.facade.Telemetry`
counters and timestamps are simulated time, so exporting the same run
twice yields byte-identical output.
"""

from __future__ import annotations


class TraceEvent:
    """One structured trace event.

    ``seq`` is unique within its emitting :class:`Telemetry`;
    ``parent`` is the ``seq`` of the causal parent event or ``None``;
    ``attrs`` carries kind-specific payload (kept as the keyword
    arguments given to ``emit``).
    """

    __slots__ = ("seq", "time", "kind", "node", "parent", "attrs")

    def __init__(
        self,
        seq: int,
        time: float,
        kind: str,
        node: str,
        parent: int | None = None,
        attrs: dict | None = None,
    ):
        self.seq = seq
        self.time = time
        self.kind = kind
        self.node = node
        self.parent = parent
        self.attrs = attrs or {}

    def legacy(self) -> dict:
        """The pre-telemetry ``System.trace`` record shape (kept for
        ``on_emit`` hooks written against that dict layout)."""
        return {"time": self.time, "kind": self.kind, "node": self.node, **self.attrs}

    def record(self) -> dict:
        """Full structured view (what the JSONL exporter serializes)."""
        rec = {
            "seq": self.seq,
            "time": self.time,
            "kind": self.kind,
            "node": self.node,
            "parent": self.parent,
        }
        rec.update(self.attrs)
        return rec

    def __repr__(self) -> str:  # pragma: no cover
        p = f" parent={self.parent}" if self.parent is not None else ""
        return f"<TraceEvent #{self.seq} t={self.time:.6f} {self.kind} {self.node}{p}>"
