"""The workload description: one frozen dataclass, fully seeded.

A :class:`WorkloadSpec` is a *pure value*: everything the generators
produce is a deterministic function of it.  That is what makes the
suite usable as a regression stressor — two runs of the same spec are
byte-identical at the schedule level, and identical end to end on the
sim engine.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

PATTERNS = ("steady", "diurnal", "flash-crowd")
MODES = ("open", "closed")


@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded workload.

    ``users`` is the *population* keys are drawn from (zipf-skewed), not
    an op count: a million-user spec still materializes at most
    ``max_ops`` operations, it just draws their keys from a
    million-rank zipf.  ``rate`` is the pattern's *mean* arrival rate
    (ops per logical second) for the open loop; ``concurrency`` is the
    outstanding-ops window for the closed loop.
    """

    seed: int = 0
    users: int = 10_000
    pattern: str = "steady"
    mode: str = "open"
    rate: float = 200.0
    concurrency: int = 8
    duration: float = 10.0
    max_ops: int = 2000
    zipf_s: float = 1.1
    value_size: int = 64
    read_fraction: float = 0.3

    def __post_init__(self):
        if self.pattern not in PATTERNS:
            raise ValueError(f"pattern must be one of {PATTERNS}, got {self.pattern!r}")
        if self.mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {self.mode!r}")
        if self.users <= 0:
            raise ValueError(f"users must be positive, got {self.users}")
        if self.rate <= 0:
            raise ValueError(f"rate must be positive, got {self.rate}")
        if self.concurrency <= 0:
            raise ValueError(f"concurrency must be positive, got {self.concurrency}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.max_ops <= 0:
            raise ValueError(f"max_ops must be positive, got {self.max_ops}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(f"read_fraction must be in [0, 1], got {self.read_fraction}")
        if self.zipf_s <= 0:
            raise ValueError(f"zipf_s must be positive, got {self.zipf_s}")

    def as_dict(self) -> dict:
        return asdict(self)
