"""Driving a materialized workload through a shipped architecture.

An *adapter* wraps one architecture behind a uniform submit surface
(`submit(event, on_done(ok))`), so the same schedule drives the broker,
the sharded store, or the fail-over store interchangeably.  The driver
builds the service under ``default_engine`` — the spec decides sim,
realtime or cluster — and runs the schedule either open-loop (arrivals
land at their generated times via ``clock.call_after``) or closed-loop
(a fixed window of outstanding ops, each completion admitting the
next).

The resulting :class:`WorkloadReport` carries the throughput and
latency shape (ops/sec, p50/p99) plus three digests:

* ``schedule_digest`` — the generated schedule (engine-independent);
* ``completion_digest`` — per-op outcomes and simulated latencies;
* ``telemetry_digest`` — the system's exported JSONL trace.

On the sim engine all three are deterministic functions of
(spec, arch): two runs of ``repro workload`` print identical digests.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from .generators import Event, materialize, schedule_digest
from .spec import WorkloadSpec

#: grace period (logical seconds) for in-flight ops after the last arrival
DRAIN_GRACE = 30.0

#: partitions/shards the standard adapters deploy
N_BACKENDS = 4


@dataclass
class Adapter:
    """One architecture behind the uniform submit surface."""

    name: str
    service: object
    system: object
    submit: Callable[[Event, Callable[[bool], None]], None]


def _value_for(event: Event, size: int) -> bytes:
    raw = event.key.encode()
    return (raw * (size // len(raw) + 1))[:size]


def _build_broker_sharded(spec: WorkloadSpec) -> Adapter:
    from ..arch.broker import ShardedBroker
    from ..brokerlite import BrokerRequest, partition_for

    svc = ShardedBroker(n_partitions=N_BACKENDS, seed=spec.seed)

    def submit(event: Event, on_done: Callable[[bool], None]) -> None:
        if event.op == "write":
            req = BrokerRequest(
                op="PUB", partition=0, key=event.key,
                value=_value_for(event, spec.value_size),
            )
        else:
            req = BrokerRequest(
                op="FETCH", partition=partition_for(event.key, N_BACKENDS),
                offset=0, max_records=8,
            )
        svc.submit(req, lambda reply: on_done(reply.ok))

    return Adapter("broker_sharded", svc, svc.system, submit)


def _build_broker_failover(spec: WorkloadSpec) -> Adapter:
    from ..arch.broker import ReplicatedBroker
    from ..brokerlite import BrokerRequest, partition_for

    svc = ReplicatedBroker(n_partitions=N_BACKENDS, seed=spec.seed, timeout=0.5)

    def submit(event: Event, on_done: Callable[[bool], None]) -> None:
        if event.op == "write":
            req = BrokerRequest(
                op="PUB", partition=0, key=event.key,
                value=_value_for(event, spec.value_size),
            )
        else:
            req = BrokerRequest(
                op="FETCH", partition=partition_for(event.key, N_BACKENDS),
                offset=0, max_records=8,
            )
        svc.submit(req, lambda reply: on_done(reply.ok))

    return Adapter("broker_failover", svc, svc.system, submit)


def _build_sharding(spec: WorkloadSpec) -> Adapter:
    from ..arch.sharding import ShardedRedis
    from ..redislite import Command

    svc = ShardedRedis(n_shards=N_BACKENDS, seed=spec.seed)

    def submit(event: Event, on_done: Callable[[bool], None]) -> None:
        if event.op == "write":
            cmd = Command("SET", event.key, _value_for(event, spec.value_size))
        else:
            cmd = Command("GET", event.key)
        svc.submit(cmd, lambda reply: on_done(bool(reply.ok)))

    return Adapter("sharding", svc, svc.system, submit)


def _build_failover(spec: WorkloadSpec) -> Adapter:
    from ..arch.failover import FailoverRedis
    from ..redislite import Command

    svc = FailoverRedis(seed=spec.seed, timeout=0.5)

    def submit(event: Event, on_done: Callable[[bool], None]) -> None:
        if event.op == "write":
            cmd = Command("SET", event.key, _value_for(event, spec.value_size))
        else:
            cmd = Command("GET", event.key)
        svc.submit(cmd, lambda reply: on_done(bool(reply.ok)))

    return Adapter("failover", svc, svc.system, submit)


ADAPTERS: dict[str, Callable[[WorkloadSpec], Adapter]] = {
    "broker_sharded": _build_broker_sharded,
    "broker_failover": _build_broker_failover,
    "sharding": _build_sharding,
    "failover": _build_failover,
}


@dataclass
class WorkloadReport:
    arch: str
    engine: str
    spec: WorkloadSpec
    ops_submitted: int
    ops_completed: int
    ops_failed: int
    ops_dropped: int
    logical_seconds: float
    wall_seconds: float
    ops_per_sec: float
    p50_ms: float
    p99_ms: float
    schedule_digest: str
    completion_digest: str
    telemetry_digest: str
    latencies: list = field(default_factory=list, repr=False)

    @property
    def digest(self) -> str:
        """One combined digest for run-to-run comparisons."""
        h = hashlib.sha256()
        for d in (self.schedule_digest, self.completion_digest, self.telemetry_digest):
            h.update(d.encode())
        return h.hexdigest()

    def as_dict(self) -> dict:
        return {
            "arch": self.arch,
            "engine": self.engine,
            "spec": self.spec.as_dict(),
            "ops_submitted": self.ops_submitted,
            "ops_completed": self.ops_completed,
            "ops_failed": self.ops_failed,
            "ops_dropped": self.ops_dropped,
            "logical_seconds": self.logical_seconds,
            "wall_seconds": self.wall_seconds,
            "ops_per_sec": self.ops_per_sec,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "schedule_digest": self.schedule_digest,
            "completion_digest": self.completion_digest,
            "telemetry_digest": self.telemetry_digest,
            "digest": self.digest,
        }


def _percentile(sorted_vals: list[float], q: float) -> float:
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, int(q * len(sorted_vals)))
    return sorted_vals[idx]


def drive(adapter: Adapter, spec: WorkloadSpec, events: list[Event]) -> list[tuple]:
    """Run the schedule against a built adapter; returns the completion
    records ``(index, ok, start, end)`` in completion order.  Ops still
    in flight at the extended horizon are dropped (absent from the
    result)."""
    system = adapter.system
    base = system.now
    completions: list[tuple] = []
    pending: dict[int, float] = {}
    queue = deque(events)

    def submit_one(event: Event) -> None:
        pending[event.index] = system.now

        def done(ok: bool, idx=event.index) -> None:
            start = pending.pop(idx)
            completions.append((idx, bool(ok), start - base, system.now - base))
            if spec.mode == "closed" and queue:
                submit_one(queue.popleft())

        adapter.submit(event, done)

    if spec.mode == "open":
        while queue:
            ev = queue.popleft()
            system.clock.call_after(ev.t, lambda ev=ev: submit_one(ev))
    else:
        for _ in range(min(spec.concurrency, len(queue))):
            submit_one(queue.popleft())

    horizon = base + spec.duration + DRAIN_GRACE
    system.run_until(base + spec.duration)
    while (pending or queue) and system.now < horizon:
        system.run_until(min(horizon, system.now + 1.0))
    return completions


def run_workload(
    spec: WorkloadSpec,
    arch: str = "broker_sharded",
    engine="sim",
    *,
    shutdown: bool = True,
) -> WorkloadReport:
    """Materialize the spec, build ``arch`` under ``engine`` and drive
    the schedule; returns the :class:`WorkloadReport`."""
    from ..runtime.engine import EngineSpec, default_engine

    try:
        builder = ADAPTERS[arch]
    except KeyError:
        raise KeyError(
            f"no workload adapter for {arch!r}; have {sorted(ADAPTERS)}"
        ) from None
    espec = EngineSpec.of(engine) if isinstance(engine, str) else engine
    events = materialize(spec)

    wall0 = time.perf_counter()
    with default_engine(espec):
        adapter = builder(spec)
    system = adapter.system
    base = system.now
    completions = drive(adapter, spec, events)
    wall = time.perf_counter() - wall0

    ok_lat = sorted(end - start for _, ok, start, end in completions if ok)
    completed = sum(1 for _, ok, _, _ in completions if ok)
    failed = len(completions) - completed
    dropped = len(events) - len(completions)
    elapsed = max(system.now - base, 1e-9)

    ch = hashlib.sha256()
    for rec in completions:
        ch.update(repr(rec).encode())
        ch.update(b"\n")
    th = hashlib.sha256(system.telemetry.export("jsonl").encode())

    report = WorkloadReport(
        arch=arch,
        engine=espec.name,
        spec=spec,
        ops_submitted=len(events),
        ops_completed=completed,
        ops_failed=failed,
        ops_dropped=dropped,
        logical_seconds=elapsed,
        wall_seconds=wall,
        ops_per_sec=completed / elapsed,
        p50_ms=_percentile(ok_lat, 0.50) * 1e3,
        p99_ms=_percentile(ok_lat, 0.99) * 1e3,
        schedule_digest=schedule_digest(events),
        completion_digest=ch.hexdigest(),
        telemetry_digest=th.hexdigest(),
        latencies=ok_lat,
    )
    if shutdown:
        system.shutdown()
    return report
