"""Seeded workload generation: traffic shaped like millions of users.

The ROADMAP's north star asks for workloads "shaped like millions of
distinct users"; this package is the deterministic generator layer that
produces them and the driver that pushes them through any shipped
architecture on any engine (sim, realtime, cluster) via the engine
seam.

* :mod:`~repro.workload.spec` — :class:`WorkloadSpec`, the immutable
  description (seed, user population, arrival pattern, loop mode, …);
* :mod:`~repro.workload.generators` — zipf key skew over the user
  population, arrival curves (steady / diurnal / flash-crowd) realized
  by Lewis-Shedler thinning, and :func:`materialize`, which turns a
  spec into a concrete, digestable event schedule;
* :mod:`~repro.workload.driver` — per-architecture adapters and
  :func:`run_workload`, which builds the service under
  ``default_engine``, drives the schedule open- or closed-loop, and
  returns a :class:`WorkloadReport` (ops/sec, p50/p99, drops, digests).

Everything downstream of the seed is deterministic: the same spec
materializes byte-identical schedules, and on the sim engine the same
(spec, arch) pair reproduces the same telemetry digest run after run.
"""

from .driver import ADAPTERS, WorkloadReport, run_workload
from .generators import ZipfSampler, materialize, schedule_digest
from .spec import PATTERNS, WorkloadSpec

__all__ = [
    "ADAPTERS",
    "PATTERNS",
    "WorkloadReport",
    "WorkloadSpec",
    "ZipfSampler",
    "materialize",
    "run_workload",
    "schedule_digest",
]
