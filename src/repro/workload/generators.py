"""Deterministic load generation: zipf key skew + shaped arrivals.

All randomness flows from one ``random.Random(spec.seed)``; nothing
reads the wall clock or global RNG state, so :func:`materialize` is a
pure function of the spec — the property the generator determinism
tests pin down (same seed ⇒ byte-identical schedules).

Key skew
    :class:`ZipfSampler` draws user ranks from a zipf(s) distribution
    over the full population via inverse-transform sampling on a
    cumulative weight table (an ``array('d')``, so a million-user
    population costs ~8 MB and half a second to build, once).

Arrival curves
    Open-loop arrival times realize an inhomogeneous Poisson process by
    Lewis-Shedler thinning: candidates are generated at the pattern's
    peak rate and accepted with probability ``rate(t)/peak``.  The
    three patterns (mean rate ``r``, duration ``D``):

    * ``steady`` — constant ``r``;
    * ``diurnal`` — ``r·(0.2 + 1.6·sin²(πt/D))``: one synthetic "day"
      with a trough at both ends and a noon peak of ``1.8r`` (mean
      exactly ``r``);
    * ``flash-crowd`` — baseline ``0.5r`` with a ``6r`` spike over
      ``[0.4D, 0.5D)`` (mean ``1.05r``): the thundering-herd shape.
"""

from __future__ import annotations

import hashlib
import math
from array import array
from bisect import bisect_left
from dataclasses import dataclass
from random import Random

from .spec import WorkloadSpec


class ZipfSampler:
    """Inverse-transform zipf(s) sampling over ranks ``0..n-1``.

    Rank 0 is the hottest user.  ``sample(rng)`` consumes exactly one
    uniform draw, so generator streams stay reproducible when other
    draws interleave.
    """

    def __init__(self, n: int, s: float = 1.1):
        if n <= 0:
            raise ValueError(f"population must be positive, got {n}")
        self.n = n
        self.s = s
        cum = array("d", bytes(8 * n))
        total = 0.0
        for i in range(n):
            total += 1.0 / (i + 1) ** s
            cum[i] = total
        self._cum = cum
        self._total = total

    def probability(self, rank: int) -> float:
        """The exact pmf at ``rank`` (0-based)."""
        return (1.0 / (rank + 1) ** self.s) / self._total

    def sample(self, rng: Random) -> int:
        return bisect_left(self._cum, rng.random() * self._total)


def rate_at(t: float, spec: WorkloadSpec) -> float:
    """The instantaneous arrival rate of the spec's pattern at ``t``."""
    r, d = spec.rate, spec.duration
    if spec.pattern == "steady":
        return r
    if spec.pattern == "diurnal":
        return r * (0.2 + 1.6 * math.sin(math.pi * t / d) ** 2)
    # flash-crowd
    if 0.4 * d <= t < 0.5 * d:
        return 6.0 * r
    return 0.5 * r


def peak_rate(spec: WorkloadSpec) -> float:
    """A tight upper bound on :func:`rate_at` for thinning."""
    if spec.pattern == "steady":
        return spec.rate
    if spec.pattern == "diurnal":
        return 1.8 * spec.rate
    return 6.0 * spec.rate


def arrival_times(spec: WorkloadSpec, rng: Random) -> list[float]:
    """Open-loop arrival times over ``[0, duration)`` by thinning,
    capped at ``max_ops``."""
    peak = peak_rate(spec)
    out: list[float] = []
    t = 0.0
    while len(out) < spec.max_ops:
        t += rng.expovariate(peak)
        if t >= spec.duration:
            break
        if rng.random() * peak < rate_at(t, spec):
            out.append(t)
    return out


@dataclass(frozen=True)
class Event:
    """One generated operation.  ``t`` is the open-loop arrival time
    (``None`` in closed-loop schedules, where submission is completion-
    driven); ``user`` is the zipf rank drawn from the population."""

    index: int
    t: float | None
    op: str  # 'write' | 'read'
    user: int
    key: str

    def as_list(self) -> list:
        return [self.index, self.t, self.op, self.user, self.key]


def user_key(user: int) -> str:
    return f"u{user:07d}"


def materialize(spec: WorkloadSpec) -> list[Event]:
    """The spec's concrete schedule: a deterministic function of the
    spec alone.  Closed-loop schedules carry ``max_ops`` events with no
    arrival times; open-loop schedules carry one event per thinned
    arrival (≤ ``max_ops``)."""
    rng = Random(spec.seed)
    zipf = ZipfSampler(spec.users, spec.zipf_s)
    if spec.mode == "open":
        times: list[float | None] = list(arrival_times(spec, rng))
    else:
        times = [None] * spec.max_ops
    events = []
    for i, t in enumerate(times):
        user = zipf.sample(rng)
        op = "read" if rng.random() < spec.read_fraction else "write"
        events.append(Event(index=i, t=t, op=op, user=user, key=user_key(user)))
    return events


def schedule_digest(events: list[Event]) -> str:
    """sha256 over the schedule's canonical byte form — the generator
    determinism tests compare this across runs and entry points."""
    h = hashlib.sha256()
    for ev in events:
        h.update(repr(ev.as_list()).encode())
        h.update(b"\n")
    return h.hexdigest()
