"""The brokerlite server: command execution with a service-time model.

A :class:`BrokerServer` is the application object C-Saw instances wrap
in the broker architectures.  It hosts a set of partitions (the
partitioned log is spread across instances; each server holds the
partitions routed to it) and executes :class:`BrokerRequest` commands,
reporting a simulated CPU cost per command so host blocks can
``ctx.take(cost)`` — the same embedding contract as
:class:`~repro.redislite.server.RedisServer`.

Commands:

* ``PUB partition key value`` — append to the partition's log; replies
  with the assigned offset.
* ``FETCH partition offset [max]`` — read up to ``max`` records from
  ``offset``; replies with the records (wire-shaped lists) and the
  partition's high-water mark.
* ``COMMIT group partition offset`` — record a consumer group's
  committed offset for a partition (monotone: a stale commit below the
  current mark is acknowledged but does not move it).
* ``OFFSET group partition`` — read the committed offset (0 when the
  group never committed).

The cost model is deliberately simple and documented: a fixed
per-command dispatch cost plus per-byte payload costs — enough for the
workload suite's throughput/latency shapes without pretending to be
cycle-accurate.
"""

from __future__ import annotations

from dataclasses import dataclass

from .log import PartitionLog, Record


@dataclass(frozen=True)
class BrokerRequest:
    """A client command.  ``op`` in {PUB, FETCH, COMMIT, OFFSET}."""

    op: str
    partition: int
    key: str = ""
    value: bytes = b""
    offset: int = 0
    max_records: int = 64
    group: str = ""

    def payload_size(self) -> int:
        return len(self.value)


@dataclass(frozen=True)
class BrokerReply:
    ok: bool
    offset: int | None = None       # PUB: assigned; COMMIT/OFFSET: committed
    records: list | None = None     # FETCH: wire-shaped record lists
    high_water: int | None = None   # FETCH: partition next_offset


@dataclass
class BrokerCostModel:
    """Simulated CPU costs (seconds)."""

    per_command: float = 80e-6   # dispatch + parse + respond
    per_byte: float = 0.002e-6   # payload handling (in and out)
    per_record: float = 2e-6     # per record touched by a fetch
    transfer_per_record: float = 3e-6  # re-partitioning move cost


class BrokerServer:
    """One broker node: the partitions routed to it, plus the committed
    offsets of consumer groups on those partitions."""

    def __init__(self, name: str = "broker", cost: BrokerCostModel | None = None):
        self.name = name
        self.cost = cost or BrokerCostModel()
        self.partitions: dict[int, PartitionLog] = {}
        #: (group, partition) -> committed offset
        self.commits: dict[tuple[str, int], int] = {}
        self.commands_executed = 0

    # -- partition hosting ---------------------------------------------------

    def partition(self, p: int) -> PartitionLog:
        """The hosted partition ``p`` (created on first touch — the
        router decides placement; the server just stores)."""
        log = self.partitions.get(p)
        if log is None:
            log = self.partitions[p] = PartitionLog(p)
        return log

    def partition_sizes(self) -> dict[int, int]:
        return {p: log.size() for p, log in sorted(self.partitions.items())}

    def records_stored(self) -> int:
        return sum(log.size() for log in self.partitions.values())

    # -- command execution ---------------------------------------------------

    def execute(self, req: BrokerRequest, now: float = 0.0) -> tuple[BrokerReply, float]:
        """Execute ``req``; returns (reply, simulated CPU cost)."""
        self.commands_executed += 1
        cost = self.cost.per_command + req.payload_size() * self.cost.per_byte
        op = req.op.upper()
        if op == "PUB":
            offset = self.partition(req.partition).append(req.key, req.value, ts=now)
            return BrokerReply(ok=True, offset=offset), cost
        if op == "FETCH":
            log = self.partition(req.partition)
            records = log.read(req.offset, req.max_records)
            cost += len(records) * self.cost.per_record
            cost += sum(len(r.value) for r in records) * self.cost.per_byte
            return BrokerReply(
                ok=True,
                records=[r.as_list() for r in records],
                high_water=log.next_offset,
            ), cost
        if op == "COMMIT":
            k = (req.group, req.partition)
            committed = max(self.commits.get(k, 0), req.offset)
            self.commits[k] = committed
            return BrokerReply(ok=True, offset=committed), cost
        if op == "OFFSET":
            return BrokerReply(
                ok=True, offset=self.commits.get((req.group, req.partition), 0)
            ), cost
        return BrokerReply(ok=False), cost

    # -- re-partitioning -----------------------------------------------------

    def drain_records(self) -> tuple[list[Record], float]:
        """Take every hosted record (oldest partition first, offset
        order within a partition) and the cost of moving them — the
        state-transfer half of a partition-count change."""
        out: list[Record] = []
        for p in sorted(self.partitions):
            out.extend(self.partitions[p].records)
        cost = len(out) * self.cost.transfer_per_record
        self.partitions = {}
        return out, cost

    def snapshot(self) -> dict:
        return {
            "name": self.name,
            "partitions": {p: log.snapshot() for p, log in self.partitions.items()},
            "commits": {f"{g}\x00{p}": off for (g, p), off in self.commits.items()},
        }

    def restore(self, snap: dict) -> None:
        self.partitions = {}
        for p, recs in snap["partitions"].items():
            log = self.partition(int(p))
            log.restore(recs)
        self.commits = {}
        for gp, off in snap["commits"].items():
            g, _, p = gp.partition("\x00")
            self.commits[(g, int(p))] = off
