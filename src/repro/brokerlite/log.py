"""The partitioned append-only log.

A :class:`PartitionLog` is one partition: a list of immutable
:class:`Record` objects addressed by a dense offset sequence starting
at 0.  Appends are totally ordered within a partition; reads are
offset-addressed ranges.  Keys map to partitions by djb2 hash
(:func:`partition_for`) — the same hash the sharding architectures use
for key routing, so "which instance owns this key" and "which
partition holds this key" agree by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..redislite.workload import djb2


def partition_for(key: str, n_partitions: int) -> int:
    """The partition a key's records land in (djb2 mod N)."""
    if n_partitions <= 0:
        raise ValueError(f"n_partitions must be positive, got {n_partitions}")
    return djb2(key) % n_partitions


@dataclass(frozen=True)
class Record:
    """One log entry.  ``offset`` is dense per partition."""

    offset: int
    key: str
    value: bytes
    ts: float = 0.0

    def as_list(self) -> list:
        """Wire form: a plain list so serde framing round-trips it
        unchanged across the TCP and cluster transports."""
        return [self.offset, self.key, self.value, self.ts]

    @classmethod
    def from_list(cls, rec: list) -> "Record":
        return cls(offset=rec[0], key=rec[1], value=rec[2], ts=rec[3])


class PartitionLog:
    """A single append-only partition."""

    def __init__(self, partition: int):
        self.partition = partition
        self.records: list[Record] = []

    @property
    def next_offset(self) -> int:
        return len(self.records)

    def append(self, key: str, value: bytes, ts: float = 0.0) -> int:
        """Append a record; returns its offset."""
        rec = Record(offset=self.next_offset, key=key, value=value, ts=ts)
        self.records.append(rec)
        return rec.offset

    def read(self, offset: int, max_records: int = 64) -> list[Record]:
        """Records from ``offset`` (inclusive), at most ``max_records``."""
        if offset < 0:
            raise ValueError(f"negative offset {offset}")
        if max_records <= 0:
            return []
        return self.records[offset:offset + max_records]

    def size(self) -> int:
        return len(self.records)

    def bytes_stored(self) -> int:
        return sum(len(r.value) for r in self.records)

    def snapshot(self) -> list[list]:
        return [r.as_list() for r in self.records]

    def restore(self, snap: list[list]) -> None:
        self.records = [Record.from_list(rec) for rec in snap]
