"""Consumer-group coordination: membership and partition assignment.

A :class:`GroupCoordinator` tracks the members of one consumer group
and deterministically assigns partitions to members with the *range*
strategy (sorted members, contiguous partition slices — the Kafka
default).  Every membership change bumps the group **generation** and
recomputes the assignment; a fetch presented with a stale generation is
the classic zombie-consumer hazard, which callers detect by comparing
generations.

Committed offsets live with the partition owner (the
:class:`~repro.brokerlite.broker.BrokerServer` hosting the partition),
not here: the coordinator decides *who may consume what*, the owner
records *how far they got* — mirroring how the broker architectures
split routing (DSL) from storage (substrate).
"""

from __future__ import annotations


class GroupCoordinator:
    """Membership + deterministic range assignment for one group."""

    def __init__(self, group: str, n_partitions: int):
        if n_partitions <= 0:
            raise ValueError(f"n_partitions must be positive, got {n_partitions}")
        self.group = group
        self.n_partitions = n_partitions
        self.members: list[str] = []
        self.generation = 0
        self.assignment: dict[str, list[int]] = {}
        self.rebalances = 0

    def join(self, member: str) -> int:
        """Add a member (idempotent); returns the new generation."""
        if member not in self.members:
            self.members.append(member)
            self._rebalance()
        return self.generation

    def leave(self, member: str) -> int:
        """Remove a member (idempotent); returns the new generation."""
        if member in self.members:
            self.members.remove(member)
            self._rebalance()
        return self.generation

    def resize(self, n_partitions: int) -> int:
        """Adopt a new partition count (a live re-partitioning) and
        rebalance the existing membership over it."""
        if n_partitions <= 0:
            raise ValueError(f"n_partitions must be positive, got {n_partitions}")
        if n_partitions != self.n_partitions:
            self.n_partitions = n_partitions
            self._rebalance()
        return self.generation

    def partitions_of(self, member: str) -> list[int]:
        return list(self.assignment.get(member, ()))

    def owner_of(self, partition: int) -> str | None:
        for member, parts in self.assignment.items():
            if partition in parts:
                return member
        return None

    def _rebalance(self) -> None:
        """Range assignment: sorted members get contiguous slices;
        the first ``n_partitions % len(members)`` members get one
        extra.  Deterministic in (members, n_partitions)."""
        self.generation += 1
        self.rebalances += 1
        self.assignment = {}
        members = sorted(self.members)
        if not members:
            return
        per, extra = divmod(self.n_partitions, len(members))
        start = 0
        for i, member in enumerate(members):
            count = per + (1 if i < extra else 0)
            self.assignment[member] = list(range(start, start + count))
            start += count
