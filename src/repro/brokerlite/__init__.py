"""brokerlite — a mini message-broker substrate.

The paper exercises C-Saw over three substrates (redislite, curlite,
suricatalite); brokerlite adds the workload shape none of them has: a
**partitioned append-only log** with offset-tracked **consumer
groups** — the natural stressor for the sharding and fail-over
architectures (every publish is a write that must land exactly once
and in order, every fetch is an offset-addressed read, and group
membership changes force a partition **rebalance**).

Like the other substrates, brokerlite is a host-language application
object: it executes :class:`BrokerRequest` commands against partition
logs and reports a simulated CPU cost per command, so DSL host blocks
can ``ctx.take(cost)`` and the discrete-event engines reproduce
throughput behaviour.
"""

from .broker import BrokerCostModel, BrokerReply, BrokerRequest, BrokerServer
from .groups import GroupCoordinator
from .log import PartitionLog, Record, partition_for

__all__ = [
    "BrokerCostModel",
    "BrokerReply",
    "BrokerRequest",
    "BrokerServer",
    "GroupCoordinator",
    "PartitionLog",
    "Record",
    "partition_for",
]
