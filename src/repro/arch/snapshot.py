"""Remote snapshots (Fig. 4) wired to curlite — the remote-auditing
re-architecture of cURL (use-cases ② and ③, evaluated in Figs. 25a/b
and 26a).

``Act`` is the transfer client's side; ``Aud`` the remote audit log.
The curlite client's audit hook asserts ``SnapDue`` with the transfer
state; the DSL ships the snapshot to ``Aud`` and the ``H3`` host block
releases the transfer's barrier (integrity: the download does not
outrun its audit trail).

Same-VM vs cross-VM placement is a latency configuration: instances in
one VM exchange messages at ``same_vm_latency``; across VMs at
``cross_vm_latency`` (the paper ran both placements, Fig. 25a).
"""

from __future__ import annotations

from typing import Callable

from ..curlite.client import AuditHook
from ..runtime.engine import SimEngine
from ..runtime.system import System
from .loader import load_program

#: latencies for the two placements (seconds, one-way)
SAME_VM_LATENCY = 25e-6
CROSS_VM_LATENCY = 300e-6


class _ActApp:
    def __init__(self):
        self.pending_state: dict | None = None
        self.done_cb: Callable[[], None] | None = None
        self.snapshots_sent = 0
        self.complaints = 0


class _AudApp:
    def __init__(self):
        self.log: list[dict] = []

    def record(self, state: dict) -> None:
        self.log.append(state)


class RemoteAuditor:
    """A running remote-snapshot architecture; produces curlite hooks."""

    def __init__(
        self,
        *,
        placement: str = "cross-vm",  # 'same-vm' | 'cross-vm'
        timeout: float = 2.0,
        seed: int = 0,
        snapshot_cost: float = 15e-6,
        sim=None,
    ):
        if placement == "same-vm":
            latency = SAME_VM_LATENCY
        elif placement == "cross-vm":
            latency = CROSS_VM_LATENCY
        else:
            raise ValueError(f"unknown placement {placement!r}")
        self.placement = placement
        self.snapshot_cost = snapshot_cost
        self.program = load_program("remote_snapshot")
        self.system = System(
            self.program, latency=latency, seed=seed,
            engine=SimEngine(sim) if sim is not None else None,
        )
        sys_ = self.system

        self.act = _ActApp()
        self.aud = _AudApp()
        sys_.bind_app("Actual", lambda inst: self.act)
        sys_.bind_app("Auditing", lambda inst: self.aud)

        @sys_.host("Actual", "H1")
        def _h1(ctx):
            ctx.take(self.snapshot_cost)

        @sys_.host("Actual", "H3")
        def _h3(ctx):
            app: _ActApp = ctx.app
            app.snapshots_sent += 1
            cb, app.done_cb = app.done_cb, None
            if cb is not None:
                cb()

        @sys_.host("Actual", "Complain")
        def _complain(ctx):
            app: _ActApp = ctx.app
            app.complaints += 1
            # release the transfer even when auditing failed, so the
            # experiment can observe the failure rather than hang
            cb, app.done_cb = app.done_cb, None
            if cb is not None:
                cb()

        @sys_.host("Auditing", "H2")
        def _h2(ctx):
            ctx.take(5e-6)

        @sys_.host("Auditing", "Complain")
        def _aud_complain(ctx):
            pass

        sys_.bind_state(
            "Actual", data_name="n",
            save=lambda app, inst: app.pending_state,
            restore=lambda app, inst, obj: None,
        )
        sys_.bind_state(
            "Auditing", data_name="n",
            save=lambda app, inst: None,
            restore=lambda app, inst, obj: app.record(obj),
        )

        sys_.start(t=timeout)

    @property
    def sim(self):
        return self.system.sim

    def audit_hook(self) -> AuditHook:
        """An :data:`~repro.curlite.client.AuditHook` driving this
        architecture (barrier released by Act's H3)."""

        def hook(state: dict, done: Callable[[], None]) -> None:
            self.act.pending_state = state
            self.act.done_cb = done
            self.system.external_update("Act::junction", "SnapDue", True)

        return hook

    @property
    def audit_log(self) -> list[dict]:
        return self.aud.log
