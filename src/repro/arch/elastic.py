"""Elastic compute workers (extension; see ``dsl/elastic.csaw``).

Stateless jobs are load-balanced over however many worker instances are
currently running; :meth:`ElasticWorkers.scale_out` /
:meth:`scale_in` drive the DSL's ``scale`` junction, which starts or
stops worker instances from inside the architecture description.
"""

from __future__ import annotations

from typing import Callable

from ..runtime.system import System
from .loader import load_program
from .ports import BackApp, FrontApp

WORKERS = ("Wrk1", "Wrk2", "Wrk3", "Wrk4")


class _ElasticFront(FrontApp):
    def __init__(self, system: System, node: str):
        super().__init__(system, node)
        self.active: list[str] = ["Wrk1", "Wrk2"]
        self.rr = 0
        self.scale_plan: tuple[str, bool] | None = None  # (worker, out?)
        self.scale_done: Callable[[bool], None] | None = None
        self.scale_events: list[tuple[float, str, str]] = []
        #: in-flight jobs by id (results are delivered by the worker's
        #: host block — the dispatch is asynchronous)
        self.jobs: dict[int, Callable[[dict | None], None]] = {}
        self.next_id = 0


class ElasticWorkers:
    """A job service whose worker pool grows and shrinks at runtime."""

    def __init__(
        self,
        *,
        unit_cost: float = 1e-3,
        latency: float = 100e-6,
        timeout: float = 0.5,
        seed: int = 0,
    ):
        self.unit_cost = unit_cost
        self.program = load_program("elastic")
        self.system = System(self.program, latency=latency, seed=seed)
        sys_ = self.system

        self.front = _ElasticFront(sys_, "Fnt::route")
        sys_.bind_app("Front", lambda inst: self.front)
        sys_.bind_app("Worker", lambda inst: BackApp(inst.name))

        @sys_.host("Front", "Choose")
        def _choose(ctx):
            req = ctx.app.begin_next()
            if req is None:
                from ..core.errors import DslFailure

                raise DslFailure("elastic front scheduled with no job")
            app = ctx.app
            if not app.active:
                from ..core.errors import DslFailure

                raise DslFailure("no running workers")
            app.rr = (app.rr + 1) % len(app.active)
            ctx.set("tgt", app.active[app.rr])
            # dispatch is asynchronous: the route junction does not wait
            # for the result, so the next job can be chosen immediately
            app.current, app.current_done = app.current, None
            app._dispatched = app.current
            app._rearm()

        @sys_.host("Front", "Complain")
        def _complain(ctx):
            if ctx.junction == "route":
                # dispatch failed: fail the job that was being shipped
                job_id = (getattr(ctx.app, "_dispatched", None) or {}).get("id")
                cb = ctx.app.jobs.pop(job_id, None)
                if cb is not None:
                    cb(None)
                ctx.app.current = None
                ctx.app._rearm()
            elif ctx.app.scale_done is not None:
                cb, ctx.app.scale_done = ctx.app.scale_done, None
                cb(False)

        @sys_.host("Front", "PlanScale")
        def _plan(ctx):
            worker, out = ctx.app.scale_plan
            ctx.set("which", worker)
            ctx.set("Out", out)

        @sys_.host("Front", "Registered")
        def _registered(ctx):
            worker, _ = ctx.app.scale_plan
            ctx.app.active.append(worker)
            ctx.app.scale_events.append((ctx.now, "out", worker))
            if ctx.app.scale_done is not None:
                cb, ctx.app.scale_done = ctx.app.scale_done, None
                cb(True)

        @sys_.host("Front", "Deregistered")
        def _deregistered(ctx):
            worker, _ = ctx.app.scale_plan
            ctx.app.active.remove(worker)
            ctx.app.scale_events.append((ctx.now, "in", worker))
            if ctx.app.scale_done is not None:
                cb, ctx.app.scale_done = ctx.app.scale_done, None
                cb(True)

        @sys_.host("Worker", "Exec")
        def _exec(ctx):
            app: BackApp = ctx.app
            if app.current is None:
                return
            units = app.current.get("units", 1)
            ctx.take(units * self.unit_cost)
            app.executed += 1
            # deliver the result out of band (application-level), as
            # dispatch was asynchronous
            cb = self.front.jobs.pop(app.current.get("id"), None)
            if cb is not None:
                result = {"worker": app.payload, "units": units}
                ctx.system.sim.call_after(0.0, lambda r=result, c=cb: c(r))

        @sys_.host("Worker", "Complain")
        def _worker_complain(ctx):
            pass

        sys_.bind_state(
            "Front", data_name="n",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: None,
        )
        sys_.bind_state(
            "Worker", data_name="n",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: app.receive(obj),
        )
        sys_.start(t=timeout)

    @property
    def sim(self):
        return self.system.sim

    @property
    def active_workers(self) -> list[str]:
        return list(self.front.active)

    def running_workers(self) -> list[str]:
        return [w for w in WORKERS if self.system.instance(w).alive]

    # -- jobs -----------------------------------------------------------------

    def submit_job(self, units: int, on_done: Callable[[dict | None], None]) -> None:
        job_id = self.front.next_id
        self.front.next_id += 1
        self.front.jobs[job_id] = on_done
        self.front.submit({"units": units, "id": job_id}, lambda _r: None)

    # -- scaling ---------------------------------------------------------------

    def scale_out(self, on_done: Callable[[bool], None] | None = None) -> None:
        """Start the next spare worker (through the DSL)."""
        spare = [w for w in WORKERS if w not in self.front.active]
        if not spare:
            raise ValueError("no spare workers")
        self._scale(spare[0], out=True, on_done=on_done)

    def scale_in(self, on_done: Callable[[bool], None] | None = None) -> None:
        """Stop the most recently added worker (through the DSL)."""
        if len(self.front.active) <= 1:
            raise ValueError("refusing to scale below one worker")
        self._scale(self.front.active[-1], out=False, on_done=on_done)

    def _scale(self, worker: str, out: bool, on_done) -> None:
        self.front.scale_plan = (worker, out)
        self.front.scale_done = on_done
        self.system.external_update("Fnt::scale", "ScaleReq", True)
