"""The architecture library: the paper's DSL programs plus their
substrate integrations."""

from .caching import CachedRedis, LruCache
from .checkpointing import CheckpointedService
from .failover import FailoverRedis, FailoverService, FailoverSuricata, FastFailoverRedis
from .elastic import ElasticWorkers
from .migration import MigratableRedis
from .loader import ARCHITECTURES, backend_names, load_program, load_source
from .ports import BackApp, FrontApp
from .sharding import (
    ParallelShardedRedis,
    ShardedRedis,
    ShardedSuricata,
    five_tuple_chooser,
    key_hash_chooser,
    object_size_chooser,
)
from .snapshot import CROSS_VM_LATENCY, RemoteAuditor, SAME_VM_LATENCY
from .watched import WatchedRedis, WatchedService

__all__ = [
    "ARCHITECTURES",
    "BackApp",
    "CROSS_VM_LATENCY",
    "CachedRedis",
    "CheckpointedService",
    "ElasticWorkers",
    "FailoverRedis",
    "FailoverService",
    "FailoverSuricata",
    "FastFailoverRedis",
    "FrontApp",
    "LruCache",
    "MigratableRedis",
    "ParallelShardedRedis",
    "RemoteAuditor",
    "SAME_VM_LATENCY",
    "ShardedRedis",
    "ShardedSuricata",
    "WatchedRedis",
    "WatchedService",
    "backend_names",
    "five_tuple_chooser",
    "key_hash_chooser",
    "load_program",
    "load_source",
    "object_size_chooser",
]
