"""The fail-over architecture (sec. 7.3, Figs. 8-14) applied to
redislite and suricatalite.

Two warm back-end replicas execute every request; the front-end f fans
out to all registered back-ends and succeeds as long as one responds
within the timeout.  A timed-out back-end is deregistered; its
``reactivate`` watchdog junction later deactivates it and pokes
``startup``, which re-registers with ``f::b`` — the Fig. 8 loop.

The same architecture description runs over both substrates ("the same
logic is applied to both Redis and Suricata", sec. 7.3): only the host
``H2`` (execute a request) and the replica factory differ.
"""

from __future__ import annotations

import re
from typing import Callable

from ..core.compiler import CompiledProgram, compile_program
from ..redislite.server import Command, RedisServer, Reply
from ..runtime.faults import FaultPlan
from ..runtime.system import System
from .loader import load_program, load_source
from .ports import BackApp, FrontApp


def swap_backend_source(
    old_name: str = "b2",
    new_name: str = "b3",
    *,
    program_name: str = "failover",
) -> str:
    """The shipped fail-over source with one replica instance renamed —
    the canonical instance-swap reconfiguration target (retire ``b2``,
    bring up a fresh ``b3``)."""
    text = load_source(program_name)
    return re.sub(rf"\b{re.escape(old_name)}\b", new_name, text)


def swap_backend_program(
    old_name: str = "b2",
    new_name: str = "b3",
    *,
    program_name: str = "failover",
) -> CompiledProgram:
    return compile_program(swap_backend_source(old_name, new_name, program_name=program_name))


class _FoFrontApp(FrontApp):
    """Front app holding the canonical sequence number (the `state`
    data the paper's f::b oversees)."""

    def __init__(self, system: System, node: str):
        super().__init__(system, node)
        self.seq = 0
        self.canonical: dict = {"seq": 0}


class FailoverService:
    """A request/reply service with warm-replica fail-over."""

    def __init__(
        self,
        make_backend: Callable[[int], object],
        exec_fn: Callable[[BackApp, dict, float], tuple[dict, float]],
        *,
        latency: float = 100e-6,
        timeout: float = 0.5,
        seed: int = 0,
        reactivate_poll: float | None = 1.0,
        run_for: float = 1.0,
        program_name: str = "failover",
        program: CompiledProgram | None = None,
    ):
        self.exec_fn = exec_fn
        self.program_name = program_name
        self.program = program if program is not None else load_program(program_name)
        self.system = System(self.program, latency=latency, seed=seed)
        sys_ = self.system

        self.front = _FoFrontApp(sys_, "f::c")
        sys_.bind_app("FrontT", lambda inst: self.front)
        self._backend_counter = [0]

        def app_factory(inst, mk=make_backend):
            idx = int(inst.name[1:]) - 1  # b1 -> 0, b2 -> 1
            return BackApp(mk(idx))

        sys_.bind_app("BackT", app_factory)

        @sys_.host("FrontT", "H1")
        def _h1(ctx):
            req = ctx.app.begin_next()
            if req is None:
                from ..core.errors import DslFailure

                raise DslFailure("fail-over front scheduled with no request")
            ctx.take(5e-6)

        @sys_.host("FrontT", "H3")
        def _h3(ctx):
            ctx.app.seq += 1
            ctx.app.canonical = {"seq": ctx.app.seq}
            ctx.app.respond()

        @sys_.host("FrontT", "Complain")
        def _f_complain(ctx):
            ctx.app.fail_current()

        @sys_.host("BackT", "H2")
        def _h2(ctx):
            app: BackApp = ctx.app
            if app.current is None:
                return
            reply, cost = self.exec_fn(app, app.current, ctx.now)
            app.set_reply(reply)
            ctx.take(cost)

        @sys_.host("BackT", "Complain")
        def _b_complain(ctx):
            pass

        # -- state providers --------------------------------------------
        # FrontT 'state': the canonical state (f::b and f::c exchange it)
        sys_.bind_state(
            "FrontT", data_name="state",
            save=lambda app, inst: app.canonical,
            restore=lambda app, inst, obj: setattr(app, "canonical", obj),
        )
        sys_.bind_state(
            "FrontT", data_name="req",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: None,
        )
        sys_.bind_state(
            "FrontT", data_name="preresp",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: app.set_reply(obj),
        )
        sys_.bind_state(
            "BackT", data_name="state",
            save=lambda app, inst: getattr(app, "canonical", {"seq": 0}),
            restore=lambda app, inst, obj: setattr(app, "canonical", obj),
        )
        sys_.bind_state(
            "BackT", data_name="req",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: app.receive(obj),
        )
        sys_.bind_state(
            "BackT", data_name="preresp",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: None,
        )

        sys_.start(t=timeout)
        # let the registration/initialization phase complete
        sys_.run_until(sys_.now + run_for)

        # the paper schedules reactivate from the application; poll it
        if reactivate_poll is not None:
            self._arm_reactivate_poll(reactivate_poll)

    def back_instances(self) -> list[str]:
        """The replica instance names, sorted — derived live so a
        reconfiguration that swaps a replica keeps the watchdogs and
        reports working."""
        return sorted(
            name
            for name, inst in self.system.instances.items()
            if inst.type.name == "BackT"
        )

    def _arm_reactivate_poll(self, interval: float) -> None:
        def poll():
            for b in self.back_instances():
                inst = self.system.instance(b)
                if inst.alive:
                    self.system.poke(f"{b}::reactivate")
                    self.system.poke(f"{b}::startup")
            self.system.sim.call_after(interval, poll)

        self.system.sim.call_after(interval, poll)

    @property
    def sim(self):
        return self.system.sim

    def backend_app(self, idx: int) -> BackApp:
        return self.system.instance(f"b{idx + 1}").app

    def registered_backends(self) -> list[str]:
        out = []
        for b in self.back_instances():
            key = f"Backend[{b}::serve]"
            if self.system.read_state("f::c", key) is True:
                out.append(b)
        return out

    def swap_backend(
        self,
        old_name: str = "b2",
        new_name: str = "b3",
        *,
        quiesce_grace: float = 5.0,
    ):
        """Live instance swap: retire replica ``old_name`` and bring up
        a fresh ``new_name`` through a reconfiguration transition.  The
        new replica registers with ``f::b`` via the architecture's own
        Fig. 8 startup loop.  Returns the
        :class:`~repro.reconfig.ReconfigReport`."""
        new_program = swap_backend_program(
            old_name, new_name, program_name=self.program_name
        )
        return self.system.reconfigure(new_program, quiesce_grace=quiesce_grace)

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(self.system)

    def submit_request(self, request: dict, on_done: Callable[[dict | None], None]) -> None:
        self.front.submit(request, on_done)


class FailoverRedis(FailoverService):
    """Fail-over over two redislite replicas (RequestPort).

    ``slow_backend`` (index, extra seconds) injects a per-request delay
    on one replica — used to show how the conservative all-replica wait
    compares with the first-response-wins variant."""

    def __init__(self, *, cost_model=None, slow_backend=None, **kw):
        def make_backend(i: int) -> RedisServer:
            return RedisServer(name=f"replica{i}", cost=cost_model)

        def exec_fn(app: BackApp, request: dict, now: float):
            server: RedisServer = app.payload
            cmd = Command(request["op"], request["key"], request.get("value", b""))
            reply, cost = server.execute(cmd, now=now)
            if slow_backend is not None and server.name == f"replica{slow_backend[0]}":
                cost += slow_backend[1]
            return ({"ok": reply.ok, "value": reply.value, "hit": reply.hit}, cost)

        super().__init__(make_backend, exec_fn, **kw)

    def submit(self, cmd: Command, on_done: Callable[[Reply], None]) -> None:
        request = {"op": cmd.op, "key": cmd.key, "value": cmd.value}

        def done(reply: dict | None):
            if reply is None:
                on_done(Reply(ok=False))
            else:
                on_done(Reply(ok=reply["ok"], value=reply["value"], hit=reply["hit"]))

        self.front.submit(request, done)

    def preload(self, commands) -> None:
        for cmd in commands:
            for i in (0, 1):
                self.backend_app(i).payload.execute(cmd, now=0.0)


class FastFailoverRedis(FailoverRedis):
    """The sec. 7.3 improvement (i): first-response-wins fail-over
    (``failover_fast.csaw``) — the front returns as soon as one replica
    pre-responds instead of waiting for all of them."""

    def __init__(self, **kw):
        kw.setdefault("program_name", "failover_fast")
        super().__init__(**kw)


class FailoverSuricata(FailoverService):
    """Fail-over over two suricatalite pipeline replicas — the paper's
    availability + diagnostics scenario (sec. 2), reusing the Redis
    fail-over architecture unchanged."""

    def __init__(self, **kw):
        from ..suricatalite.packet import FiveTuple, Packet
        from ..suricatalite.pipeline import Pipeline

        def make_backend(i: int) -> Pipeline:
            return Pipeline()

        def exec_fn(app: BackApp, request: dict, now: float):
            pipeline: Pipeline = app.payload
            cost = 0.0
            for rec in request["packets"]:
                f = rec["flow"]
                pkt = Packet(
                    ts=now,
                    flow=FiveTuple(f[0], f[1], int(f[2]), int(f[3]), f[4]),
                    size=rec["size"],
                    payload=rec.get("payload", b""),
                    app=rec.get("app", "unknown"),
                )
                cost += pipeline.process(pkt)
            return ({"processed": len(request["packets"])}, cost)

        super().__init__(make_backend, exec_fn, **kw)

    def submit_packets(self, packets, on_done: Callable[[dict | None], None]) -> None:
        recs = []
        for pkt in packets:
            f = pkt.flow
            recs.append(
                {
                    "flow": (f.src_ip, f.dst_ip, f.src_port, f.dst_port, f.proto),
                    "size": pkt.size,
                    "payload": pkt.payload,
                    "app": pkt.app,
                }
            )
        self.front.submit({"packets": recs}, on_done)
