"""Shared plumbing between the DSL architectures and the substrates.

A *front app* is the host-language application object of a front-end
instance: it queues incoming client requests, exposes the in-flight
request to host blocks and ``save`` providers, and completes requests
when the architecture produces a reply.  Every DSL architecture with a
request/reply shape (sharding, caching, fail-over, watched fail-over)
reuses it — mirroring the paper's observation that the architecture
code is decoupled from the application logic it dispatches.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..runtime.system import System


class FrontApp:
    """Client-request queue + in-flight bookkeeping for a front-end."""

    def __init__(self, system: System, node: str, req_prop: str = "Req"):
        self.system = system
        self.node = node
        self.req_prop = req_prop
        self.queue: deque[tuple[dict, Callable]] = deque()
        self.current: dict | None = None
        self.current_done: Callable | None = None
        self.reply: dict | None = None
        self.completed = 0
        self.failed = 0

    # -- client side ----------------------------------------------------------

    def submit(self, request: dict, on_done: Callable[[dict | None], None]) -> None:
        self.queue.append((request, on_done))
        self.system.external_update(self.node, self.req_prop, True)

    # -- host-block side ---------------------------------------------------------

    def begin_next(self) -> dict | None:
        """Pop the next request (called by the front-end's first host
        block).  Returns None when the queue is empty."""
        if self.current is not None:
            # previous request never completed (e.g. junction failed
            # before Respond); count it as failed
            self._finish(None)
        if not self.queue:
            self.current = None
            self.current_done = None
            return None
        self.current, self.current_done = self.queue.popleft()
        self.reply = None
        return self.current

    def set_reply(self, reply: dict | None) -> None:
        self.reply = reply

    def respond(self) -> None:
        """Complete the in-flight request with the current reply."""
        self._finish(self.reply)
        self._rearm()

    def fail_current(self) -> None:
        self._finish(None)
        self._rearm()

    def _finish(self, reply: dict | None) -> None:
        done = self.current_done
        self.current = None
        self.current_done = None
        if done is not None:
            if reply is None:
                self.failed += 1
            else:
                self.completed += 1
            done(reply)

    def _rearm(self) -> None:
        if self.queue:
            self.system.external_update(self.node, self.req_prop, True)


class BackApp:
    """In-flight request/reply holder for a back-end instance."""

    def __init__(self, payload: object):
        #: the wrapped substrate object (RedisServer, Pipeline, ...)
        self.payload = payload
        self.current: dict | None = None
        self.reply: dict | None = None
        self.executed = 0

    def receive(self, request: dict) -> None:
        self.current = request

    def set_reply(self, reply: dict) -> None:
        self.reply = reply
        self.executed += 1
