"""Lines-of-code accounting for the Table 2 effort study.

The paper compares, per feature (Checkpointing / Sharding / Caching):

* **DSL in C** — generated host-language code realizing the DSL
  expression.  Our analogue is the DSL source itself plus the compiled
  junction templates; we count the ``.csaw`` source LoC (the artifact a
  programmer writes and maintains).
* **Redis(DSL)** / **Suricata(DSL)** — lines edited in the application
  to define junctions and package parameters.  Our analogue is the
  per-substrate binding code (host blocks + state providers) in the
  ``repro.arch`` integration modules, measured by source inspection of
  the marked regions.
* **Redis(C)** — re-architecting directly in the host language, with
  its own messaging/synchronization layer.  Our analogue is
  :mod:`repro.direct` (written against the substrate API without the
  DSL; its shared messaging layer is counted into each feature, as the
  paper adds its 195-line management system to each).

Counting rule: non-blank, non-comment lines.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from pathlib import Path

from .loader import load_source


def count_loc_text(text: str, comment_prefixes: tuple[str, ...] = ("#",)) -> int:
    """Non-blank, non-comment lines of ``text``."""
    n = 0
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if any(stripped.startswith(p) for p in comment_prefixes):
            continue
        n += 1
    return n


def dsl_loc(name: str, *, n_backends: int | None = None) -> int:
    """LoC of an architecture's DSL source."""
    if name == "sharding":
        return count_loc_text(load_source(name, n_backends=n_backends or 4))
    return count_loc_text(load_source(name))


def count_loc_object(obj: object) -> int:
    """LoC of a Python class/function/module via source inspection."""
    return count_loc_text(inspect.getsource(obj))


def count_loc_file(path: str | Path) -> int:
    return count_loc_text(Path(path).read_text())


@dataclass
class Table2Row:
    feature: str
    dsl_loc: int
    redis_binding_loc: int
    suricata_binding_loc: int | None
    direct_loc: int


def table2() -> list[Table2Row]:
    """Compute the Table 2 analogue from the actual sources."""
    from .. import direct
    from . import caching as caching_mod
    from . import checkpointing as cp_mod
    from . import sharding as sh_mod
    from ..direct import messaging as direct_msg
    from ..direct import checkpointing as direct_cp
    from ..direct import sharding as direct_sh
    from ..direct import caching as direct_ca

    msg_loc = count_loc_object(direct_msg)

    rows = [
        Table2Row(
            feature="Checkpointing",
            dsl_loc=dsl_loc("checkpointing"),
            redis_binding_loc=count_loc_object(cp_mod.CheckpointedService.__init__),
            suricata_binding_loc=count_loc_object(cp_mod.CheckpointedService.__init__),
            direct_loc=count_loc_object(direct_cp) + msg_loc,
        ),
        Table2Row(
            feature="Sharding",
            dsl_loc=dsl_loc("sharding"),
            redis_binding_loc=count_loc_object(sh_mod.ShardedRedis),
            suricata_binding_loc=count_loc_object(sh_mod.ShardedSuricata),
            direct_loc=count_loc_object(direct_sh) + msg_loc,
        ),
        Table2Row(
            feature="Caching",
            dsl_loc=dsl_loc("caching"),
            redis_binding_loc=count_loc_object(caching_mod.CachedRedis),
            suricata_binding_loc=None,
            direct_loc=count_loc_object(direct_ca) + msg_loc,
        ),
    ]
    return rows


def serde_generated_loc() -> dict[str, int]:
    """LoC of generated serializers for the substrate schemas (the
    paper reports 182 LoC for Redis's key/value and 2380 for Suricata's
    packet structure)."""
    from ..serde import TypeRegistry, generate_module
    from ..direct.schemas import redis_entry_schema, suricata_packet_schema

    out = {}
    reg1 = TypeRegistry()
    redis_entry_schema(reg1)
    out["redis_kv"] = count_loc_text(generate_module(reg1, "redis_entry"), ('"',))
    reg2 = TypeRegistry()
    suricata_packet_schema(reg2)
    out["suricata_packet"] = count_loc_text(generate_module(reg2, "suricata_packet"), ('"',))
    return out
