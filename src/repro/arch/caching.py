"""The caching architecture (Fig. 7) applied to redislite.

``Cache`` fronts the ``Fun`` instance (which wraps the Redis server).
Host blocks implement the paper's cache-side functions:

* ``CheckCacheable`` — GETs are cacheable; SETs are not and invalidate
  the cached entry (writes must not serve stale data);
* ``LookupCache`` — consult the host-language LRU cache; on a hit the
  reply is produced locally and the expensive back-end call is skipped;
* ``UpdateCache`` — install the fresh value after a miss.

The cache's size and eviction strategy are host-language concerns,
"orthogonal to the architecture ... and therefore outside of the DSL's
scope" (sec. 7.2) — :class:`LruCache` lives entirely in Python.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from ..redislite.server import Command, CostModel, RedisServer, Reply
from ..runtime.system import System
from .loader import load_program
from .ports import BackApp, FrontApp


class LruCache:
    """A small LRU cache of key -> value bytes."""

    def __init__(self, capacity: int = 128):
        self.capacity = capacity
        self._data: OrderedDict[str, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> bytes | None:
        if key in self._data:
            self._data.move_to_end(key)
            self.hits += 1
            return self._data[key]
        self.misses += 1
        return None

    def put(self, key: str, value: bytes) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def invalidate(self, key: str) -> None:
        self._data.pop(key, None)

    def __len__(self) -> int:
        return len(self._data)


class _CacheApp(FrontApp):
    """Front app plus the cache and per-request classification state."""

    def __init__(self, system: System, node: str, cache: LruCache):
        super().__init__(system, node)
        self.cache = cache
        self.lookup_hit = False


class CachedRedis:
    """Redis behind the Fig. 7 caching layer (RequestPort).

    ``lookup_cost`` models the cache probe; it must be far below the
    back-end's per-command cost for caching to pay off, as in the
    paper's setup where the cache avoids a Redis round trip.
    """

    def __init__(
        self,
        *,
        capacity: int = 128,
        cost_model: CostModel | None = None,
        latency: float = 100e-6,
        timeout: float = 2.0,
        lookup_cost: float = 5e-6,
        seed: int = 0,
    ):
        self.program = load_program("caching")
        self.system = System(self.program, latency=latency, seed=seed)
        self.cache = LruCache(capacity)
        self.lookup_cost = lookup_cost
        sys_ = self.system

        self.front = _CacheApp(sys_, "Cache::junction", self.cache)
        sys_.bind_app("CacheT", lambda inst: self.front)
        self.server = RedisServer(name="fun", cost=cost_model)
        sys_.bind_app("FunT", lambda inst: BackApp(self.server))

        @sys_.host("CacheT", "CheckCacheable")
        def _check(ctx):
            req = ctx.app.begin_next()
            if req is None:
                from ..core.errors import DslFailure

                raise DslFailure("cache front scheduled with no pending request")
            cacheable = req["op"] == "GET"
            if req["op"] == "SET":
                ctx.app.cache.invalidate(req["key"])
            ctx.app.lookup_hit = False
            ctx.set("Cacheable", cacheable)
            ctx.take(1e-6)

        @sys_.host("CacheT", "LookupCache")
        def _lookup(ctx):
            req = ctx.app.current
            value = ctx.app.cache.get(req["key"])
            ctx.take(self.lookup_cost)
            if value is not None:
                ctx.app.lookup_hit = True
                ctx.app.set_reply({"ok": True, "value": value, "hit": True})
                ctx.set("Cached", True)
            else:
                ctx.set("Cached", False)

        @sys_.host("CacheT", "UpdateCache")
        def _update(ctx):
            req = ctx.app.current
            reply = ctx.app.reply
            if reply is not None and reply.get("value") is not None:
                ctx.app.cache.put(req["key"], reply["value"])
            ctx.take(1e-6)

        @sys_.host("CacheT", "Respond")
        def _respond(ctx):
            ctx.app.respond()

        @sys_.host("CacheT", "Complain")
        def _complain(ctx):
            ctx.app.fail_current()

        @sys_.host("FunT", "F")
        def _fun(ctx):
            app: BackApp = ctx.app
            if app.current is None:
                return
            req = app.current
            cmd = Command(req["op"], req["key"], req.get("value", b""))
            reply, cost = self.server.execute(cmd, now=ctx.now)
            app.set_reply({"ok": reply.ok, "value": reply.value, "hit": reply.hit})
            ctx.take(cost)

        @sys_.host("FunT", "Complain")
        def _fun_complain(ctx):
            pass

        sys_.bind_state(
            "CacheT", data_name="n",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: None,
        )
        sys_.bind_state(
            "CacheT", data_name="m",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: app.set_reply(obj),
        )
        sys_.bind_state(
            "FunT", data_name="n",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: app.receive(obj),
        )
        sys_.bind_state(
            "FunT", data_name="m",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: None,
        )

        sys_.start(t=timeout)

    @property
    def sim(self):
        return self.system.sim

    # -- RequestPort ---------------------------------------------------------

    def submit(self, cmd: Command, on_done: Callable[[Reply], None]) -> None:
        request = {"op": cmd.op, "key": cmd.key, "value": cmd.value}

        def done(reply: dict | None):
            if reply is None:
                on_done(Reply(ok=False))
            else:
                on_done(Reply(ok=reply["ok"], value=reply["value"], hit=reply["hit"]))

        self.front.submit(request, done)

    def preload(self, commands) -> None:
        for cmd in commands:
            self.server.execute(cmd, now=0.0)
