"""The sharding architecture applied to redislite and suricatalite.

Builds a :class:`~repro.runtime.system.System` over
``dsl/sharding.csaw`` with ``N`` back-end instances and wires the host
blocks:

* ``Choose`` — the host-language choice function of Fig. 5, writing the
  ``idx tgt``: by djb2 key hash, by quantized object size (the paper's
  0–4 KB / 4–64 KB / >64 KB classes), or by 5-tuple hash for packets;
* ``Exec`` — runs the request on the back-end substrate and charges the
  simulator the substrate's service cost;
* ``Respond``/``Complain`` — complete or fail the client request.

:class:`ShardedRedis` satisfies the redislite ``RequestPort`` protocol,
so ``redis-benchmark``-style drivers run unchanged against it.
:class:`ShardedSuricata` steers packet *batches* to back-end pipelines.
"""

from __future__ import annotations

from typing import Callable

from ..redislite.bench import RequestPort
from ..redislite.server import Command, RedisServer, Reply
from ..redislite.workload import SIZE_CLASSES, djb2
from ..runtime.system import System
from ..suricatalite.packet import Packet
from ..suricatalite.pipeline import Pipeline
from .loader import backend_names, load_program
from .ports import BackApp, FrontApp

#: choose function signature: request dict -> shard index (0-based)
ChooseFn = Callable[[dict], int]


def key_hash_chooser(n: int) -> ChooseFn:
    """Shard by djb2 hash of the key (sec. 10.1, Fig. 23b)."""

    def choose(request: dict) -> int:
        return djb2(request["key"]) % n

    return choose


def object_size_chooser(n: int, size_table: dict[str, int]) -> ChooseFn:
    """Shard by quantized object size (sec. 5.2, Fig. 26c).

    ``size_table`` is the paper's "custom table that maps keys to
    object sizes"; sizes quantize into the three classes, spread over
    ``n`` shards round-robin by class (class i -> shard i % n).
    """

    def size_class(size: int) -> int:
        for i, (lo, hi) in enumerate(SIZE_CLASSES):
            if lo < size <= hi:
                return i
        return len(SIZE_CLASSES)  # > last boundary

    def choose(request: dict) -> int:
        size = size_table.get(request["key"], request.get("size", 0))
        return size_class(size) % n

    return choose


def five_tuple_chooser(n: int) -> ChooseFn:
    """Shard packet batches by the flow 5-tuple hash (Fig. 24b)."""

    def choose(request: dict) -> int:
        return request["flow_hash"] % n

    return choose


class _ShardedService:
    """Common assembly for sharded services."""

    def __init__(
        self,
        n_shards: int,
        choose: ChooseFn,
        make_backend: Callable[[int], object],
        exec_fn: Callable[[BackApp, dict, float], tuple[dict, float]],
        *,
        latency: float = 100e-6,
        timeout: float = 2.0,
        seed: int = 0,
    ):
        self.n_shards = n_shards
        self.choose = choose
        self.exec_fn = exec_fn
        self.timeout = timeout
        self.program = load_program("sharding", n_backends=n_shards)
        self.system = System(self.program, latency=latency, seed=seed)
        self.backends = backend_names(n_shards)
        self.shard_counts = [0] * n_shards

        sys_ = self.system
        self.front = FrontApp(sys_, "Fnt::junction")
        sys_.bind_app("Front", lambda inst: self.front)
        # index parsed from the name ("Bck7" -> 6) so backends added by
        # a live reconfiguration get the right shard number
        sys_.bind_app("Back", lambda inst, mk=make_backend: BackApp(
            mk(int(inst.name[3:]) - 1)
        ))

        @sys_.host("Front", "Choose")
        def _choose(ctx):
            req = ctx.app.begin_next()
            if req is None:
                # a stale Req with an empty queue; fail this scheduling
                from ..core.errors import DslFailure

                raise DslFailure("front-end scheduled with no pending request")
            shard = self.choose(req)
            self.shard_counts[shard] += 1
            ctx.set("tgt", self.backends[shard])
            ctx.take(5e-6)

        @sys_.host("Front", "Respond")
        def _respond(ctx):
            ctx.app.respond()

        @sys_.host("Front", "Complain")
        def _complain(ctx):
            ctx.app.fail_current()

        @sys_.host("Back", "Exec")
        def _exec(ctx):
            app: BackApp = ctx.app
            if app.current is None:
                return
            reply, cost = self.exec_fn(app, app.current, ctx.now)
            app.set_reply(reply)
            ctx.take(cost)

        @sys_.host("Back", "Complain")
        def _back_complain(ctx):
            pass

        sys_.bind_state(
            "Front", data_name="n",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: None,
        )
        sys_.bind_state(
            "Front", data_name="m",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: app.set_reply(obj),
        )
        sys_.bind_state(
            "Back", data_name="n",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: app.receive(obj),
        )
        sys_.bind_state(
            "Back", data_name="m",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: None,
        )

        sys_.start(t=timeout)

    @property
    def sim(self):
        return self.system.sim

    def backend_app(self, shard: int) -> BackApp:
        return self.system.instance(self.backends[shard]).app


class ShardedRedis(_ShardedService):
    """Redis sharded over N back-end instances (RequestPort)."""

    def __init__(
        self,
        n_shards: int = 4,
        *,
        mode: str = "key",  # 'key' | 'size'
        size_table: dict[str, int] | None = None,
        cost_model=None,
        latency: float = 100e-6,
        timeout: float = 2.0,
        seed: int = 0,
    ):
        self._mode = mode
        self._size_table = size_table or {}
        self._cost_model = cost_model
        if mode == "key":
            choose = key_hash_chooser(n_shards)
        elif mode == "size":
            choose = object_size_chooser(n_shards, self._size_table)
        else:
            raise ValueError(f"unknown sharding mode {mode!r}")

        def make_backend(i: int) -> RedisServer:
            return RedisServer(name=f"shard{i}", cost=cost_model)

        def exec_fn(app: BackApp, request: dict, now: float):
            server: RedisServer = app.payload
            cmd = Command(request["op"], request["key"], request.get("value", b""))
            reply, cost = server.execute(cmd, now=now)
            return (
                {"ok": reply.ok, "value": reply.value, "hit": reply.hit},
                cost,
            )

        super().__init__(
            n_shards, choose, make_backend, exec_fn,
            latency=latency, timeout=timeout, seed=seed,
        )

    # -- RequestPort -------------------------------------------------------

    def submit(self, cmd: Command, on_done: Callable[[Reply], None]) -> None:
        request = {"op": cmd.op, "key": cmd.key, "value": cmd.value}

        def done(reply: dict | None):
            if reply is None:
                on_done(Reply(ok=False))
            else:
                on_done(Reply(ok=reply["ok"], value=reply["value"], hit=reply["hit"]))

        self.front.submit(request, done)

    def preload(self, commands) -> None:
        """Load the dataset directly into the right shards (unmeasured)."""
        for cmd in commands:
            shard = self.choose({"op": cmd.op, "key": cmd.key, "value": cmd.value,
                                 "size": len(cmd.value)})
            server: RedisServer = self.backend_app(shard).payload
            server.execute(cmd, now=0.0)

    def shard_sizes(self) -> list[int]:
        return [self.backend_app(i).payload.store.size() for i in range(self.n_shards)]

    def reconfigure_shards(self, n_shards: int, *, quiesce_grace: float = 5.0):
        """Live-reshard to ``n_shards`` back-ends with zero dropped
        requests: backends are added/removed through a reconfiguration
        transition, and the state-transfer step re-places every stored
        entry under the new chooser (exactly where a fresh ``n_shards``
        deployment would have put it).  Returns the
        :class:`~repro.reconfig.ReconfigReport`."""
        if n_shards == self.n_shards:
            return self.system.reconfigure(quiesce_grace=quiesce_grace)
        old_backends = list(self.backends)
        new_backends = backend_names(n_shards)
        new_program = load_program("sharding", n_backends=n_shards)
        if self._mode == "key":
            new_choose = key_hash_chooser(n_shards)
        else:
            new_choose = object_size_chooser(n_shards, self._size_table)

        def transfer(system: System, removed_apps: dict) -> None:
            sources: list[RedisServer] = []
            for name in old_backends:
                app = (
                    removed_apps.get(name)
                    if name in removed_apps
                    else system.instances[name].app
                )
                if app is not None:
                    sources.append(app.payload)
            targets = {
                name: system.instance(name).app.payload for name in new_backends
            }
            for i, server in enumerate(sources):
                store = server.store
                for key in list(store.keys()):
                    idx = new_choose(
                        {"op": "GET", "key": key, "size": store.object_size(key) or 0}
                    )
                    dst = targets[new_backends[idx]]
                    if dst.store is store:
                        continue
                    value = store.get(key)
                    if value is not None:
                        dst.store.set(key, value)
                    store.delete(key)

        report = self.system.reconfigure(
            new_program, on_transfer=transfer, quiesce_grace=quiesce_grace
        )
        if report.ok and not report.rolled_back:
            old_counts = self.shard_counts
            self.n_shards = n_shards
            self.backends = new_backends
            self.choose = new_choose
            self.shard_counts = (old_counts + [0] * n_shards)[:n_shards]
        return report


class ParallelShardedRedis:
    """Fig. 6 (sec. 7.1): the front engages a host-chosen *subset* of
    back-ends in parallel — warm replication for availability.

    ``replicas`` controls how many back-ends each request targets
    (``None`` = all, the availability configuration).  Satisfies the
    redislite ``RequestPort`` protocol.
    """

    def __init__(
        self,
        n_backends: int = 3,
        *,
        replicas: int | None = None,
        cost_model=None,
        latency: float = 100e-6,
        timeout: float = 0.5,
        seed: int = 0,
    ):
        self.n_backends = n_backends
        self.replicas = replicas
        self.program = load_program("parallel_sharding", n_backends=n_backends)
        self.system = System(self.program, latency=latency, seed=seed)
        self.backends = backend_names(n_backends)
        sys_ = self.system

        self.front = FrontApp(sys_, "Fnt::junction")
        sys_.bind_app("Front", lambda inst: self.front)
        sys_.bind_app(
            "Back",
            lambda inst: BackApp(RedisServer(name=inst.name, cost=cost_model)),
        )

        @sys_.host("Front", "Choose")
        def _choose(ctx):
            req = ctx.app.begin_next()
            if req is None:
                from ..core.errors import DslFailure

                raise DslFailure("parallel front scheduled with no request")
            k = self.replicas or self.n_backends
            chosen = self.backends[:k]
            ctx.set("tgt", chosen)
            ctx.take(5e-6)

        @sys_.host("Front", "Respond")
        def _respond(ctx):
            ctx.app.respond()

        @sys_.host("Front", "Complain")
        def _complain(ctx):
            ctx.app.fail_current()

        @sys_.host("Back", "Exec")
        def _exec(ctx):
            app: BackApp = ctx.app
            if app.current is None:
                return
            req = app.current
            server: RedisServer = app.payload
            cmd = Command(req["op"], req["key"], req.get("value", b""))
            reply, cost = server.execute(cmd, now=ctx.now)
            app.set_reply({"ok": reply.ok, "value": reply.value, "hit": reply.hit})
            ctx.take(cost)

        @sys_.host("Back", "Complain")
        def _back_complain(ctx):
            pass

        sys_.bind_state(
            "Front", data_name="n",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: None,
        )
        sys_.bind_state(
            "Front", data_name="m",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: app.set_reply(obj),
        )
        sys_.bind_state(
            "Back", data_name="n",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: app.receive(obj),
        )
        sys_.bind_state(
            "Back", data_name="m",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: None,
        )

        sys_.start(t=timeout)

    @property
    def sim(self):
        return self.system.sim

    def backend_app(self, i: int) -> BackApp:
        return self.system.instance(self.backends[i]).app

    def active_backends(self) -> list[str]:
        return [
            b
            for b in self.backends
            if self.system.read_state("Fnt::junction", f"ActiveBackend[{b}]") is True
        ]

    # -- RequestPort -------------------------------------------------------

    def submit(self, cmd: Command, on_done: Callable[[Reply], None]) -> None:
        request = {"op": cmd.op, "key": cmd.key, "value": cmd.value}

        def done(reply: dict | None):
            if reply is None:
                on_done(Reply(ok=False))
            else:
                on_done(Reply(ok=reply["ok"], value=reply["value"], hit=reply["hit"]))

        self.front.submit(request, done)

    def preload(self, commands) -> None:
        for cmd in commands:
            for i in range(self.n_backends):
                self.backend_app(i).payload.execute(cmd, now=0.0)

    def reconfigure_backends(self, n_backends: int, *, quiesce_grace: float = 5.0):
        """Live-resize the warm-replica pool; newly added back-ends get
        a full replica copy in the state-transfer step."""
        if n_backends == self.n_backends:
            return self.system.reconfigure(quiesce_grace=quiesce_grace)
        old_backends = list(self.backends)
        new_backends = backend_names(n_backends)
        new_program = load_program("parallel_sharding", n_backends=n_backends)

        def transfer(system: System, removed_apps: dict) -> None:
            src = None
            for name in old_backends:
                if name in new_backends and name in system.instances:
                    app = system.instances[name].app
                    if app is not None:
                        src = app.payload
                        break
            if src is None:
                return
            snap = src.store.snapshot()
            for name in new_backends:
                if name not in old_backends:
                    system.instance(name).app.payload.store.restore(snap)

        report = self.system.reconfigure(
            new_program, on_transfer=transfer, quiesce_grace=quiesce_grace
        )
        if report.ok and not report.rolled_back:
            self.n_backends = n_backends
            self.backends = new_backends
        return report


class ShardedSuricata(_ShardedService):
    """Suricata packet steering: batches of packets sharded by 5-tuple.

    The paper steers individual packets; we batch (``batch_size``
    packets of the same shard per junction round) so the simulation
    stays tractable — the steering decision is still per-5-tuple.
    """

    def __init__(
        self,
        n_shards: int = 4,
        *,
        latency: float = 100e-6,
        timeout: float = 2.0,
        seed: int = 0,
        batch_size: int = 200,
    ):
        self.batch_size = batch_size

        def make_backend(i: int) -> Pipeline:
            return Pipeline()

        def exec_fn(app: BackApp, request: dict, now: float):
            from ..suricatalite.packet import FiveTuple

            pipeline: Pipeline = app.payload
            cost = 0.0
            alerts = 0
            for pkt_rec in request["packets"]:
                f = pkt_rec["flow"]
                pkt = Packet(
                    ts=now,
                    flow=FiveTuple(f[0], f[1], int(f[2]), int(f[3]), f[4]),
                    size=pkt_rec["size"],
                    payload=pkt_rec.get("payload", b""),
                    app=pkt_rec.get("app", "unknown"),
                )
                before = len(pipeline.ctx.alerts)
                cost += pipeline.process(pkt)
                alerts += len(pipeline.ctx.alerts) - before
            return ({"processed": len(request["packets"]), "alerts": alerts}, cost)

        super().__init__(
            n_shards, five_tuple_chooser(n_shards), make_backend, exec_fn,
            latency=latency, timeout=timeout, seed=seed,
        )
        self._pending_batches: dict[int, list[dict]] = {i: [] for i in range(n_shards)}
        self.packets_done: list[tuple[float, int, int]] = []  # (time, shard, count)

    def feed(self, pkt: Packet) -> None:
        """Queue a packet; full batches are dispatched through the DSL."""
        shard = pkt.flow.hash() % self.n_shards
        f = pkt.flow
        rec = {
            "flow": (f.src_ip, f.dst_ip, f.src_port, f.dst_port, f.proto),
            "size": pkt.size,
            "payload": pkt.payload,
            "app": pkt.app,
        }
        self._pending_batches[shard].append(rec)
        if len(self._pending_batches[shard]) >= self.batch_size:
            self.flush_shard(shard)

    def flush_shard(self, shard: int) -> None:
        batch = self._pending_batches[shard]
        if not batch:
            return
        self._pending_batches[shard] = []
        request = {"packets": batch, "flow_hash": shard, "count": len(batch)}

        def done(reply: dict | None, _shard=shard, _n=len(batch)):
            self.packets_done.append((self.sim.now, _shard, _n if reply else 0))

        self.front.submit(request, done)

    def flush_all(self) -> None:
        for shard in range(self.n_shards):
            self.flush_shard(shard)
