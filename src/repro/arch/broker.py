"""The broker architectures: brokerlite behind the DSL.

Two deployments of the :mod:`~repro.brokerlite` substrate:

* :class:`ShardedBroker` — ``dsl/broker_sharded.csaw``: the partitioned
  log spread across ``N`` back-end instances, one partition per
  instance.  ``Route`` picks the owner (djb2 of the key for ``PUB``,
  the explicit partition number for the offset-addressed commands),
  ``Apply`` executes the command on the owner's log, ``Deliver``
  completes the client request.  ``reconfigure_partitions`` changes the
  partition count through a live reconfiguration with zero dropped
  requests.

* :class:`ReplicatedBroker` — ``dsl/broker_failover.csaw``: warm log
  replicas behind the sec. 7.3 fail-over front-end.  Every command
  (including every publish) fans out to all registered replicas, so
  each holds a full copy of the log; the PR 8 leader-swap
  reconfiguration (``swap_backend``) retires a replica live.

Both speak dict-shaped requests/replies on the wire (serde-safe across
the tcp and cluster transports); :func:`request_to_dict` /
:func:`reply_from_dict` convert to the substrate's dataclasses.
"""

from __future__ import annotations

from typing import Callable

from ..brokerlite import BrokerReply, BrokerRequest, BrokerServer, partition_for
from ..runtime.system import System
from .failover import FailoverService
from .loader import backend_names, load_program
from .ports import BackApp, FrontApp


def request_to_dict(req: BrokerRequest) -> dict:
    return {
        "op": req.op,
        "partition": req.partition,
        "key": req.key,
        "value": req.value,
        "offset": req.offset,
        "max": req.max_records,
        "group": req.group,
    }


def request_from_dict(d: dict) -> BrokerRequest:
    return BrokerRequest(
        op=d["op"],
        partition=d.get("partition", 0),
        key=d.get("key", ""),
        value=d.get("value", b""),
        offset=d.get("offset", 0),
        max_records=d.get("max", 64),
        group=d.get("group", ""),
    )


def reply_to_dict(reply: BrokerReply) -> dict:
    return {
        "ok": reply.ok,
        "offset": reply.offset,
        "records": reply.records,
        "high_water": reply.high_water,
    }


def reply_from_dict(d: dict | None) -> BrokerReply:
    if d is None:
        return BrokerReply(ok=False)
    return BrokerReply(
        ok=d["ok"],
        offset=d.get("offset"),
        records=d.get("records"),
        high_water=d.get("high_water"),
    )


class ShardedBroker:
    """brokerlite partitioned over N back-end instances.

    Partition ``i`` lives on back-end instance ``i`` (``Bck{i+1}``);
    ``PUB`` routes by key hash, the offset-addressed commands carry
    their partition number.
    """

    def __init__(
        self,
        n_partitions: int = 4,
        *,
        cost_model=None,
        latency: float = 100e-6,
        timeout: float = 2.0,
        seed: int = 0,
    ):
        self.n_partitions = n_partitions
        self._cost_model = cost_model
        self.timeout = timeout
        self.program = load_program("broker_sharded", n_backends=n_partitions)
        self.system = System(self.program, latency=latency, seed=seed)
        self.backends = backend_names(n_partitions)
        self.partition_counts = [0] * n_partitions

        sys_ = self.system
        self.front = FrontApp(sys_, "Fnt::junction")
        sys_.bind_app("Front", lambda inst: self.front)
        # index parsed from the name ("Bck7" -> partition 6) so back-ends
        # added by a live re-partitioning own the right partition
        sys_.bind_app("Back", lambda inst: BackApp(
            BrokerServer(name=f"partition{int(inst.name[3:]) - 1}", cost=cost_model)
        ))

        @sys_.host("Front", "Route")
        def _route(ctx):
            req = ctx.app.begin_next()
            if req is None:
                from ..core.errors import DslFailure

                raise DslFailure("broker front scheduled with no pending request")
            p = self.partition_of(req)
            req["partition"] = p  # the owner appends/reads its own log
            self.partition_counts[p] += 1
            ctx.set("tgt", self.backends[p])
            ctx.take(5e-6)

        @sys_.host("Front", "Deliver")
        def _deliver(ctx):
            ctx.app.respond()

        @sys_.host("Front", "Complain")
        def _complain(ctx):
            ctx.app.fail_current()

        @sys_.host("Back", "Apply")
        def _apply(ctx):
            app: BackApp = ctx.app
            if app.current is None:
                return
            server: BrokerServer = app.payload
            reply, cost = server.execute(request_from_dict(app.current), now=ctx.now)
            app.set_reply(reply_to_dict(reply))
            ctx.take(cost)

        @sys_.host("Back", "Complain")
        def _back_complain(ctx):
            pass

        sys_.bind_state(
            "Front", data_name="rec",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: None,
        )
        sys_.bind_state(
            "Front", data_name="ack",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: app.set_reply(obj),
        )
        sys_.bind_state(
            "Back", data_name="rec",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: app.receive(obj),
        )
        sys_.bind_state(
            "Back", data_name="ack",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: None,
        )

        sys_.start(t=timeout)

    @property
    def sim(self):
        return self.system.sim

    def backend_app(self, partition: int) -> BackApp:
        return self.system.instance(self.backends[partition]).app

    def server(self, partition: int) -> BrokerServer:
        return self.backend_app(partition).payload

    def partition_of(self, request: dict) -> int:
        """The owning partition: key hash for PUB, the carried
        partition number (mod N, so stale clients stay in range)
        otherwise."""
        if request["op"].upper() == "PUB":
            return partition_for(request["key"], self.n_partitions)
        return request.get("partition", 0) % self.n_partitions

    # -- client API ----------------------------------------------------------

    def submit(self, req: BrokerRequest, on_done: Callable[[BrokerReply], None]) -> None:
        self.front.submit(request_to_dict(req), lambda d: on_done(reply_from_dict(d)))

    def publish(self, key: str, value: bytes, on_done: Callable[[BrokerReply], None]) -> None:
        self.submit(BrokerRequest(op="PUB", partition=0, key=key, value=value), on_done)

    def preload(self, records) -> None:
        """Append (key, value) pairs directly to the owning partitions
        (unmeasured), e.g. a dataset loaded before the drive starts."""
        for key, value in records:
            p = partition_for(key, self.n_partitions)
            self.server(p).partition(p).append(key, value)

    def partition_sizes(self) -> list[int]:
        return [self.server(i).partition(i).size() for i in range(self.n_partitions)]

    def records_stored(self) -> int:
        return sum(self.partition_sizes())

    # -- live re-partitioning ------------------------------------------------

    def reconfigure_partitions(self, n_partitions: int, *, quiesce_grace: float = 5.0):
        """Change the partition count through a live reconfiguration
        with zero dropped requests.  The state-transfer step drains
        every record (old partition order, offset order within a
        partition — so per-key order is preserved, since a key lives in
        exactly one old partition) and re-appends under the new
        ``partition_for``; offsets are reassigned.  Consumer-group
        commits do not survive a re-partition (offsets are
        partition-local and the partitions changed): groups restart
        from offset 0, i.e. re-partitioning downgrades consumption to
        at-least-once — the reason real brokers forbid shrinking
        partition counts.  Returns the
        :class:`~repro.reconfig.ReconfigReport`."""
        if n_partitions == self.n_partitions:
            return self.system.reconfigure(quiesce_grace=quiesce_grace)
        old_backends = list(self.backends)
        new_backends = backend_names(n_partitions)
        new_program = load_program("broker_sharded", n_backends=n_partitions)

        def transfer(system: System, removed_apps: dict) -> None:
            drained = []
            for name in old_backends:
                app = (
                    removed_apps.get(name)
                    if name in removed_apps
                    else system.instances[name].app
                )
                if app is not None:
                    records, _cost = app.payload.drain_records()
                    drained.extend(records)
                    app.payload.commits = {}
            targets = {
                name: system.instance(name).app.payload for name in new_backends
            }
            for rec in drained:
                p = partition_for(rec.key, n_partitions)
                targets[new_backends[p]].partition(p).append(rec.key, rec.value, ts=rec.ts)

        report = self.system.reconfigure(
            new_program, on_transfer=transfer, quiesce_grace=quiesce_grace
        )
        if report.ok and not report.rolled_back:
            old_counts = self.partition_counts
            self.n_partitions = n_partitions
            self.backends = new_backends
            self.partition_counts = (old_counts + [0] * n_partitions)[:n_partitions]
        return report


class ReplicatedBroker(FailoverService):
    """brokerlite behind the fail-over front-end: every command fans
    out to all registered replicas, so each replica's partition logs
    are full copies (warm replication).  Inherits the PR 8 leader-swap
    reconfiguration (``swap_backend``) and the fault plan."""

    def __init__(self, *, cost_model=None, n_partitions: int = 4, **kw):
        self.n_partitions = n_partitions

        def make_backend(i: int) -> BrokerServer:
            return BrokerServer(name=f"replica{i}", cost=cost_model)

        def exec_fn(app: BackApp, request: dict, now: float):
            server: BrokerServer = app.payload
            reply, cost = server.execute(request_from_dict(request), now=now)
            return reply_to_dict(reply), cost

        kw.setdefault("program_name", "broker_failover")
        super().__init__(make_backend, exec_fn, **kw)

    def partition_of(self, request: dict) -> int:
        if request["op"].upper() == "PUB":
            return partition_for(request["key"], self.n_partitions)
        return request.get("partition", 0) % self.n_partitions

    def submit(self, req: BrokerRequest, on_done: Callable[[BrokerReply], None]) -> None:
        d = request_to_dict(req)
        d["partition"] = self.partition_of(d)
        self.front.submit(d, lambda r: on_done(reply_from_dict(r)))

    def preload(self, records) -> None:
        for key, value in records:
            p = partition_for(key, self.n_partitions)
            for idx in range(len(self.back_instances())):
                self.backend_app(idx).payload.partition(p).append(key, value)

    def replica_record_counts(self) -> list[int]:
        return [
            self.backend_app(i).payload.records_stored()
            for i in range(len(self.back_instances()))
        ]
