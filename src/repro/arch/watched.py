"""The "watched" fail-over architecture (sec. 7.4, Figs. 15-17).

Two back-ends — o (preferred) and s (spare) — plus a watchdog w that
arbitrates liveness.  The front-end dispatches each request to the
focused back-end; while no watchdog verdict exists it dispatches to
both and takes whichever reply lands (the paper's "otherwise" arm).

The watchdog's junctions are guarded purely on instance liveness
(``S(.)``), so the embedding application schedules them periodically —
:class:`WatchedService` polls them at ``watch_interval``.
"""

from __future__ import annotations

from typing import Callable

from ..redislite.server import Command, RedisServer, Reply
from ..runtime.faults import FaultPlan
from ..runtime.system import System
from .loader import load_program
from .ports import BackApp, FrontApp


class WatchedService:
    """Request/reply service under watched fail-over."""

    def __init__(
        self,
        make_backend: Callable[[str], object],
        exec_fn: Callable[[BackApp, dict, float], tuple[dict, float]],
        *,
        latency: float = 100e-6,
        timeout: float = 0.3,
        seed: int = 0,
        watch_interval: float = 0.5,
    ):
        self.exec_fn = exec_fn
        self.program = load_program("watched_failover")
        self.system = System(self.program, latency=latency, seed=seed)
        sys_ = self.system

        self.front = FrontApp(sys_, "f::junction")
        sys_.bind_app("FT", lambda inst: self.front)
        sys_.bind_app("WT", lambda inst: object())
        sys_.bind_app("OT", lambda inst: BackApp(make_backend("o")))
        sys_.bind_app("ST", lambda inst: BackApp(make_backend("s")))
        self.watch_complaints = 0

        @sys_.host("FT", "H1")
        def _h1(ctx):
            req = ctx.app.begin_next()
            if req is None:
                from ..core.errors import DslFailure

                raise DslFailure("watched front scheduled with no request")
            ctx.take(5e-6)

        @sys_.host("FT", "H3")
        def _h3(ctx):
            ctx.app.respond()

        @sys_.host("FT", "Complain")
        def _f_complain(ctx):
            ctx.app.fail_current()

        def _backend_exec(ctx):
            app: BackApp = ctx.app
            if app.current is None:
                return
            reply, cost = self.exec_fn(app, app.current, ctx.now)
            app.set_reply(reply)
            ctx.take(cost)

        for tname in ("OT", "ST"):
            sys_.bind_host(tname, "H2", _backend_exec)
            sys_.bind_host(tname, "Complain", lambda ctx: None)
            sys_.bind_state(
                tname, data_name="n",
                save=lambda app, inst: app.current,
                restore=lambda app, inst, obj: app.receive(obj),
            )
            sys_.bind_state(
                tname, data_name="m",
                save=lambda app, inst: app.reply,
                restore=lambda app, inst, obj: None,
            )

        def _w_complain(ctx):
            self.watch_complaints += 1

        sys_.bind_host("WT", "Complain", _w_complain)

        sys_.bind_state(
            "FT", data_name="n",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: None,
        )
        sys_.bind_state(
            "FT", data_name="m",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: app.set_reply(obj),
        )

        sys_.start(t=timeout)
        self._arm_watch_poll(watch_interval)

    def _arm_watch_poll(self, interval: float) -> None:
        def poll():
            for j in ("w::co", "w::cs", "w::cunrecov"):
                if self.system.instance("w").alive:
                    self.system.poke(j)
            self.system.sim.call_after(interval, poll)

        self.system.sim.call_after(interval, poll)

    @property
    def sim(self):
        return self.system.sim

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(self.system)

    def focus(self) -> str:
        """Which back-end the front currently prefers."""
        failover = self.system.read_state("f::junction", "failover") is True
        nofailover = self.system.read_state("f::junction", "nofailover") is True
        if failover and not nofailover:
            return "s"
        if nofailover and not failover:
            return "o"
        return "both"


class WatchedRedis(WatchedService):
    """Watched fail-over over two redislite back-ends (RequestPort)."""

    def __init__(self, *, cost_model=None, **kw):
        def make_backend(name: str) -> RedisServer:
            return RedisServer(name=name, cost=cost_model)

        def exec_fn(app: BackApp, request: dict, now: float):
            server: RedisServer = app.payload
            cmd = Command(request["op"], request["key"], request.get("value", b""))
            reply, cost = server.execute(cmd, now=now)
            return ({"ok": reply.ok, "value": reply.value, "hit": reply.hit}, cost)

        super().__init__(make_backend, exec_fn, **kw)

    def submit(self, cmd: Command, on_done: Callable[[Reply], None]) -> None:
        request = {"op": cmd.op, "key": cmd.key, "value": cmd.value}

        def done(reply: dict | None):
            if reply is None:
                on_done(Reply(ok=False))
            else:
                on_done(Reply(ok=reply["ok"], value=reply["value"], hit=reply["hit"]))

        self.front.submit(request, done)

    def preload(self, commands) -> None:
        for cmd in commands:
            for b in ("o", "s"):
                self.system.instance(b).app.payload.execute(cmd, now=0.0)
