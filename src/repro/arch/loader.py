"""Loading the architecture library's DSL sources.

Architectures live as ``.csaw`` files under ``repro/arch/dsl``.  The
sharding program is parameterized by the number of back-ends (a
compile-time configuration parameter in the paper, sec. 5.2); the
loader expands the ``@BACKENDS@`` / ``@BACKSET@`` / ``@STARTS@``
placeholders before compilation.
"""

from __future__ import annotations

from pathlib import Path

from ..core.compiler import CompiledProgram, compile_program

_DSL_DIR = Path(__file__).parent / "dsl"

ARCHITECTURES = (
    "remote_snapshot",
    "sharding",
    "parallel_sharding",
    "caching",
    "checkpointing",
    "failover",
    "failover_fast",
    "migration",
    "elastic",
    "watched_failover",
    "broker_sharded",
    "broker_failover",
)


def dsl_path(name: str) -> Path:
    p = _DSL_DIR / f"{name}.csaw"
    if not p.exists():
        raise FileNotFoundError(f"no architecture {name!r}; have {ARCHITECTURES}")
    return p


def expand_placeholders(text: str, n_backends: int = 4) -> str:
    """Instantiate the ``@BACKENDS@`` / ``@BACKSET@`` / ``@STARTS@``
    placeholders of a back-end-parameterized source."""
    names = [f"Bck{i}" for i in range(1, n_backends + 1)]
    text = text.replace("@BACKENDS@", ", ".join(f"{b}: Back" for b in names))
    text = text.replace("@BACKSET@", "{" + ", ".join(names) + "}")
    text = text.replace("@STARTS@", " + ".join(f"start {b}(t)" for b in names))
    return text


def load_source(name: str, *, n_backends: int | None = None) -> str:
    """Read (and, for sharding, instantiate) an architecture source."""
    text = dsl_path(name).read_text()
    if "@BACKENDS@" in text:
        text = expand_placeholders(text, n_backends or 4)
    elif n_backends is not None:
        raise ValueError(f"architecture {name!r} is not parameterized by back-end count")
    return text


def load_program(name: str, *, n_backends: int | None = None, config=None) -> CompiledProgram:
    """Load and compile an architecture."""
    return compile_program(load_source(name, n_backends=n_backends), config=config)


def backend_names(n: int) -> list[str]:
    return [f"Bck{i}" for i in range(1, n + 1)]
