"""The checkpointing architecture applied to redislite and suricatalite.

Wraps any *checkpointable* substrate — something exposing
``checkpoint() -> (snapshot, stall_cost)`` and
``restore(snapshot) -> stall_cost`` — in ``dsl/checkpointing.csaw``:
periodic snapshots are pushed to a remote ``Aud`` instance, and after a
crash the harness asserts ``RestoreReq`` so ``Aud`` pushes the last
snapshot back (push-based restore; junctions cannot pull).

The protected service keeps serving its own clients (e.g. through a
``DirectPort``); the ``Freeze`` host block stalls that service for the
checkpoint's serialization cost, reproducing the single-threaded dips
of Figs. 23a / 24a.
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..runtime.engine import SimEngine
from ..runtime.faults import FaultPlan
from ..runtime.system import System
from .loader import load_program


class Checkpointable(Protocol):
    def checkpoint(self) -> tuple[dict, float]: ...
    def restore(self, snapshot: dict) -> float: ...


class _ActApp:
    def __init__(self, service: "CheckpointedService"):
        self.service = service
        self.pending_snapshot: dict | None = None
        self.freeze_cost = 0.0

    def take_snapshot(self) -> dict:
        snap, cost = self.service.target.checkpoint()
        self.freeze_cost = cost
        return snap

    def apply_snapshot(self, snap: dict) -> None:
        cost = self.service.target.restore(snap)
        self.service._stall(cost)
        self.service.restores += 1


class _AudApp:
    def __init__(self):
        self.last_snapshot: dict | None = None
        self.snapshots_stored = 0

    def store(self, snap: dict) -> None:
        self.last_snapshot = snap
        self.snapshots_stored += 1


class CheckpointedService:
    """Periodic checkpointing + crash recovery for a substrate.

    ``stall`` is how the architecture freezes the protected service —
    e.g. ``DirectPort.stall`` for redislite, or a packet feeder's pause
    for suricatalite.
    """

    def __init__(
        self,
        target: Checkpointable,
        stall: Callable[[float], None],
        *,
        latency: float = 200e-6,
        timeout: float = 5.0,
        seed: int = 0,
        system: System | None = None,
        sim=None,
    ):
        self.target = target
        self._stall_fn = stall
        self.program = load_program("checkpointing")
        self.system = system or System(
            self.program, latency=latency, seed=seed,
            engine=SimEngine(sim) if sim is not None else None,
        )
        self.checkpoints = 0
        self.restores = 0
        self.checkpoint_times: list[float] = []

        sys_ = self.system
        self.act = _ActApp(self)
        self.aud = _AudApp()
        sys_.bind_app("Actual", lambda inst: self.act)
        sys_.bind_app("Auditing", lambda inst: self.aud)

        @sys_.host("Actual", "Freeze")
        def _freeze(ctx):
            # the snapshot is taken by the save provider right after
            # this block; we pre-compute it here so the stall (the
            # single-threaded serialization) is charged before shipping
            ctx.app.pending_snapshot = ctx.app.take_snapshot()
            self._stall(ctx.app.freeze_cost)
            ctx.take(ctx.app.freeze_cost)
            self.checkpoints += 1
            self.checkpoint_times.append(ctx.now)

        @sys_.host("Actual", "Resumed")
        def _resumed(ctx):
            pass

        @sys_.host("Actual", "Complain")
        def _act_complain(ctx):
            pass

        @sys_.host("Auditing", "Complain")
        def _aud_complain(ctx):
            pass

        sys_.bind_state(
            "Actual", data_name="n",
            save=lambda app, inst: app.pending_snapshot,
            restore=lambda app, inst, obj: app.apply_snapshot(obj),
        )
        sys_.bind_state(
            "Auditing", data_name="n",
            save=lambda app, inst: app.last_snapshot,
            restore=lambda app, inst, obj: app.store(obj),
        )

        sys_.start(t=timeout)

    def _stall(self, cost: float) -> None:
        if cost > 0:
            self._stall_fn(cost)

    @property
    def sim(self):
        return self.system.sim

    # -- harness controls ---------------------------------------------------

    def checkpoint_now(self) -> None:
        self.system.external_update("Act::snap", "SnapDue", True)

    def schedule_checkpoints(self, interval: float, until: float, first: float | None = None) -> None:
        t = first if first is not None else interval
        while t <= until:
            self.system.sim.call_at(t, self.checkpoint_now)
            t += interval

    def crash(self) -> None:
        self.system.crash_instance("Act")

    def recover(self) -> None:
        """Restart the crashed Act and push the last snapshot back."""
        self.system.restart_instance("Act")
        self.system.external_update("Aud::restorer", "RestoreReq", True)

    def fault_plan(self) -> FaultPlan:
        return FaultPlan(self.system)
