"""Live migration applied to redislite (extension; see
``dsl/migration.csaw``).

:class:`MigratableRedis` serves requests through the currently-active
node and can live-migrate the dataset to the other node:
snapshot → transfer → install → switch, all expressed in the DSL, with
the routing policy (which node is active) living in host-language
state, exactly where the paper draws the line between architecture and
application logic.
"""

from __future__ import annotations

from typing import Callable

from ..redislite.server import Command, CostModel, RedisServer, Reply
from ..runtime.system import System
from .loader import load_program
from .ports import BackApp, FrontApp

_NODES = ("NodeA", "NodeB")


class _RouterApp(FrontApp):
    def __init__(self, system: System, node: str):
        super().__init__(system, node)
        self.active = "NodeA"
        self.migration_plan: tuple[str, str] | None = None
        self.migrations = 0
        self.migration_done_cb: Callable[[], None] | None = None


class MigratableRedis:
    """A redislite service whose dataset can live-migrate between two
    nodes (RequestPort)."""

    def __init__(
        self,
        *,
        cost_model: CostModel | None = None,
        latency: float = 100e-6,
        timeout: float = 0.5,
        seed: int = 0,
    ):
        self.program = load_program("migration")
        self.system = System(self.program, latency=latency, seed=seed)
        sys_ = self.system

        self.front = _RouterApp(sys_, "Fnt::route")
        sys_.bind_app("Front", lambda inst: self.front)
        sys_.bind_app(
            "Node",
            lambda inst: BackApp(RedisServer(name=inst.name, cost=cost_model)),
        )

        @sys_.host("Front", "PickActive")
        def _pick(ctx):
            req = ctx.app.begin_next()
            if req is None:
                from ..core.errors import DslFailure

                raise DslFailure("router scheduled with no pending request")
            ctx.set("active", f"{ctx.app.active}::serve")

        @sys_.host("Front", "Respond")
        def _respond(ctx):
            ctx.app.respond()

        @sys_.host("Front", "Complain")
        def _complain(ctx):
            if ctx.junction == "route":
                ctx.app.fail_current()
            # a failed migration leaves routing untouched
            elif ctx.app.migration_done_cb is not None:
                cb, ctx.app.migration_done_cb = ctx.app.migration_done_cb, None
                cb(False)

        @sys_.host("Front", "PlanMigration")
        def _plan(ctx):
            src, dst = ctx.app.migration_plan
            ctx.set("src", f"{src}::ctl")
            ctx.set("dst", f"{dst}::ctl")

        @sys_.host("Front", "SwitchActive")
        def _switch(ctx):
            _src, dst = ctx.app.migration_plan
            ctx.app.active = dst
            ctx.app.migrations += 1
            if ctx.app.migration_done_cb is not None:
                cb, ctx.app.migration_done_cb = ctx.app.migration_done_cb, None
                cb(True)

        @sys_.host("Node", "Exec")
        def _exec(ctx):
            app: BackApp = ctx.app
            if app.current is None:
                return
            req = app.current
            server: RedisServer = app.payload
            reply, cost = server.execute(
                Command(req["op"], req["key"], req.get("value", b"")), now=ctx.now
            )
            app.set_reply({"ok": reply.ok, "value": reply.value, "hit": reply.hit})
            ctx.take(cost)

        @sys_.host("Node", "Freeze")
        def _freeze(ctx):
            server: RedisServer = ctx.app.payload
            _snap, cost = server.checkpoint()
            ctx.take(cost)

        @sys_.host("Node", "Complain")
        def _node_complain(ctx):
            pass

        sys_.bind_state(
            "Front", data_name="n",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: None,
        )
        sys_.bind_state(
            "Front", data_name="m",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: app.set_reply(obj),
        )
        sys_.bind_state(
            "Front", data_name="state",
            save=lambda app, inst: None,   # state only passes through
            restore=lambda app, inst, obj: None,
        )
        sys_.bind_state(
            "Node", data_name="n",
            save=lambda app, inst: app.current,
            restore=lambda app, inst, obj: app.receive(obj),
        )
        sys_.bind_state(
            "Node", data_name="m",
            save=lambda app, inst: app.reply,
            restore=lambda app, inst, obj: None,
        )
        sys_.bind_state(
            "Node", data_name="state",
            save=lambda app, inst: app.payload.checkpoint()[0],
            restore=lambda app, inst, obj: app.payload.restore(obj),
        )

        sys_.start(t=timeout)

    @property
    def sim(self):
        return self.system.sim

    @property
    def active(self) -> str:
        return self.front.active

    def node_server(self, name: str) -> RedisServer:
        return self.system.instance(name).app.payload

    # -- RequestPort -------------------------------------------------------

    def submit(self, cmd: Command, on_done: Callable[[Reply], None]) -> None:
        request = {"op": cmd.op, "key": cmd.key, "value": cmd.value}

        def done(reply: dict | None):
            if reply is None:
                on_done(Reply(ok=False))
            else:
                on_done(Reply(ok=reply["ok"], value=reply["value"], hit=reply["hit"]))

        self.front.submit(request, done)

    def preload(self, commands) -> None:
        server = self.node_server(self.front.active)
        for cmd in commands:
            server.execute(cmd, now=0.0)

    # -- migration -----------------------------------------------------------

    def migrate(self, dst: str, on_done: Callable[[bool], None] | None = None) -> None:
        """Live-migrate the dataset from the active node to ``dst``."""
        if dst not in _NODES:
            raise ValueError(f"unknown node {dst!r}")
        src = self.front.active
        if src == dst:
            raise ValueError("destination is already active")
        self.front.migration_plan = (src, dst)
        self.front.migration_done_cb = on_done
        self.system.external_update("Fnt::migrate", "MigrateReq", True)
