"""Stable public facade of the reproduction.

Import from here (or from :mod:`repro` itself) rather than from the
internal module layout — ``repro.runtime.*`` / ``repro.core.*`` paths
are implementation detail and may move between releases; this module's
``__all__`` is the compatibility surface::

    from repro.api import System, Simulator, Telemetry, load_program

    system = System(load_program("sharding", n_backends=4))
    system.start(t=5.0)
    system.run_until(60.0)
    print(system.telemetry.export("jsonl"))

The surface covers the four things an embedding application touches:

* **the DSL** — ``parse_program`` / ``compile_program`` plus the
  packaged paper architectures via ``load_program`` / ``ARCHITECTURES``;
* **the runtime** — ``System``, the pluggable execution engines
  (``SimEngine`` / ``RealtimeEngine`` / ``ClusterEngine`` via
  ``create_engine`` / ``default_engine``, selected uniformly through
  ``EngineSpec``; see ``docs/RUNTIME.md``), the ``Simulator`` clock,
  and the delivery/fault knobs (``DeliveryPolicy``, ``FaultPlan``,
  ``BackoffPolicy``, ``ChaosConfig`` / ``ChaosEngine`` /
  ``SoakHarness``);
* **the compiler** — junction compilation happens automatically at
  ``System`` build time; ``compilation`` / ``compile_default`` select
  the mode, ``generated_source`` dumps a junction's generated Python
  for debugging, and ``compile_junction_code`` is the per-junction
  entry point (see ``docs/RUNTIME.md``);
* **the semantics** — ``denote_junction`` maps one junction to its
  event structure (``expand=False`` for the linear-size unexpanded
  form used by analysis/compile consumers);
* **reconfiguration** — live architecture transitions: ``diff_programs``
  produces an ``ArchDiff``, ``plan_transition`` compiles it to a
  per-instance ``TransitionPlan``, and ``System.reconfigure`` applies
  it to a running system with zero dropped requests (returns a
  ``ReconfigReport``); see ``docs/RECONFIG.md``;
* **observability** — the ``Telemetry`` facade (``system.telemetry``)
  and its metric/exporter types; see ``docs/OBSERVABILITY.md``;
* **errors** — the ``CSawError`` hierarchy root and the failure types
  an application is expected to catch.
"""

from __future__ import annotations

from .arch.loader import ARCHITECTURES, backend_names, load_program, load_source
from .compile import (
    JunctionCode,
    compilation,
    compile_default,
    compile_junction_code,
    generated_source,
)
from .core.compiler import CompiledProgram, compile_program
from .core.errors import CSawError, DeliveryFailure, DslFailure
from .core.parser import parse_program
from .reconfig import (
    ArchDiff,
    ReconfigError,
    ReconfigReport,
    TransitionPlan,
    apply_diff,
    diff_programs,
    plan_transition,
    program_signature,
)
from .runtime import (
    BackoffPolicy,
    ChaosConfig,
    ChaosEngine,
    ClusterEngine,
    DeliveryPolicy,
    EngineSpec,
    ExecutionEngine,
    FaultPlan,
    HostContext,
    RealtimeEngine,
    SimEngine,
    Simulator,
    SoakHarness,
    System,
    create_engine,
    default_engine,
)
from .semantics import denote_junction
from .telemetry import (
    MetricsRegistry,
    RingBufferSink,
    Telemetry,
    TraceEvent,
    capture_systems,
)

__all__ = [
    # DSL
    "ARCHITECTURES",
    "CompiledProgram",
    "backend_names",
    "compile_program",
    "load_program",
    "load_source",
    "parse_program",
    # semantics
    "denote_junction",
    # compiler
    "JunctionCode",
    "compilation",
    "compile_default",
    "compile_junction_code",
    "generated_source",
    # runtime
    "BackoffPolicy",
    "ChaosConfig",
    "ChaosEngine",
    "ClusterEngine",
    "DeliveryPolicy",
    "EngineSpec",
    "ExecutionEngine",
    "FaultPlan",
    "HostContext",
    "RealtimeEngine",
    "SimEngine",
    "Simulator",
    "SoakHarness",
    "System",
    "create_engine",
    "default_engine",
    # reconfiguration
    "ArchDiff",
    "ReconfigError",
    "ReconfigReport",
    "TransitionPlan",
    "apply_diff",
    "diff_programs",
    "plan_transition",
    "program_signature",
    # observability
    "MetricsRegistry",
    "RingBufferSink",
    "Telemetry",
    "TraceEvent",
    "capture_systems",
    # errors
    "CSawError",
    "DeliveryFailure",
    "DslFailure",
]
