"""repro — a Python reproduction of C-Saw.

C-Saw ("see-saw") is an embedded DSL for expressing the *architecture*
of distributed software separately from its application logic, from the
paper "A Domain-Specific Language for Reconfigurable, Distributed
Software Architecture" (Zhu, Zhao, Sultana).

Package map:

* :mod:`repro.core` — the DSL: AST, parser, validation, template
  expansion, compilation, topology extraction.
* :mod:`repro.semantics` — formal event-structure semantics.
* :mod:`repro.runtime` — deterministic distributed runtime (the
  libcompart stand-in): simulated network, KV tables, interpreter.
* :mod:`repro.serde` — C-strider-style serialization framework.
* :mod:`repro.redislite` / :mod:`repro.curlite` /
  :mod:`repro.suricatalite` — substrates standing in for the paper's
  third-party systems.
* :mod:`repro.arch` — the paper's architectures as DSL programs.
* :mod:`repro.direct` — direct (non-DSL) control implementations for
  the effort study.

Quick start::

    from repro import compile_program, System

    prog = compile_program(dsl_text)
    system = System(prog)
    system.start(t=5.0)
    system.run_until(100.0)

The stable import surface is :mod:`repro.api` — everything an
embedding application needs (System, Simulator, Telemetry, the arch
loaders, chaos/fault knobs) without reaching into internal modules.
"""

from .core import compile_program, parse_program
from .runtime import FaultPlan, System
from .telemetry import Telemetry

__version__ = "1.0.0"

__all__ = [
    "FaultPlan",
    "System",
    "Telemetry",
    "compile_program",
    "parse_program",
    "__version__",
]
