"""Command-line interface: ``python -m repro <command> <file.csaw>``.

Commands:

* ``check``     — parse + validate + compile; report errors with positions.
                  ``--strict`` folds in the analyzer's fast (key-flow)
                  checks and fails on unsuppressed errors.
* ``analyze``   — static analysis: KV write-write races, dead junctions
                  and case arms, host write-contract violations, unused
                  keys.  Accepts a ``.csaw`` file, a shipped
                  architecture name, or an example ``.py`` script
                  (analyzes every program its Systems load).
                  ``--fail-on race,dead,contract`` exits 2 when any
                  unsuppressed *error* finding of those checks remains.
* ``fmt``       — pretty-print (normalize) an architecture file.
* ``topo``      — print the communication topology (sec. 8.7's Topo).
* ``semantics`` — print the event-structure semantics per junction
                  (``--dot`` for Graphviz output).
* ``loc``       — count non-blank, non-comment lines.
* ``trace``     — run an architecture (a ``.csaw`` file or an example
                  ``.py`` script) with telemetry on and export the
                  causal trace as JSONL or Chrome trace-event JSON
                  (loadable in ``chrome://tracing`` / Perfetto).

Configuration values (set contents, parameters) are supplied as
``--config name=value`` pairs; values parse as numbers, comma-separated
lists, or names.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.compiler import compile_program
from .core.emit import emit_program
from .core.errors import CSawError
from .core.parser import parse_program
from .core.topology import topology
from .semantics.program_sem import denote_program
from .semantics.render import to_dot, to_text


def _parse_config(pairs: list[str]) -> dict:
    out: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--config expects name=value, got {pair!r}")
        name, _, raw = pair.partition("=")
        if "," in raw:
            out[name] = [_scalar(v) for v in raw.split(",") if v]
        else:
            out[name] = _scalar(raw)
    return out


def _scalar(raw: str) -> object:
    try:
        return float(raw) if "." in raw else int(raw)
    except ValueError:
        return raw


def cmd_check(args) -> int:
    text = Path(args.file).read_text()
    prog = compile_program(text, config=_parse_config(args.config))
    print(f"OK: {len(prog.source.instance_types)} type(s), "
          f"{len(prog.source.instances)} instance(s), "
          f"{len(prog.junctions)} junction(s), "
          f"{len(prog.source.functions)} function(s)")
    if not args.strict:
        return 0
    from .analysis import fast_checks

    report = fast_checks(
        prog, _parse_config(args.config), source_text=text, label=args.file
    )
    sys.stdout.write(report.render_text())
    errors = [f for f in report.unsuppressed() if f.severity == "error"]
    return 2 if errors else 0


def _analysis_sources(args) -> list[tuple[str, object, str | None]]:
    """Resolve the ``analyze`` argument to ``(label, program-or-text,
    source_text)`` items: a shipped architecture name, a ``.csaw``
    file (placeholders expanded), or a ``.py`` script whose Systems'
    programs are captured while it runs."""
    from .arch.loader import ARCHITECTURES, expand_placeholders, load_source

    name = args.file
    if name in ARCHITECTURES:
        text = load_source(name)
        return [(name, text, text)]
    path = Path(name)
    if path.suffix == ".py":
        import contextlib
        import runpy

        from .analysis.capture import capture_programs

        argv = sys.argv
        sys.argv = [str(path)]
        try:
            with capture_programs() as captured, contextlib.redirect_stdout(sys.stderr):
                runpy.run_path(str(path), run_name="__main__")
        finally:
            sys.argv = argv
        if not captured:
            raise SystemExit(f"error: {name} constructed no System to analyze")
        labels = (
            [str(path)]
            if len(captured) == 1
            else [f"{path}#{i}" for i in range(len(captured))]
        )
        return [(lbl, prog, None) for lbl, prog in zip(labels, captured)]
    text = path.read_text()
    if "@BACKENDS@" in text:
        text = expand_placeholders(text)
    return [(str(path), text, text)]


def cmd_analyze(args) -> int:
    import json

    from .analysis import analyze_program, analyze_source
    from .analysis.model import CHECKS

    fail_on: tuple[str, ...] = ()
    if args.fail_on:
        fail_on = tuple(c.strip() for c in args.fail_on.split(",") if c.strip())
        bad = [c for c in fail_on if c not in CHECKS]
        if bad:
            raise SystemExit(
                f"error: --fail-on accepts {','.join(CHECKS)}; got {','.join(bad)}"
            )

    config = _parse_config(args.config)
    reports = []
    for label, source, text in _analysis_sources(args):
        if isinstance(source, str):
            reports.append(
                analyze_source(
                    source,
                    config,
                    label=label,
                    deep=not args.fast,
                    max_unfold=args.max_unfold,
                )
            )
        else:  # a captured CompiledProgram from a .py script
            reports.append(
                analyze_program(
                    source,
                    config,
                    source_text=text,
                    label=label,
                    deep=not args.fast,
                    max_unfold=args.max_unfold,
                )
            )

    if args.json:
        payload = (
            reports[0].to_json()
            if len(reports) == 1
            else [r.to_json() for r in reports]
        )
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for r in reports:
            sys.stdout.write(r.render_text())

    if fail_on:
        failing = [
            f
            for r in reports
            for f in r.unsuppressed(fail_on)
            if f.severity == "error"
        ]
        if failing:
            print(
                f"analyze: {len(failing)} failing finding(s) "
                f"(--fail-on {','.join(fail_on)})",
                file=sys.stderr,
            )
            return 2
    return 0


def cmd_fmt(args) -> int:
    text = Path(args.file).read_text()
    out = emit_program(parse_program(text))
    if args.write:
        Path(args.file).write_text(out)
        print(f"formatted {args.file}")
    else:
        sys.stdout.write(out)
    return 0


def cmd_topo(args) -> int:
    text = Path(args.file).read_text()
    prog = compile_program(text, config=_parse_config(args.config))
    g = topology(prog)
    print(f"# {g.number_of_nodes()} junction(s), {g.number_of_edges()} edge(s)")
    for src, dst in sorted(g.edges()):
        print(f"{src} -> {dst}")
    return 0


def cmd_semantics(args) -> int:
    text = Path(args.file).read_text()
    prog = compile_program(text, config=_parse_config(args.config))
    sem = denote_program(prog, _parse_config(args.config))
    if args.dot:
        print(to_dot(sem.startup, "startup"))
        for node, es in sorted(sem.junctions.items()):
            print(to_dot(es, node))
    else:
        print("== startup ==")
        print(to_text(sem.startup))
        for node, es in sorted(sem.junctions.items()):
            print(f"\n== {node} ==")
            print(to_text(es))
    return 0


def cmd_loc(args) -> int:
    from .arch.loc import count_loc_text

    text = Path(args.file).read_text()
    print(count_loc_text(text))
    return 0


def _trace_py(path: Path) -> list:
    """Run a Python script, capturing the telemetry of every System it
    constructs.  The script's stdout goes to stderr so the export owns
    stdout."""
    import contextlib
    import runpy

    from .telemetry.facade import capture_systems

    argv = sys.argv
    sys.argv = [str(path)]
    try:
        with capture_systems() as captured, contextlib.redirect_stdout(sys.stderr):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return captured


def _trace_csaw(path: Path, config: dict, until: float) -> list:
    from .runtime.system import System

    prog = compile_program(path.read_text(), config=config)
    system = System(prog)
    system.start()
    system.run_until(until)
    return [system.telemetry]


def cmd_trace(args) -> int:
    from .telemetry.sinks import chrome_json, to_jsonl

    path = Path(args.file)
    if path.suffix == ".py":
        telemetries = _trace_py(path)
    else:
        telemetries = _trace_csaw(path, _parse_config(args.config), args.until)
    if not telemetries:
        print("error: the traced program constructed no System", file=sys.stderr)
        return 1

    labels = (
        ["system"]
        if len(telemetries) == 1
        else [f"system{i}" for i in range(len(telemetries))]
    )
    if args.format == "chrome":
        out = chrome_json(
            [(lbl, tel.events) for lbl, tel in zip(labels, telemetries)]
        )
    else:
        out = "".join(
            to_jsonl(tel.events, system=None if len(telemetries) == 1 else lbl)
            for lbl, tel in zip(labels, telemetries)
        )
    if args.out:
        Path(args.out).write_text(out)
        total = sum(len(tel.events) for tel in telemetries)
        print(f"wrote {total} event(s) to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="C-Saw architecture tooling"
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("file", help="a .csaw architecture file")
        sp.add_argument(
            "--config", action="append", default=[], metavar="NAME=VALUE",
            help="load-time configuration (sets, parameters); repeatable",
        )

    sp = sub.add_parser("check", help="parse, validate and compile")
    common(sp)
    sp.add_argument(
        "--strict", action="store_true",
        help="also run the analyzer's fast checks; exit 2 on errors",
    )
    sp.set_defaults(fn=cmd_check)

    sp = sub.add_parser(
        "analyze", help="static analysis: races, dead code, host contracts"
    )
    sp.add_argument(
        "file",
        help="a .csaw file, a shipped architecture name, or an example .py script",
    )
    sp.add_argument(
        "--config", action="append", default=[], metavar="NAME=VALUE",
        help="load-time configuration (sets, parameters); repeatable",
    )
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    sp.add_argument(
        "--fail-on", metavar="CHECKS", default="",
        help="comma-separated checks (race,dead,contract,unused); exit 2 "
             "when any unsuppressed error finding of these checks remains",
    )
    sp.add_argument(
        "--fast", action="store_true",
        help="key-flow checks only (skip event-structure denotation)",
    )
    sp.add_argument(
        "--max-unfold", type=int, default=1,
        help="reconsider/retry unfolding depth for the deep pass (default: 1)",
    )
    sp.set_defaults(fn=cmd_analyze)

    sp = sub.add_parser("fmt", help="pretty-print / normalize")
    sp.add_argument("file")
    sp.add_argument("--write", action="store_true", help="rewrite in place")
    sp.set_defaults(fn=cmd_fmt)

    sp = sub.add_parser("topo", help="print the communication topology")
    common(sp)
    sp.set_defaults(fn=cmd_topo)

    sp = sub.add_parser("semantics", help="print event-structure semantics")
    common(sp)
    sp.add_argument("--dot", action="store_true", help="Graphviz output")
    sp.set_defaults(fn=cmd_semantics)

    sp = sub.add_parser("loc", help="count effective lines of code")
    sp.add_argument("file")
    sp.set_defaults(fn=cmd_loc)

    sp = sub.add_parser(
        "trace", help="run with telemetry and export the causal trace"
    )
    sp.add_argument("file", help="a .csaw architecture or an example .py script")
    sp.add_argument(
        "--config", action="append", default=[], metavar="NAME=VALUE",
        help="load-time configuration (for .csaw files); repeatable",
    )
    sp.add_argument(
        "--format", choices=("jsonl", "chrome"), default="jsonl",
        help="export format (default: jsonl)",
    )
    sp.add_argument(
        "--until", type=float, default=60.0,
        help="simulated seconds to run a .csaw file for (default: 60)",
    )
    sp.add_argument("--out", help="write to this file instead of stdout")
    sp.set_defaults(fn=cmd_trace)

    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CSawError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    except FileNotFoundError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
