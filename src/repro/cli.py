"""Command-line interface: ``python -m repro <command> <file.csaw>``.

Commands:

* ``check``     — parse + validate + compile; report errors with positions.
                  ``--strict`` folds in the analyzer's fast (key-flow)
                  checks and fails on unsuppressed errors.
* ``analyze``   — static analysis: KV write-write races, dead junctions
                  and case arms, host write-contract violations, unused
                  keys.  Accepts a ``.csaw`` file, a shipped
                  architecture name, or an example ``.py`` script
                  (analyzes every program its Systems load).
                  ``--fail-on race,dead,contract`` exits 2 when any
                  unsuppressed *error* finding of those checks remains.
* ``fmt``       — pretty-print (normalize) an architecture file.
* ``topo``      — print the communication topology (sec. 8.7's Topo).
* ``semantics`` — print the event-structure semantics per junction
                  (``--dot`` for Graphviz output).
* ``loc``       — count non-blank, non-comment lines.
* ``trace``     — run an architecture (a ``.csaw`` file or an example
                  ``.py`` script) with telemetry on and export the
                  causal trace as JSONL or Chrome trace-event JSON
                  (loadable in ``chrome://tracing`` / Perfetto).
* ``explore``   — controlled-scheduler interleaving search: run a
                  shipped architecture name, a ``.csaw`` file or a
                  ``.py`` scenario script under every reachable
                  schedule (``--strategy dpor|bfs|dfs|random``,
                  ``--budget N``), checking invariants over each final
                  state.  Failing interleavings serialize as replayable
                  JSON (``--replay schedule.json`` reproduces the exact
                  run, byte-identical telemetry); ``--witness-races``
                  attempts a concrete witness schedule for every static
                  race finding.

Configuration values (set contents, parameters) are supplied as
``--config name=value`` pairs; values parse as numbers, comma-separated
lists, or names.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.compiler import compile_program
from .core.emit import emit_program
from .core.errors import CSawError
from .core.parser import parse_program
from .core.topology import topology
from .semantics.program_sem import denote_program
from .semantics.render import to_dot, to_text


def _parse_config(pairs: list[str]) -> dict:
    out: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--config expects name=value, got {pair!r}")
        name, _, raw = pair.partition("=")
        if "," in raw:
            out[name] = [_scalar(v) for v in raw.split(",") if v]
        else:
            out[name] = _scalar(raw)
    return out


def _scalar(raw: str) -> object:
    try:
        return float(raw) if "." in raw else int(raw)
    except ValueError:
        return raw


def cmd_check(args) -> int:
    text = Path(args.file).read_text()
    prog = compile_program(text, config=_parse_config(args.config))
    print(f"OK: {len(prog.source.instance_types)} type(s), "
          f"{len(prog.source.instances)} instance(s), "
          f"{len(prog.junctions)} junction(s), "
          f"{len(prog.source.functions)} function(s)")
    if not args.strict:
        return 0
    from .analysis import fast_checks

    report = fast_checks(
        prog, _parse_config(args.config), source_text=text, label=args.file
    )
    sys.stdout.write(report.render_text())
    errors = [f for f in report.unsuppressed() if f.severity == "error"]
    return 2 if errors else 0


def _analysis_sources(args) -> list[tuple[str, object, str | None]]:
    """Resolve the ``analyze`` argument to ``(label, program-or-text,
    source_text)`` items: a shipped architecture name, a ``.csaw``
    file (placeholders expanded), or a ``.py`` script whose Systems'
    programs are captured while it runs."""
    from .arch.loader import ARCHITECTURES, expand_placeholders, load_source

    name = args.file
    if name in ARCHITECTURES:
        text = load_source(name)
        return [(name, text, text)]
    path = Path(name)
    if path.suffix == ".py":
        import contextlib
        import runpy

        from .analysis.capture import capture_programs

        argv = sys.argv
        sys.argv = [str(path)]
        try:
            with capture_programs() as captured, contextlib.redirect_stdout(sys.stderr):
                runpy.run_path(str(path), run_name="__main__")
        finally:
            sys.argv = argv
        if not captured:
            raise SystemExit(f"error: {name} constructed no System to analyze")
        labels = (
            [str(path)]
            if len(captured) == 1
            else [f"{path}#{i}" for i in range(len(captured))]
        )
        return [(lbl, prog, None) for lbl, prog in zip(labels, captured)]
    text = path.read_text()
    if "@BACKENDS@" in text:
        text = expand_placeholders(text)
    return [(str(path), text, text)]


def cmd_analyze(args) -> int:
    import json

    from .analysis import analyze_program, analyze_source
    from .analysis.model import CHECKS

    fail_on: tuple[str, ...] = ()
    if args.fail_on:
        fail_on = tuple(c.strip() for c in args.fail_on.split(",") if c.strip())
        bad = [c for c in fail_on if c not in CHECKS]
        if bad:
            raise SystemExit(
                f"error: --fail-on accepts {','.join(CHECKS)}; got {','.join(bad)}"
            )

    config = _parse_config(args.config)
    reports = []
    for label, source, text in _analysis_sources(args):
        if isinstance(source, str):
            reports.append(
                analyze_source(
                    source,
                    config,
                    label=label,
                    deep=not args.fast,
                    max_unfold=args.max_unfold,
                )
            )
        else:  # a captured CompiledProgram from a .py script
            reports.append(
                analyze_program(
                    source,
                    config,
                    source_text=text,
                    label=label,
                    deep=not args.fast,
                    max_unfold=args.max_unfold,
                )
            )

    if args.json:
        payload = (
            reports[0].to_json()
            if len(reports) == 1
            else [r.to_json() for r in reports]
        )
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for r in reports:
            sys.stdout.write(r.render_text())

    if fail_on:
        failing = [
            f
            for r in reports
            for f in r.unsuppressed(fail_on)
            if f.severity == "error"
        ]
        if failing:
            print(
                f"analyze: {len(failing)} failing finding(s) "
                f"(--fail-on {','.join(fail_on)})",
                file=sys.stderr,
            )
            return 2
    return 0


def cmd_fmt(args) -> int:
    text = Path(args.file).read_text()
    out = emit_program(parse_program(text))
    if args.write:
        Path(args.file).write_text(out)
        print(f"formatted {args.file}")
    else:
        sys.stdout.write(out)
    return 0


def cmd_topo(args) -> int:
    text = Path(args.file).read_text()
    prog = compile_program(text, config=_parse_config(args.config))
    g = topology(prog)
    print(f"# {g.number_of_nodes()} junction(s), {g.number_of_edges()} edge(s)")
    for src, dst in sorted(g.edges()):
        print(f"{src} -> {dst}")
    return 0


def cmd_semantics(args) -> int:
    text = Path(args.file).read_text()
    prog = compile_program(text, config=_parse_config(args.config))
    sem = denote_program(prog, _parse_config(args.config))
    if args.dot:
        print(to_dot(sem.startup, "startup"))
        for node, es in sorted(sem.junctions.items()):
            print(to_dot(es, node))
    else:
        print("== startup ==")
        print(to_text(sem.startup))
        for node, es in sorted(sem.junctions.items()):
            print(f"\n== {node} ==")
            print(to_text(es))
    return 0


def cmd_loc(args) -> int:
    from .arch.loc import count_loc_text

    text = Path(args.file).read_text()
    print(count_loc_text(text))
    return 0


def _trace_py(path: Path) -> list:
    """Run a Python script, capturing the telemetry of every System it
    constructs.  The script's stdout goes to stderr so the export owns
    stdout."""
    import contextlib
    import runpy

    from .telemetry.facade import capture_systems

    argv = sys.argv
    sys.argv = [str(path)]
    try:
        with capture_systems() as captured, contextlib.redirect_stdout(sys.stderr):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return captured


def _trace_csaw(path: Path, config: dict, until: float) -> list:
    from .runtime.system import System

    prog = compile_program(path.read_text(), config=config)
    system = System(prog)
    system.start()
    system.run_until(until)
    return [system.telemetry]


def cmd_trace(args) -> int:
    from .telemetry.sinks import chrome_json, to_jsonl

    path = Path(args.file)
    if path.suffix == ".py":
        telemetries = _trace_py(path)
    else:
        telemetries = _trace_csaw(path, _parse_config(args.config), args.until)
    if not telemetries:
        print("error: the traced program constructed no System", file=sys.stderr)
        return 1

    labels = (
        ["system"]
        if len(telemetries) == 1
        else [f"system{i}" for i in range(len(telemetries))]
    )
    if args.format == "chrome":
        out = chrome_json(
            [(lbl, tel.events) for lbl, tel in zip(labels, telemetries)]
        )
    else:
        out = "".join(
            to_jsonl(tel.events, system=None if len(telemetries) == 1 else lbl)
            for lbl, tel in zip(labels, telemetries)
        )
    if args.out:
        Path(args.out).write_text(out)
        total = sum(len(tel.events) for tel in telemetries)
        print(f"wrote {total} event(s) to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(out)
    return 0


def _stub_bindings(system) -> list[str]:
    """Bind no-op host functions and empty state providers for every
    unbound ⌊H⌉ block / save schema, so a bare ``.csaw`` architecture
    runs to completion without an embedding application."""
    from .core import ast as A
    from .runtime.instance import StateProviders

    stubbed: list[str] = []
    for tname, trt in sorted(system.types.items()):
        declared: set[str] = set()
        for cj in trt.junctions.values():
            for e in A.walk(cj.body):
                if isinstance(e, A.HostBlock):
                    declared.add(e.name)
        for name in sorted(declared - set(trt.host_fns)):
            trt.bind_host(name, lambda ctx: None)
            stubbed.append(f"{tname}.{name}")
        if trt.state.save is None:
            trt.state = StateProviders(
                save=lambda app, inst: {},
                restore=lambda app, inst, obj: None,
            )
    return stubbed


def cmd_run(args) -> int:
    import time as _time

    from .explore.scenarios import _ARCH_SCENARIOS, arch_scenario
    from .runtime.engine import create_engine, default_engine

    kw = {}
    if args.engine != "sim":
        kw["time_scale"] = args.time_scale
    factory = lambda: create_engine(args.engine, **kw)  # noqa: E731

    wall0 = _time.perf_counter()
    if args.file in _ARCH_SCENARIOS:
        # shipped architecture: the exploration scenario provides the
        # host bindings and a deterministic workload
        sc = arch_scenario(args.file)
        if args.until is not None:
            sc.horizon = args.until
        with default_engine(factory):
            system = sc.run()
    else:
        from .arch.loader import expand_placeholders
        from .core.compiler import compile_program
        from .runtime.system import System

        text = Path(args.file).read_text()
        if "@BACKENDS@" in text:
            text = expand_placeholders(text)
        prog = compile_program(text, config=_parse_config(args.config))
        system = System(prog, engine=factory())
        stubbed = _stub_bindings(system)
        if stubbed:
            print(f"stubbed host bindings: {', '.join(stubbed)}", file=sys.stderr)
        main_args = {}
        if prog.main is not None:
            env = prog.config_env()
            main_args = {p: 1.0 for p in prog.main.params if p not in env}
        if main_args:
            print(
                f"defaulted main parameter(s) to 1.0: {sorted(main_args)}",
                file=sys.stderr,
            )
        system.start(**main_args)
        system.run_until(args.until if args.until is not None else 30.0)
    wall = _time.perf_counter() - wall0

    sent = int(system.telemetry.metrics.sum("net_sent"))
    delivered = int(system.telemetry.metrics.sum("net_delivered"))
    print(
        f"{args.file}: engine={system.engine.name} t={system.now:.3f} "
        f"sent={sent} delivered={delivered} wall={wall:.2f}s "
        f"failures={len(system.failures)}"
    )
    for t, node, exc in system.failures:
        print(f"  failure at t={t:.3f} in {node}: {exc!r}", file=sys.stderr)
    system.shutdown()
    return 1 if system.failures else 0


def _explore_scenario(args):
    from .explore import resolve_scenario

    return resolve_scenario(
        args.file, config=_parse_config(args.config), horizon=args.until
    )


def _write_trace(result, schedule_id: str, path: str) -> None:
    from .telemetry.sinks import to_jsonl

    out = to_jsonl(result.system.telemetry.events, system=f"schedule:{schedule_id}")
    Path(path).write_text(out)
    print(f"wrote telemetry to {path} (schedule:{schedule_id})", file=sys.stderr)


def _explore_replay(args, scenario) -> int:
    import json

    from .explore import Schedule, ScheduleDivergence, replay

    sched = Schedule.from_json(json.loads(Path(args.replay).read_text()))
    invariants = tuple(args.invariant) if args.invariant else None
    try:
        res = replay(scenario, sched, invariants=invariants)
    except ScheduleDivergence as e:
        print(f"error: replay diverged: {e}", file=sys.stderr)
        return 1
    if args.trace_out:
        _write_trace(res, sched.schedule_id, args.trace_out)
    if res.violations:
        for inv, msg in res.violations:
            print(f"violation [{inv}]: {msg}")
        return 1
    print(f"replayed schedule {sched.schedule_id}: all invariants hold")
    return 0


def _explore_witness_races(args, scenario) -> int:
    import json

    from .analysis import analyze_source
    from .arch.loader import ARCHITECTURES, load_source
    from .explore import witness_findings

    if args.file in ARCHITECTURES:
        text = load_source(args.file)
    else:
        path = Path(args.file)
        if path.suffix == ".py":
            raise SystemExit(
                "error: --witness-races needs a .csaw file or architecture "
                "name (the static analyzer works on DSL sources)"
            )
        text = path.read_text()
    report = analyze_source(
        text, _parse_config(args.config), label=args.file, deep=True
    )
    races = [f for f in report.unsuppressed() if f.check == "race"]
    if not races:
        print(f"{args.file}: the analyzer reports no unsuppressed races")
        return 0
    witnesses = witness_findings(
        scenario,
        races,
        strategy=args.strategy,
        budget=args.budget,
        depth=args.depth,
        seed=args.seed,
    )
    for w in witnesses:
        print(w.describe())
    if args.out:
        payload = [w.to_json() for w in witnesses]
        Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {len(payload)} witness attempt(s) to {args.out}", file=sys.stderr)
    return 0


def cmd_explore(args) -> int:
    import json

    from .explore import explore

    scenario = _explore_scenario(args)
    if args.replay:
        return _explore_replay(args, scenario)
    if args.witness_races:
        return _explore_witness_races(args, scenario)

    invariants = tuple(args.invariant) if args.invariant else None
    result = explore(
        scenario,
        strategy=args.strategy,
        budget=args.budget,
        depth=args.depth,
        invariants=invariants,
        seed=args.seed,
    )
    print(f"{scenario.name}: {result.summary()}")
    for v in result.violations:
        print(
            f"violation [{v.invariant}] under schedule "
            f"{v.schedule.schedule_id}: {v.message}"
        )
    if args.out and result.violations:
        payload = [v.to_json() for v in result.violations]
        Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(
            f"wrote {len(payload)} failing schedule(s) to {args.out}",
            file=sys.stderr,
        )
    return 2 if result.violations else 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="C-Saw architecture tooling"
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("file", help="a .csaw architecture file")
        sp.add_argument(
            "--config", action="append", default=[], metavar="NAME=VALUE",
            help="load-time configuration (sets, parameters); repeatable",
        )

    sp = sub.add_parser("check", help="parse, validate and compile")
    common(sp)
    sp.add_argument(
        "--strict", action="store_true",
        help="also run the analyzer's fast checks; exit 2 on errors",
    )
    sp.set_defaults(fn=cmd_check)

    sp = sub.add_parser(
        "analyze", help="static analysis: races, dead code, host contracts"
    )
    sp.add_argument(
        "file",
        help="a .csaw file, a shipped architecture name, or an example .py script",
    )
    sp.add_argument(
        "--config", action="append", default=[], metavar="NAME=VALUE",
        help="load-time configuration (sets, parameters); repeatable",
    )
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    sp.add_argument(
        "--fail-on", metavar="CHECKS", default="",
        help="comma-separated checks (race,dead,contract,unused); exit 2 "
             "when any unsuppressed error finding of these checks remains",
    )
    sp.add_argument(
        "--fast", action="store_true",
        help="key-flow checks only (skip event-structure denotation)",
    )
    sp.add_argument(
        "--max-unfold", type=int, default=1,
        help="reconsider/retry unfolding depth for the deep pass (default: 1)",
    )
    sp.set_defaults(fn=cmd_analyze)

    sp = sub.add_parser("fmt", help="pretty-print / normalize")
    sp.add_argument("file")
    sp.add_argument("--write", action="store_true", help="rewrite in place")
    sp.set_defaults(fn=cmd_fmt)

    sp = sub.add_parser("topo", help="print the communication topology")
    common(sp)
    sp.set_defaults(fn=cmd_topo)

    sp = sub.add_parser("semantics", help="print event-structure semantics")
    common(sp)
    sp.add_argument("--dot", action="store_true", help="Graphviz output")
    sp.set_defaults(fn=cmd_semantics)

    sp = sub.add_parser("loc", help="count effective lines of code")
    sp.add_argument("file")
    sp.set_defaults(fn=cmd_loc)

    sp = sub.add_parser(
        "trace", help="run with telemetry and export the causal trace"
    )
    sp.add_argument("file", help="a .csaw architecture or an example .py script")
    sp.add_argument(
        "--config", action="append", default=[], metavar="NAME=VALUE",
        help="load-time configuration (for .csaw files); repeatable",
    )
    sp.add_argument(
        "--format", choices=("jsonl", "chrome"), default="jsonl",
        help="export format (default: jsonl)",
    )
    sp.add_argument(
        "--until", type=float, default=60.0,
        help="simulated seconds to run a .csaw file for (default: 60)",
    )
    sp.add_argument("--out", help="write to this file instead of stdout")
    sp.set_defaults(fn=cmd_trace)

    sp = sub.add_parser(
        "run", help="execute an architecture on a chosen execution engine"
    )
    sp.add_argument(
        "file",
        help="a shipped architecture name (driven by its exploration "
             "workload) or a .csaw file (unbound host blocks are stubbed)",
    )
    sp.add_argument(
        "--config", action="append", default=[], metavar="NAME=VALUE",
        help="load-time configuration (for .csaw files); repeatable",
    )
    sp.add_argument(
        "--engine", choices=("sim", "realtime", "realtime-tcp"), default="sim",
        help="execution engine: deterministic simulation, asyncio wall-clock "
             "with in-process channels, or asyncio with TCP loopback "
             "channels (default: sim)",
    )
    sp.add_argument(
        "--until", type=float, default=None,
        help="logical-seconds horizon (default: the scenario's own, or 30)",
    )
    sp.add_argument(
        "--time-scale", type=float, default=0.05,
        help="realtime engines: wall seconds per logical second "
             "(default: 0.05 — 20x compression)",
    )
    sp.set_defaults(fn=cmd_run)

    sp = sub.add_parser(
        "explore",
        help="controlled-scheduler interleaving search with invariant checks",
    )
    sp.add_argument(
        "file",
        help="a shipped architecture name, a .csaw file, or a .py scenario "
             "script defining build_scenario()",
    )
    sp.add_argument(
        "--config", action="append", default=[], metavar="NAME=VALUE",
        help="load-time configuration (for .csaw files); repeatable",
    )
    sp.add_argument(
        "--strategy", choices=("dpor", "bfs", "dfs", "random"), default="dpor",
        help="search strategy (default: dpor — partial-order-reduced search)",
    )
    sp.add_argument(
        "--budget", type=int, default=200,
        help="maximum schedules to run (default: 200)",
    )
    sp.add_argument(
        "--depth", type=int, default=None,
        help="branch only at the first N choice points (default: unbounded)",
    )
    sp.add_argument(
        "--invariant", action="append", default=[], metavar="NAME",
        help="invariant to check (repeatable; default: the scenario's own "
             "set — no-failures, convergence, at-most-once, ...)",
    )
    sp.add_argument(
        "--seed", type=int, default=0, help="seed for the random strategy"
    )
    sp.add_argument(
        "--until", type=float, default=None,
        help="simulated-seconds horizon for .csaw scenarios",
    )
    sp.add_argument(
        "--replay", metavar="SCHEDULE_JSON",
        help="replay a serialized schedule exactly instead of searching",
    )
    sp.add_argument(
        "--trace-out", metavar="FILE",
        help="with --replay: export the run's telemetry JSONL (labeled with "
             "the schedule id) to FILE",
    )
    sp.add_argument(
        "--witness-races", action="store_true",
        help="run the static analyzer and attempt a concrete witness "
             "schedule for every unsuppressed race finding",
    )
    sp.add_argument(
        "--out", metavar="FILE",
        help="write failing schedules (or --witness-races results) as JSON",
    )
    sp.set_defaults(fn=cmd_explore)

    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CSawError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    except FileNotFoundError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
