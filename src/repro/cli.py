"""Command-line interface: ``python -m repro <command> <file.csaw>``.

Commands:

* ``check``     — parse + validate + compile; report errors with positions.
                  ``--strict`` folds in the analyzer's fast (key-flow)
                  checks and fails on unsuppressed errors.
* ``analyze``   — static analysis: KV write-write races, dead junctions
                  and case arms, host write-contract violations, unused
                  keys.  Accepts a ``.csaw`` file, a shipped
                  architecture name, or an example ``.py`` script
                  (analyzes every program its Systems load).
                  ``--fail-on race,dead,contract`` exits 2 when any
                  unsuppressed *error* finding of those checks remains.
* ``fmt``       — pretty-print (normalize) an architecture file.
* ``topo``      — print the communication topology (sec. 8.7's Topo).
* ``semantics`` — print the event-structure semantics per junction
                  (``--dot`` for Graphviz output).
* ``loc``       — count non-blank, non-comment lines.
* ``trace``     — run an architecture (a ``.csaw`` file or an example
                  ``.py`` script) with telemetry on and export the
                  causal trace as JSONL or Chrome trace-event JSON
                  (loadable in ``chrome://tracing`` / Perfetto).
* ``run``       — execute an architecture on a chosen execution engine
                  (``--engine`` takes an EngineSpec string such as
                  ``realtime,time_scale=0.05`` or ``sim,compiled=off``);
                  SIGINT/SIGTERM drain in-flight work before the
                  summary instead of dying mid-write.
* ``cluster``   — deploy across supervised worker processes (one OS
                  process per instance, or ``--workers N`` shard
                  groups) with heartbeat liveness probes and
                  restart-with-backoff; ``--kill b1 --kill-at 4`` runs
                  a SIGKILL fault drill and exits non-zero unless the
                  supervisor recovers the worker.
* ``explore``   — controlled-scheduler interleaving search: run a
                  shipped architecture name, a ``.csaw`` file or a
                  ``.py`` scenario script under every reachable
                  schedule (``--strategy dpor|bfs|dfs|random``,
                  ``--budget N``), checking invariants over each final
                  state.  Failing interleavings serialize as replayable
                  JSON (``--replay schedule.json`` reproduces the exact
                  run, byte-identical telemetry); ``--witness-races``
                  attempts a concrete witness schedule for every static
                  race finding.

Configuration values (set contents, parameters) are supplied as
``--config name=value`` pairs; values parse as numbers, comma-separated
lists, or names.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .core.compiler import compile_program
from .core.emit import emit_program
from .core.errors import CSawError
from .core.parser import parse_program
from .core.topology import topology
from .semantics.program_sem import denote_program
from .semantics.render import to_dot, to_text


def _engine_spec(args, *, command: str, default: str = "sim",
                 default_time_scale: float | None = None):
    """Resolve the subcommand's ``--engine`` value to an
    :class:`~repro.runtime.engine.EngineSpec`, folding the deprecated
    per-flag forms (``--time-scale``, ``--workers``) in with a
    :class:`DeprecationWarning`."""
    import dataclasses
    import warnings

    from .runtime.engine import EngineSpec

    spec = EngineSpec.of(getattr(args, "engine", None) or default)
    ts = getattr(args, "time_scale", None)
    if ts is not None:
        warnings.warn(
            f"repro {command}: --time-scale is deprecated; use "
            f"--engine {spec.name},time_scale={ts}",
            DeprecationWarning,
            stacklevel=2,
        )
        if spec.time_scale is None and spec.name != "sim":
            spec = dataclasses.replace(spec, time_scale=ts)
    workers = getattr(args, "workers", None)
    if workers is not None:
        warnings.warn(
            f"repro {command}: --workers is deprecated; use "
            f"--engine {spec.name},workers={workers}",
            DeprecationWarning,
            stacklevel=2,
        )
        if spec.workers is None:
            spec = dataclasses.replace(spec, workers=workers)
    if default_time_scale is not None and spec.name != "sim" and spec.time_scale is None:
        # the CLI compresses wall-clock engines by default (the engine
        # constructors themselves default to real time)
        spec = dataclasses.replace(spec, time_scale=default_time_scale)
    return spec


def _compile_ctx(spec):
    """A context applying the spec's compile mode (``compiled=on/off``)
    to every System built inside it; a no-op when the spec is silent."""
    import contextlib

    if spec.compiled is None:
        return contextlib.nullcontext()
    from .compile import compilation

    return compilation(spec.compiled)


def _parse_config(pairs: list[str]) -> dict:
    out: dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--config expects name=value, got {pair!r}")
        name, _, raw = pair.partition("=")
        if "," in raw:
            out[name] = [_scalar(v) for v in raw.split(",") if v]
        else:
            out[name] = _scalar(raw)
    return out


def _scalar(raw: str) -> object:
    try:
        return float(raw) if "." in raw else int(raw)
    except ValueError:
        return raw


def cmd_check(args) -> int:
    text = Path(args.file).read_text()
    prog = compile_program(text, config=_parse_config(args.config))
    print(f"OK: {len(prog.source.instance_types)} type(s), "
          f"{len(prog.source.instances)} instance(s), "
          f"{len(prog.junctions)} junction(s), "
          f"{len(prog.source.functions)} function(s)")
    if not args.strict:
        return 0
    from .analysis import fast_checks

    report = fast_checks(
        prog, _parse_config(args.config), source_text=text, label=args.file
    )
    sys.stdout.write(report.render_text())
    errors = [f for f in report.unsuppressed() if f.severity == "error"]
    return 2 if errors else 0


def _analysis_sources(args) -> list[tuple[str, object, str | None]]:
    """Resolve the ``analyze`` argument to ``(label, program-or-text,
    source_text)`` items: a shipped architecture name, a ``.csaw``
    file (placeholders expanded), or a ``.py`` script whose Systems'
    programs are captured while it runs."""
    from .arch.loader import ARCHITECTURES, expand_placeholders, load_source

    name = args.file
    if name in ARCHITECTURES:
        text = load_source(name)
        return [(name, text, text)]
    path = Path(name)
    if path.suffix == ".py":
        import contextlib
        import runpy

        from .analysis.capture import capture_programs

        argv = sys.argv
        sys.argv = [str(path)]
        try:
            with capture_programs() as captured, contextlib.redirect_stdout(sys.stderr):
                runpy.run_path(str(path), run_name="__main__")
        finally:
            sys.argv = argv
        if not captured:
            raise SystemExit(f"error: {name} constructed no System to analyze")
        labels = (
            [str(path)]
            if len(captured) == 1
            else [f"{path}#{i}" for i in range(len(captured))]
        )
        return [(lbl, prog, None) for lbl, prog in zip(labels, captured)]
    text = path.read_text()
    if "@BACKENDS@" in text:
        text = expand_placeholders(text)
    return [(str(path), text, text)]


def cmd_analyze(args) -> int:
    import json

    from .analysis import analyze_program, analyze_source
    from .analysis.model import CHECKS

    fail_on: tuple[str, ...] = ()
    if args.fail_on:
        fail_on = tuple(c.strip() for c in args.fail_on.split(",") if c.strip())
        bad = [c for c in fail_on if c not in CHECKS]
        if bad:
            raise SystemExit(
                f"error: --fail-on accepts {','.join(CHECKS)}; got {','.join(bad)}"
            )

    config = _parse_config(args.config)
    reports = []
    for label, source, text in _analysis_sources(args):
        if isinstance(source, str):
            reports.append(
                analyze_source(
                    source,
                    config,
                    label=label,
                    deep=not args.fast,
                    max_unfold=args.max_unfold,
                )
            )
        else:  # a captured CompiledProgram from a .py script
            reports.append(
                analyze_program(
                    source,
                    config,
                    source_text=text,
                    label=label,
                    deep=not args.fast,
                    max_unfold=args.max_unfold,
                )
            )

    if args.json:
        payload = (
            reports[0].to_json()
            if len(reports) == 1
            else [r.to_json() for r in reports]
        )
        json.dump(payload, sys.stdout, indent=2)
        sys.stdout.write("\n")
    else:
        for r in reports:
            sys.stdout.write(r.render_text())

    if fail_on:
        failing = [
            f
            for r in reports
            for f in r.unsuppressed(fail_on)
            if f.severity == "error"
        ]
        if failing:
            print(
                f"analyze: {len(failing)} failing finding(s) "
                f"(--fail-on {','.join(fail_on)})",
                file=sys.stderr,
            )
            return 2
    return 0


def cmd_fmt(args) -> int:
    text = Path(args.file).read_text()
    out = emit_program(parse_program(text))
    if args.write:
        Path(args.file).write_text(out)
        print(f"formatted {args.file}")
    else:
        sys.stdout.write(out)
    return 0


def cmd_topo(args) -> int:
    text = Path(args.file).read_text()
    prog = compile_program(text, config=_parse_config(args.config))
    g = topology(prog)
    print(f"# {g.number_of_nodes()} junction(s), {g.number_of_edges()} edge(s)")
    for src, dst in sorted(g.edges()):
        print(f"{src} -> {dst}")
    return 0


def cmd_semantics(args) -> int:
    text = Path(args.file).read_text()
    prog = compile_program(text, config=_parse_config(args.config))
    sem = denote_program(prog, _parse_config(args.config))
    if args.dot:
        print(to_dot(sem.startup, "startup"))
        for node, es in sorted(sem.junctions.items()):
            print(to_dot(es, node))
    else:
        print("== startup ==")
        print(to_text(sem.startup))
        for node, es in sorted(sem.junctions.items()):
            print(f"\n== {node} ==")
            print(to_text(es))
    return 0


def cmd_loc(args) -> int:
    from .arch.loc import count_loc_text

    text = Path(args.file).read_text()
    print(count_loc_text(text))
    return 0


def _trace_py(path: Path) -> list:
    """Run a Python script, capturing the telemetry of every System it
    constructs.  The script's stdout goes to stderr so the export owns
    stdout."""
    import contextlib
    import runpy

    from .telemetry.facade import capture_systems

    argv = sys.argv
    sys.argv = [str(path)]
    try:
        with capture_systems() as captured, contextlib.redirect_stdout(sys.stderr):
            runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = argv
    return captured


def _trace_csaw(path: Path, config: dict, until: float, spec) -> list:
    from .runtime.system import System

    prog = compile_program(path.read_text(), config=config)
    system = System(prog, engine=spec)
    system.start()
    system.run_until(until)
    return [system.telemetry]


def cmd_trace(args) -> int:
    from .runtime.engine import default_engine
    from .telemetry.sinks import chrome_json, to_jsonl

    spec = _engine_spec(args, command="trace")
    path = Path(args.file)
    with _compile_ctx(spec):
        if path.suffix == ".py":
            if args.engine is not None:
                # an explicit spec reroutes every System the script
                # builds (scripts passing their own engine keep it)
                with default_engine(spec):
                    telemetries = _trace_py(path)
            else:
                telemetries = _trace_py(path)
        else:
            telemetries = _trace_csaw(
                path, _parse_config(args.config), args.until, spec
            )
    if not telemetries:
        print("error: the traced program constructed no System", file=sys.stderr)
        return 1

    labels = (
        ["system"]
        if len(telemetries) == 1
        else [f"system{i}" for i in range(len(telemetries))]
    )
    if args.format == "chrome":
        out = chrome_json(
            [(lbl, tel.events) for lbl, tel in zip(labels, telemetries)]
        )
    else:
        out = "".join(
            to_jsonl(tel.events, system=None if len(telemetries) == 1 else lbl)
            for lbl, tel in zip(labels, telemetries)
        )
    if args.out:
        Path(args.out).write_text(out)
        total = sum(len(tel.events) for tel in telemetries)
        print(f"wrote {total} event(s) to {args.out}", file=sys.stderr)
    else:
        sys.stdout.write(out)
    return 0


def _stub_bindings(system) -> list[str]:
    """Bind no-op host functions and empty state providers for every
    unbound ⌊H⌉ block / save schema, so a bare ``.csaw`` architecture
    runs to completion without an embedding application."""
    from .core import ast as A
    from .runtime.instance import StateProviders

    stubbed: list[str] = []
    for tname, trt in sorted(system.types.items()):
        declared: set[str] = set()
        for cj in trt.junctions.values():
            for e in A.walk(cj.body):
                if isinstance(e, A.HostBlock):
                    declared.add(e.name)
        for name in sorted(declared - set(trt.host_fns)):
            trt.bind_host(name, lambda ctx: None)
            stubbed.append(f"{tname}.{name}")
        if trt.state.save is None:
            trt.state = StateProviders(
                save=lambda app, inst: {},
                restore=lambda app, inst, obj: None,
            )
    return stubbed


class _GracefulSignal(Exception):
    """Raised out of a running engine loop by the SIGINT/SIGTERM
    handler so ``repro run`` / ``repro cluster`` can drain instead of
    dying mid-write."""

    def __init__(self, signum: int):
        super().__init__(signum)
        self.signum = signum

    @property
    def name(self) -> str:
        import signal as _signal

        try:
            return _signal.Signals(self.signum).name
        except ValueError:  # pragma: no cover - exotic signal numbers
            return str(self.signum)


class _graceful_signals:
    """Context manager: route SIGINT/SIGTERM into :class:`_GracefulSignal`
    (wall-clock engines only — the sim engine finishes instantly and the
    default KeyboardInterrupt behaviour is right for it)."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._prev: list[tuple[int, object]] = []

    def __enter__(self):
        if not self.enabled:
            return self
        import signal as _signal

        def handler(signum, frame):  # noqa: ARG001 - signal signature
            raise _GracefulSignal(signum)

        for signum in (_signal.SIGINT, _signal.SIGTERM):
            self._prev.append((signum, _signal.signal(signum, handler)))
        return self

    def __exit__(self, *exc):
        import signal as _signal

        for signum, prev in self._prev:
            _signal.signal(signum, prev)
        return False


def _run_workload(args, engine, holder=None):
    """The shared ``repro run`` / ``repro cluster`` drive: a shipped
    scenario name runs its exploration workload, anything else loads as
    a ``.csaw`` file with stubbed host bindings.  ``engine`` is an
    :class:`~repro.runtime.engine.EngineSpec` or a zero-arg engine
    factory.  Returns the system."""
    from .explore.scenarios import _ARCH_SCENARIOS, arch_scenario
    from .runtime.engine import default_engine

    if args.file in _ARCH_SCENARIOS:
        # shipped architecture: the exploration scenario provides the
        # host bindings and a deterministic workload
        sc = arch_scenario(args.file)
        if args.until is not None:
            sc.horizon = args.until
        if holder is not None:
            holder.append(sc)
        with default_engine(engine):
            return sc.run()
    from .arch.loader import expand_placeholders
    from .core.compiler import compile_program
    from .runtime.system import System

    text = Path(args.file).read_text()
    if "@BACKENDS@" in text:
        text = expand_placeholders(text)
    prog = compile_program(text, config=_parse_config(args.config))
    system = System(prog, engine=engine() if callable(engine) else engine)
    if holder is not None:
        holder.append(system)
    stubbed = _stub_bindings(system)
    if stubbed:
        print(f"stubbed host bindings: {', '.join(stubbed)}", file=sys.stderr)
    main_args = {}
    if prog.main is not None:
        env = prog.config_env()
        main_args = {p: 1.0 for p in prog.main.params if p not in env}
    if main_args:
        print(
            f"defaulted main parameter(s) to 1.0: {sorted(main_args)}",
            file=sys.stderr,
        )
    system.start(**main_args)
    system.run_until(args.until if args.until is not None else 30.0)
    return system


def _recover_system(holder):
    """Best-effort: the system under a run that was interrupted
    mid-workload (scenarios stash the service on themselves first)."""
    for obj in holder:
        svc = getattr(obj, "_svc", None)
        if svc is not None:
            return svc.system
        if hasattr(obj, "engine"):
            return obj
    return None


def _print_summary(args, system, wall: float, *, drained: str | None = None) -> None:
    sent = int(system.telemetry.metrics.sum("net_sent"))
    delivered = int(system.telemetry.metrics.sum("net_delivered"))
    drain_note = f" drained={drained}" if drained is not None else ""
    print(
        f"{args.file}: engine={system.engine.name} t={system.now:.3f} "
        f"sent={sent} delivered={delivered} wall={wall:.2f}s "
        f"failures={len(system.failures)}{drain_note}"
    )
    for t, node, exc in system.failures:
        print(f"  failure at t={t:.3f} in {node}: {exc!r}", file=sys.stderr)


def cmd_run(args) -> int:
    import time as _time

    spec = _engine_spec(args, command="run", default_time_scale=0.05)

    holder: list = []
    wall0 = _time.perf_counter()
    drained: str | None = None
    try:
        with _compile_ctx(spec), _graceful_signals(enabled=spec.name != "sim"):
            system = _run_workload(args, spec, holder)
    except _GracefulSignal as sig:
        system = _recover_system(holder)
        if system is None:
            print(f"run: {sig.name} before the system came up", file=sys.stderr)
            return 130
        # drain in-flight messages and host calls before summarizing, so
        # the telemetry counters below describe a settled system
        print(f"run: {sig.name} — draining in-flight work", file=sys.stderr)
        drained = "clean" if system.engine.drain(grace=5.0) else "timeout"
    wall = _time.perf_counter() - wall0

    _print_summary(args, system, wall, drained=drained)
    system.shutdown()
    return 1 if system.failures else 0


def cmd_workload(args) -> int:
    from .workload import ADAPTERS, WorkloadSpec, run_workload

    if args.arch not in ADAPTERS:
        print(
            f"error: no workload adapter for {args.arch!r}; "
            f"have {', '.join(sorted(ADAPTERS))}",
            file=sys.stderr,
        )
        return 1
    spec = WorkloadSpec(
        seed=args.seed,
        users=args.users,
        pattern=args.pattern,
        mode=args.mode,
        rate=args.rate,
        concurrency=args.concurrency,
        duration=args.duration,
        max_ops=args.max_ops,
        value_size=args.value_size,
        read_fraction=args.read_fraction,
    )
    engine = _engine_spec(args, command="workload", default_time_scale=0.05)
    with _compile_ctx(engine):
        report = run_workload(spec, args.arch, engine)
    if args.json:
        import json

        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(
            f"{args.arch}: engine={report.engine} pattern={spec.pattern} "
            f"mode={spec.mode} users={spec.users}"
        )
        print(
            f"  ops: {report.ops_completed} completed, {report.ops_failed} failed, "
            f"{report.ops_dropped} dropped of {report.ops_submitted} submitted"
        )
        print(
            f"  throughput: {report.ops_per_sec:.1f} ops/sec over "
            f"{report.logical_seconds:.1f} logical s ({report.wall_seconds:.2f}s wall)"
        )
        print(f"  latency: p50={report.p50_ms:.3f}ms p99={report.p99_ms:.3f}ms")
        print(f"  digest: {report.digest}")
    return 1 if report.ops_dropped else 0


def cmd_cluster(args) -> int:
    import time as _time

    from .runtime.cluster import ClusterEngine, reap_orphan_workers
    from .runtime.supervisor import BackoffPolicy

    kills = list(args.kill)
    kill_times = list(args.kill_at)
    if len(kill_times) > len(kills):
        raise SystemExit("error: more --kill-at times than --kill targets")
    # unscheduled kills default to 4s, spaced 2s apart
    while len(kill_times) < len(kills):
        last = kill_times[-1] if kill_times else 2.0
        kill_times.append(last + 2.0)
    drills = list(zip(kill_times, kills))

    spec = _engine_spec(
        args, command="cluster", default="cluster", default_time_scale=0.05
    )
    if spec.name != "cluster":
        raise SystemExit(
            f"error: repro cluster deploys on the cluster engine, "
            f"got --engine {spec.name}"
        )

    backoff = BackoffPolicy(base=args.backoff_base, cap=args.backoff_cap)
    engines: list[ClusterEngine] = []

    def factory() -> ClusterEngine:
        e = ClusterEngine(
            workers=spec.workers,
            time_scale=spec.time_scale,
            heartbeat_interval=args.heartbeat_interval,
            heartbeat_timeout=args.heartbeat_timeout,
            backoff=backoff,
            drills=drills,
            **dict(spec.options),
        )
        engines.append(e)
        return e

    holder: list = []
    wall0 = _time.perf_counter()
    drained: str | None = None
    interrupted = False
    try:
        with _compile_ctx(spec), _graceful_signals():
            system = _run_workload(args, factory, holder)
            if drills:
                # give supervised restarts room to land after the
                # workload: backoff delay + handshake + stabilization
                system.run_until(system.now + args.settle)
    except _GracefulSignal as sig:
        interrupted = True
        system = _recover_system(holder)
        if system is None:
            for e in engines:
                e.close()
            print(f"cluster: {sig.name} before the system came up", file=sys.stderr)
            return 130
        print(f"cluster: {sig.name} — draining workers", file=sys.stderr)
        drained = "clean" if system.engine.drain(grace=5.0) else "timeout"
    wall = _time.perf_counter() - wall0

    _print_summary(args, system, wall, drained=drained)
    engine = system.engine
    recovered = True
    if isinstance(engine, ClusterEngine):
        report = engine.supervisor.report()
        print(report.render())
        if drills and not interrupted:
            recovered = report.recovered()
            print(f"recovered={recovered}")
    system.shutdown()
    leaked = reap_orphan_workers()
    if leaked:
        print(f"cluster: reaped leaked worker pgids {leaked}", file=sys.stderr)
        return 1
    if system.failures:
        return 1
    return 0 if recovered else 2


def _load_arch_text(value: str, n_backends: int | None) -> str:
    """A shipped architecture name or a ``.csaw`` path → DSL source
    (``@BACKENDS@`` placeholders expanded)."""
    from .arch.loader import ARCHITECTURES, expand_placeholders, load_source

    if value in ARCHITECTURES:
        return load_source(value, n_backends=n_backends)
    text = Path(value).read_text()
    if "@BACKENDS@" in text:
        text = expand_placeholders(text, n_backends or 4)
    return text


def cmd_reconfigure(args) -> int:
    import time as _time

    from .reconfig import diff_programs, plan_transition

    config = _parse_config(args.config)
    old = compile_program(
        _load_arch_text(args.old, args.old_backends), config=config
    )
    new = compile_program(
        _load_arch_text(args.new, args.new_backends), config=config
    )
    diff = diff_programs(old, new)
    print(f"diff: {diff.summary()}")
    if args.diff_only:
        return 0
    if args.plan_only:
        plan = plan_transition(diff)
        print(plan.render())
        return 0

    spec = _engine_spec(args, command="reconfigure", default_time_scale=0.05)
    from .runtime.system import System

    wall0 = _time.perf_counter()
    with _compile_ctx(spec), _graceful_signals(enabled=spec.name != "sim"):
        system = System(old, engine=spec)
        stubbed = _stub_bindings(system)
        if stubbed:
            print(f"stubbed host bindings: {', '.join(stubbed)}", file=sys.stderr)
        main_args = {}
        if old.main is not None:
            env = old.config_env()
            main_args = {p: 1.0 for p in old.main.params if p not in env}
        if main_args:
            print(
                f"defaulted main parameter(s) to 1.0: {sorted(main_args)}",
                file=sys.stderr,
            )
        system.start(**main_args)
        system.run_until(args.at)
        report = system.reconfigure(new, quiesce_grace=args.grace)
        system.run_until(args.until if args.until is not None else system.now + 5.0)
    wall = _time.perf_counter() - wall0

    print(report.render())
    print(
        f"{args.old} -> {args.new}: engine={system.engine.name} "
        f"t={system.now:.3f} wall={wall:.2f}s failures={len(system.failures)}"
    )
    for t, node, exc in system.failures:
        print(f"  failure at t={t:.3f} in {node}: {exc!r}", file=sys.stderr)
    system.shutdown()
    if system.failures:
        return 1
    return 0 if report.ok else 2


def _explore_scenario(args):
    from .explore import resolve_scenario

    return resolve_scenario(
        args.file, config=_parse_config(args.config), horizon=args.until
    )


def _write_trace(result, schedule_id: str, path: str) -> None:
    from .telemetry.sinks import to_jsonl

    out = to_jsonl(result.system.telemetry.events, system=f"schedule:{schedule_id}")
    Path(path).write_text(out)
    print(f"wrote telemetry to {path} (schedule:{schedule_id})", file=sys.stderr)


def _explore_replay(args, scenario) -> int:
    import json

    from .explore import Schedule, ScheduleDivergence, replay

    sched = Schedule.from_json(json.loads(Path(args.replay).read_text()))
    invariants = tuple(args.invariant) if args.invariant else None
    try:
        res = replay(scenario, sched, invariants=invariants)
    except ScheduleDivergence as e:
        print(f"error: replay diverged: {e}", file=sys.stderr)
        return 1
    if args.trace_out:
        _write_trace(res, sched.schedule_id, args.trace_out)
    if res.violations:
        for inv, msg in res.violations:
            print(f"violation [{inv}]: {msg}")
        return 1
    print(f"replayed schedule {sched.schedule_id}: all invariants hold")
    return 0


def _explore_witness_races(args, scenario) -> int:
    import json

    from .analysis import analyze_source
    from .arch.loader import ARCHITECTURES, load_source
    from .explore import witness_findings

    if args.file in ARCHITECTURES:
        text = load_source(args.file)
    else:
        path = Path(args.file)
        if path.suffix == ".py":
            raise SystemExit(
                "error: --witness-races needs a .csaw file or architecture "
                "name (the static analyzer works on DSL sources)"
            )
        text = path.read_text()
    report = analyze_source(
        text, _parse_config(args.config), label=args.file, deep=True
    )
    races = [f for f in report.unsuppressed() if f.check == "race"]
    if not races:
        print(f"{args.file}: the analyzer reports no unsuppressed races")
        return 0
    witnesses = witness_findings(
        scenario,
        races,
        strategy=args.strategy,
        budget=args.budget,
        depth=args.depth,
        seed=args.seed,
    )
    for w in witnesses:
        print(w.describe())
    if args.out:
        payload = [w.to_json() for w in witnesses]
        Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"wrote {len(payload)} witness attempt(s) to {args.out}", file=sys.stderr)
    return 0


def cmd_explore(args) -> int:
    import json

    from .explore import explore

    spec = _engine_spec(args, command="explore")
    if spec.name != "sim":
        raise SystemExit(
            f"error: explore requires the sim engine (controlled "
            f"scheduling), got --engine {spec.name}"
        )
    # spec.compiled is accepted but moot: controlled scheduling always
    # runs the interpreter so event labels match recorded schedules
    scenario = _explore_scenario(args)
    if args.replay:
        return _explore_replay(args, scenario)
    if args.witness_races:
        return _explore_witness_races(args, scenario)

    invariants = tuple(args.invariant) if args.invariant else None
    result = explore(
        scenario,
        strategy=args.strategy,
        budget=args.budget,
        depth=args.depth,
        invariants=invariants,
        seed=args.seed,
    )
    print(f"{scenario.name}: {result.summary()}")
    for v in result.violations:
        print(
            f"violation [{v.invariant}] under schedule "
            f"{v.schedule.schedule_id}: {v.message}"
        )
    if args.out and result.violations:
        payload = [v.to_json() for v in result.violations]
        Path(args.out).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(
            f"wrote {len(payload)} failing schedule(s) to {args.out}",
            file=sys.stderr,
        )
    return 2 if result.violations else 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro", description="C-Saw architecture tooling"
    )
    sub = p.add_subparsers(dest="command", required=True)

    def common(sp):
        sp.add_argument("file", help="a .csaw architecture file")
        sp.add_argument(
            "--config", action="append", default=[], metavar="NAME=VALUE",
            help="load-time configuration (sets, parameters); repeatable",
        )

    sp = sub.add_parser("check", help="parse, validate and compile")
    common(sp)
    sp.add_argument(
        "--strict", action="store_true",
        help="also run the analyzer's fast checks; exit 2 on errors",
    )
    sp.set_defaults(fn=cmd_check)

    sp = sub.add_parser(
        "analyze", help="static analysis: races, dead code, host contracts"
    )
    sp.add_argument(
        "file",
        help="a .csaw file, a shipped architecture name, or an example .py script",
    )
    sp.add_argument(
        "--config", action="append", default=[], metavar="NAME=VALUE",
        help="load-time configuration (sets, parameters); repeatable",
    )
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    sp.add_argument(
        "--fail-on", metavar="CHECKS", default="",
        help="comma-separated checks (race,dead,contract,unused); exit 2 "
             "when any unsuppressed error finding of these checks remains",
    )
    sp.add_argument(
        "--fast", action="store_true",
        help="key-flow checks only (skip event-structure denotation)",
    )
    sp.add_argument(
        "--max-unfold", type=int, default=1,
        help="reconsider/retry unfolding depth for the deep pass (default: 1)",
    )
    sp.set_defaults(fn=cmd_analyze)

    sp = sub.add_parser("fmt", help="pretty-print / normalize")
    sp.add_argument("file")
    sp.add_argument("--write", action="store_true", help="rewrite in place")
    sp.set_defaults(fn=cmd_fmt)

    sp = sub.add_parser("topo", help="print the communication topology")
    common(sp)
    sp.set_defaults(fn=cmd_topo)

    sp = sub.add_parser("semantics", help="print event-structure semantics")
    common(sp)
    sp.add_argument("--dot", action="store_true", help="Graphviz output")
    sp.set_defaults(fn=cmd_semantics)

    sp = sub.add_parser("loc", help="count effective lines of code")
    sp.add_argument("file")
    sp.set_defaults(fn=cmd_loc)

    sp = sub.add_parser(
        "trace", help="run with telemetry and export the causal trace"
    )
    sp.add_argument("file", help="a .csaw architecture or an example .py script")
    sp.add_argument(
        "--config", action="append", default=[], metavar="NAME=VALUE",
        help="load-time configuration (for .csaw files); repeatable",
    )
    sp.add_argument(
        "--format", choices=("jsonl", "chrome"), default="jsonl",
        help="export format (default: jsonl)",
    )
    sp.add_argument(
        "--until", type=float, default=60.0,
        help="simulated seconds to run a .csaw file for (default: 60)",
    )
    sp.add_argument(
        "--engine", metavar="SPEC", default=None,
        help="engine spec, e.g. sim, sim,compiled=off, "
             "realtime,time_scale=0.05 (default: sim)",
    )
    sp.add_argument("--out", help="write to this file instead of stdout")
    sp.set_defaults(fn=cmd_trace)

    sp = sub.add_parser(
        "run", help="execute an architecture on a chosen execution engine"
    )
    sp.add_argument(
        "file",
        help="a shipped architecture name (driven by its exploration "
             "workload) or a .csaw file (unbound host blocks are stubbed)",
    )
    sp.add_argument(
        "--config", action="append", default=[], metavar="NAME=VALUE",
        help="load-time configuration (for .csaw files); repeatable",
    )
    sp.add_argument(
        "--engine", metavar="SPEC", default="sim",
        help="engine spec: sim | realtime | realtime-tcp | cluster plus "
             "key=value options, e.g. realtime,time_scale=0.05 or "
             "sim,compiled=off (default: sim)",
    )
    sp.add_argument(
        "--until", type=float, default=None,
        help="logical-seconds horizon (default: the scenario's own, or 30)",
    )
    sp.add_argument(
        "--time-scale", type=float, default=None,
        help="deprecated: use --engine NAME,time_scale=X",
    )
    sp.set_defaults(fn=cmd_run)

    sp = sub.add_parser(
        "workload",
        help="drive a seeded million-user workload through an architecture "
             "and report ops/sec, p50/p99 and drops",
    )
    sp.add_argument(
        "--arch", default="broker_sharded",
        help="architecture adapter: broker_sharded | broker_failover | "
             "sharding | failover (default: broker_sharded)",
    )
    sp.add_argument(
        "--engine", metavar="SPEC", default="sim",
        help="engine spec: sim | realtime | realtime-tcp | cluster plus "
             "key=value options (default: sim)",
    )
    sp.add_argument("--seed", type=int, default=0, help="generator seed (default: 0)")
    sp.add_argument(
        "--users", type=int, default=10_000,
        help="distinct-user population keys are drawn from (default: 10000)",
    )
    sp.add_argument(
        "--pattern", choices=("steady", "diurnal", "flash-crowd"),
        default="steady", help="arrival curve (default: steady)",
    )
    sp.add_argument(
        "--mode", choices=("open", "closed"), default="open",
        help="open loop (timed arrivals) or closed loop (fixed "
             "outstanding-op window; default: open)",
    )
    sp.add_argument(
        "--rate", type=float, default=200.0,
        help="mean arrival rate in ops per logical second (open loop; "
             "default: 200)",
    )
    sp.add_argument(
        "--concurrency", type=int, default=8,
        help="outstanding-op window (closed loop; default: 8)",
    )
    sp.add_argument(
        "--duration", type=float, default=10.0,
        help="logical seconds of traffic (default: 10)",
    )
    sp.add_argument(
        "--max-ops", type=int, default=2000,
        help="hard cap on generated operations (default: 2000)",
    )
    sp.add_argument(
        "--value-size", type=int, default=64,
        help="payload bytes per write (default: 64)",
    )
    sp.add_argument(
        "--read-fraction", type=float, default=0.3,
        help="fraction of ops that are reads (default: 0.3)",
    )
    sp.add_argument("--json", action="store_true", help="machine-readable output")
    sp.set_defaults(fn=cmd_workload)

    sp = sub.add_parser(
        "cluster",
        help="deploy across supervised worker processes (one per instance "
             "or shard group), with optional SIGKILL fault drills",
    )
    sp.add_argument(
        "file",
        help="a shipped architecture name (driven by its exploration "
             "workload) or a .csaw file (unbound host blocks are stubbed)",
    )
    sp.add_argument(
        "--config", action="append", default=[], metavar="NAME=VALUE",
        help="load-time configuration (for .csaw files); repeatable",
    )
    sp.add_argument(
        "--engine", metavar="SPEC", default="cluster",
        help="engine spec (name must be cluster), e.g. "
             "cluster,workers=4,time_scale=0.05 (default: cluster)",
    )
    sp.add_argument(
        "--workers", type=int, default=None,
        help="deprecated: use --engine cluster,workers=N",
    )
    sp.add_argument(
        "--until", type=float, default=None,
        help="logical-seconds horizon (default: the scenario's own, or 30)",
    )
    sp.add_argument(
        "--time-scale", type=float, default=None,
        help="deprecated: use --engine cluster,time_scale=X",
    )
    sp.add_argument(
        "--heartbeat-interval", type=float, default=0.5,
        help="logical seconds between liveness pings (default: 0.5)",
    )
    sp.add_argument(
        "--heartbeat-timeout", type=float, default=2.0,
        help="logical seconds without a pong before a worker is declared "
             "crashed (default: 2.0)",
    )
    sp.add_argument(
        "--backoff-base", type=float, default=0.5,
        help="first restart delay in logical seconds (default: 0.5)",
    )
    sp.add_argument(
        "--backoff-cap", type=float, default=8.0,
        help="maximum restart delay in logical seconds (default: 8.0)",
    )
    sp.add_argument(
        "--kill", action="append", default=[], metavar="INSTANCE",
        help="fault drill: SIGKILL the worker hosting INSTANCE mid-run "
             "(repeatable; exits non-zero unless the supervisor recovers it)",
    )
    sp.add_argument(
        "--kill-at", action="append", type=float, default=[], metavar="T",
        help="logical time of the matching --kill (default: 4s, spaced 2s)",
    )
    sp.add_argument(
        "--settle", type=float, default=20.0,
        help="extra logical seconds after the workload for supervised "
             "restarts to land (only with --kill; default: 20)",
    )
    sp.set_defaults(fn=cmd_cluster)

    sp = sub.add_parser(
        "reconfigure",
        help="apply a .csaw architecture diff to a running system "
             "(quiesce, snapshot, cutover, resume — zero dropped requests)",
    )
    sp.add_argument(
        "old",
        help="the running architecture: a shipped name or a .csaw file",
    )
    sp.add_argument(
        "new",
        help="the target architecture: a shipped name or a .csaw file",
    )
    sp.add_argument(
        "--config", action="append", default=[], metavar="NAME=VALUE",
        help="load-time configuration applied to both sources; repeatable",
    )
    sp.add_argument(
        "--old-backends", type=int, default=None, metavar="N",
        help="back-end count for a parameterized OLD source (sharding)",
    )
    sp.add_argument(
        "--new-backends", type=int, default=None, metavar="N",
        help="back-end count for a parameterized NEW source (sharding)",
    )
    sp.add_argument(
        "--engine", metavar="SPEC", default="sim",
        help="engine spec: sim | realtime | realtime-tcp | cluster plus "
             "key=value options (default: sim)",
    )
    sp.add_argument(
        "--at", type=float, default=2.0,
        help="logical time to trigger the transition (default: 2.0)",
    )
    sp.add_argument(
        "--until", type=float, default=None,
        help="logical-seconds horizon after the transition "
             "(default: trigger time + 5)",
    )
    sp.add_argument(
        "--grace", type=float, default=5.0,
        help="quiesce grace in logical seconds before rollback (default: 5.0)",
    )
    sp.add_argument(
        "--diff-only", action="store_true",
        help="print the architecture diff and exit",
    )
    sp.add_argument(
        "--plan-only", action="store_true",
        help="print the transition plan and exit",
    )
    sp.set_defaults(fn=cmd_reconfigure)

    sp = sub.add_parser(
        "explore",
        help="controlled-scheduler interleaving search with invariant checks",
    )
    sp.add_argument(
        "file",
        help="a shipped architecture name, a .csaw file, or a .py scenario "
             "script defining build_scenario()",
    )
    sp.add_argument(
        "--config", action="append", default=[], metavar="NAME=VALUE",
        help="load-time configuration (for .csaw files); repeatable",
    )
    sp.add_argument(
        "--strategy", choices=("dpor", "bfs", "dfs", "random"), default="dpor",
        help="search strategy (default: dpor — partial-order-reduced search)",
    )
    sp.add_argument(
        "--budget", type=int, default=200,
        help="maximum schedules to run (default: 200)",
    )
    sp.add_argument(
        "--depth", type=int, default=None,
        help="branch only at the first N choice points (default: unbounded)",
    )
    sp.add_argument(
        "--invariant", action="append", default=[], metavar="NAME",
        help="invariant to check (repeatable; default: the scenario's own "
             "set — no-failures, convergence, at-most-once, ...)",
    )
    sp.add_argument(
        "--seed", type=int, default=0, help="seed for the random strategy"
    )
    sp.add_argument(
        "--engine", metavar="SPEC", default=None,
        help="engine spec; accepted for uniformity but must name sim "
             "(exploration needs controlled scheduling)",
    )
    sp.add_argument(
        "--until", type=float, default=None,
        help="simulated-seconds horizon for .csaw scenarios",
    )
    sp.add_argument(
        "--replay", metavar="SCHEDULE_JSON",
        help="replay a serialized schedule exactly instead of searching",
    )
    sp.add_argument(
        "--trace-out", metavar="FILE",
        help="with --replay: export the run's telemetry JSONL (labeled with "
             "the schedule id) to FILE",
    )
    sp.add_argument(
        "--witness-races", action="store_true",
        help="run the static analyzer and attempt a concrete witness "
             "schedule for every unsuppressed race finding",
    )
    sp.add_argument(
        "--out", metavar="FILE",
        help="write failing schedules (or --witness-races results) as JSON",
    )
    sp.set_defaults(fn=cmd_explore)

    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except CSawError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1
    except FileNotFoundError as e:
        print(f"error: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
