"""A file server with a link model (the download peer for curlite).

Models the paper's testbed: "downloading differently-sized files from a
dedicated machine, over 1GbE links" (sec. 10.3).  Transfer time is
``rtt + size / bandwidth`` plus a small per-request server cost; the
client chunks transfers so progress (and audit hooks) occur during the
download.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkModel:
    """A network path: bandwidth in bytes/second plus round-trip time."""

    bandwidth: float = 125_000_000.0  # 1 GbE ≈ 125 MB/s
    rtt: float = 0.4e-3               # LAN round trip

    def transfer_time(self, nbytes: int) -> float:
        return nbytes / self.bandwidth


class FileServer:
    """Serves named files of declared sizes.

    ``request_cost`` models the fixed per-invocation overhead of a real
    cURL run (process spawn, DNS, TCP/TLS handshake) — dominant for
    small files, which is why the paper's Fig. 25a shows ~10 ms
    downloads even at 1 KB."""

    def __init__(self, link: LinkModel | None = None, request_cost: float = 12e-3):
        self.link = link or LinkModel()
        self.request_cost = request_cost
        self._files: dict[str, int] = {}

    def put(self, name: str, size: int) -> None:
        if size < 0:
            raise ValueError("file size must be non-negative")
        self._files[name] = size

    def put_standard_corpus(self) -> None:
        """The paper's file-size sweep: 1 KB … 1200 MB."""
        for size in STANDARD_SIZES:
            self.put(size_name(size), size)

    def size_of(self, name: str) -> int:
        if name not in self._files:
            raise KeyError(f"no file {name!r}")
        return self._files[name]

    def files(self) -> dict[str, int]:
        return dict(self._files)


#: sizes used by Figs. 25a/25b (small) and 26a (large), in bytes
STANDARD_SIZES = (
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
    400_000_000,
    700_000_000,
    1_200_000_000,
)


def size_name(size: int) -> str:
    if size >= 1_000_000:
        return f"file-{size // 1_000_000}MB"
    if size >= 1_000:
        return f"file-{size // 1_000}KB"
    return f"file-{size}B"
