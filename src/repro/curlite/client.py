"""The curlite transfer client.

Downloads proceed in chunks over the simulator; after each chunk the
client updates its *transfer state* (bytes done, checksum-ish digest)
and invokes an optional **audit hook** — the integration point for the
remote-snapshot architectures of sec. 5.1:

* one-time audit (use-case ②): the hook fires once, at transfer start;
* continuous audit (use-case ③): the hook fires after every chunk,
  "trading off a higher runtime overhead to acquire more information".

The hook is asynchronous-with-barrier: the client passes a completion
callback and does not start the next chunk until the audit acknowledges
— state is "logged remotely to protect its integrity", so a transfer
may not outrun its audit trail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..runtime.sim import Simulator
from .fileserver import FileServer

#: audit hook signature: (state, done_callback) -> None
AuditHook = Callable[[dict, Callable[[], None]], None]


@dataclass
class TransferState:
    """What an audit snapshot captures."""

    url: str
    total: int
    done: int = 0
    chunks: int = 0
    digest: int = 5381

    def advance(self, nbytes: int) -> None:
        self.done += nbytes
        self.chunks += 1
        # djb2-style rolling digest over the byte count (stand-in for
        # hashing actual content)
        self.digest = ((self.digest * 33) + nbytes) & 0xFFFFFFFF

    def as_dict(self) -> dict:
        return {
            "url": self.url,
            "total": self.total,
            "done": self.done,
            "chunks": self.chunks,
            "digest": self.digest,
        }


@dataclass
class TransferResult:
    url: str
    size: int
    started_at: float
    finished_at: float
    audits: int

    @property
    def elapsed(self) -> float:
        return self.finished_at - self.started_at


class TransferClient:
    """Chunked downloader."""

    def __init__(
        self,
        sim: Simulator,
        server: FileServer,
        *,
        chunk_size: int = 262_144,
        client_cost_per_chunk: float = 20e-6,
    ):
        self.sim = sim
        self.server = server
        self.chunk_size = chunk_size
        self.client_cost_per_chunk = client_cost_per_chunk
        self.current_state: TransferState | None = None

    #: continuous audits fire per *progress milestone* (every ~10% of
    #: the transfer), not per chunk, so audit cost amortizes over large
    #: files (the decreasing overhead of Fig. 25b)
    MAX_AUDITS = 10

    def download(
        self,
        name: str,
        on_done: Callable[[TransferResult], None],
        *,
        audit: AuditHook | None = None,
        audit_mode: str = "none",  # 'none' | 'once' | 'continuous'
    ) -> None:
        """Start downloading ``name``; ``on_done`` fires at completion."""
        if audit_mode not in ("none", "once", "continuous"):
            raise ValueError(f"bad audit_mode {audit_mode!r}")
        if audit_mode != "none" and audit is None:
            raise ValueError("audit_mode set but no audit hook given")
        size = self.server.size_of(name)
        state = TransferState(url=name, total=size)
        self.current_state = state
        started = self.sim.now
        link = self.server.link
        audits = 0
        total_chunks = max(1, -(-size // self.chunk_size))
        audit_stride = max(1, -(-total_chunks // self.MAX_AUDITS))

        def finish():
            self.sim.call_after(link.rtt / 2, lambda: on_done(
                TransferResult(name, size, started, self.sim.now, audits)
            ))

        def next_chunk():
            remaining = size - state.done
            if remaining <= 0:
                finish()
                return
            n = min(self.chunk_size, remaining)
            dt = link.transfer_time(n) + self.client_cost_per_chunk
            self.sim.call_after(dt, lambda: chunk_done(n))

        def chunk_done(n: int):
            state.advance(n)
            if audit_mode == "continuous" and state.chunks % audit_stride == 0:
                run_audit(next_chunk)
            else:
                next_chunk()

        def run_audit(cont):
            nonlocal audits
            audits += 1
            audit(state.as_dict(), cont)

        def begin():
            if audit_mode == "once":
                run_audit(next_chunk)
            else:
                next_chunk()

        # initial request: half RTT out + server handling
        self.sim.call_after(link.rtt / 2 + self.server.request_cost, begin)
