"""Transfer workloads: the paper's file-size sweeps with repetitions.

Runs a set of downloads (serially, as the paper's experiments do) and
collects per-size timing statistics, including the mean and standard
deviation the figures report (experiments "repeated 20 times and
averaged ... reported with their standard deviation").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from ..runtime.sim import Simulator
from .client import AuditHook, TransferClient, TransferResult
from .fileserver import FileServer, size_name


@dataclass
class SweepResult:
    """Per-(size, config) timing samples."""

    samples: dict[tuple[int, str], list[float]] = field(default_factory=dict)

    def add(self, size: int, config: str, elapsed: float) -> None:
        self.samples.setdefault((size, config), []).append(elapsed)

    def mean(self, size: int, config: str) -> float:
        xs = self.samples[(size, config)]
        return sum(xs) / len(xs)

    def stdev(self, size: int, config: str) -> float:
        xs = self.samples[(size, config)]
        m = self.mean(size, config)
        if len(xs) < 2:
            return 0.0
        return math.sqrt(sum((x - m) ** 2 for x in xs) / (len(xs) - 1))

    def overhead_percent(self, size: int, config: str, baseline: str = "original") -> float:
        base = self.mean(size, baseline)
        return 100.0 * (self.mean(size, config) - base) / base if base else float("nan")

    def sizes(self) -> list[int]:
        return sorted({s for (s, _c) in self.samples})

    def configs(self) -> list[str]:
        return sorted({c for (_s, c) in self.samples})


def run_sweep(
    sim: Simulator,
    server: FileServer,
    sizes: list[int],
    configs: dict[str, tuple[str, AuditHook | None]],
    *,
    repetitions: int = 5,
    client_factory: Callable[[], TransferClient] | None = None,
) -> SweepResult:
    """Serially download each size under each configuration.

    ``configs`` maps a config label to ``(audit_mode, audit_hook)``;
    e.g. ``{"original": ("none", None), "same-vm": ("continuous", hook)}``.
    """
    result = SweepResult()
    client = client_factory() if client_factory else TransferClient(sim, server)

    pending: list[tuple[int, str]] = [
        (size, label)
        for _rep in range(repetitions)
        for size in sizes
        for label in configs
    ]

    def run_next():
        if not pending:
            return
        size, label = pending.pop(0)
        mode, hook = configs[label]

        def done(res: TransferResult):
            result.add(size, label, res.elapsed)
            run_next()

        client.download(size_name(size), done, audit=hook, audit_mode=mode)

    run_next()
    sim.run()
    return result
