"""curlite — a mini data-transfer client standing in for cURL."""

from .client import AuditHook, TransferClient, TransferResult, TransferState
from .fileserver import FileServer, LinkModel, STANDARD_SIZES, size_name
from .workload import SweepResult, run_sweep

__all__ = [
    "AuditHook",
    "FileServer",
    "LinkModel",
    "STANDARD_SIZES",
    "SweepResult",
    "TransferClient",
    "TransferResult",
    "TransferState",
    "run_sweep",
    "size_name",
]
