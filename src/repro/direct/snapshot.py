"""Direct (non-DSL) remote auditing: the control arm for
``arch/snapshot.py``.

The transfer client's audit hook ships each snapshot to a remote audit
endpoint and holds the transfer's barrier until the log acknowledges —
the same integrity contract as the DSL architecture (the download may
not outrun its audit trail), with the shipping, correlation and timeout
handling written by hand.
"""

from __future__ import annotations

from typing import Callable

from ..curlite.client import AuditHook
from ..runtime.sim import Simulator
from .messaging import Envelope, MessageBus

#: latencies for the two placements (seconds, one-way) — same constants
#: as the DSL arm
SAME_VM_LATENCY = 25e-6
CROSS_VM_LATENCY = 300e-6


class DirectRemoteAuditor:
    """A hand-rolled remote audit log; produces curlite hooks."""

    def __init__(
        self,
        sim: Simulator,
        *,
        placement: str = "cross-vm",  # 'same-vm' | 'cross-vm'
        timeout: float = 2.0,
    ):
        if placement == "same-vm":
            latency = SAME_VM_LATENCY
        elif placement == "cross-vm":
            latency = CROSS_VM_LATENCY
        else:
            raise ValueError(f"unknown placement {placement!r}")
        self.placement = placement
        self.sim = sim
        self.timeout = timeout
        self.bus = MessageBus(sim, latency)
        self.act = self.bus.endpoint("act")
        self.aud = self.bus.endpoint("aud")
        self.audit_log: list[dict] = []
        self.snapshots_sent = 0
        self.complaints = 0

        def record(env: Envelope):
            _topic, state = env.body
            self.audit_log.append(dict(state))
            return True

        self.aud.on("record", record)

    def audit_hook(self) -> AuditHook:
        """An :data:`~repro.curlite.client.AuditHook` logging remotely
        (barrier released by the audit log's ack)."""

        def hook(state: dict, done: Callable[[], None]) -> None:
            def acked(_reply):
                self.snapshots_sent += 1
                done()

            def failed():
                self.complaints += 1
                # release the transfer even when auditing failed, so
                # the experiment observes the failure rather than hangs
                done()

            self.act.request(
                "aud", "record", dict(state), acked,
                timeout=self.timeout, on_timeout=failed,
            )

        return hook
