"""Hand-rolled messaging layer for the direct (non-DSL) control arm.

The paper's ``Redis(C)`` control implementation "includes its own
internal management system for communication and synchronization
between different instances of Redis, which adds 195 lines to each
feature" (sec. 10.2).  This module is that management system's
analogue: endpoints, request/response correlation, retries, timeouts,
broadcast, and a tiny state machine for peer liveness — everything the
C-Saw runtime otherwise provides for free.

It is deliberately written against the raw simulator (no reuse of
``repro.runtime``), because the point of the control arm is to measure
what re-architecting costs *without* the DSL.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

from ..runtime.sim import Simulator


@dataclass
class Envelope:
    src: str
    dst: str
    kind: str  # 'request' | 'response' | 'oneway'
    body: object
    corr_id: int = 0


class Endpoint:
    """A named party on the bus with request/response support."""

    def __init__(self, bus: "MessageBus", name: str):
        self.bus = bus
        self.name = name
        self.handlers: dict[str, Callable[[Envelope], object]] = {}
        self._pending: dict[int, tuple[Callable, object]] = {}
        self.alive = True

    def on(self, topic: str, handler: Callable[[Envelope], object]) -> None:
        """Register a request handler; its return value is the response."""
        self.handlers[topic] = handler

    def request(
        self,
        dst: str,
        topic: str,
        body: object,
        on_reply: Callable[[object], None],
        *,
        timeout: float = 1.0,
        on_timeout: Callable[[], None] | None = None,
        retries: int = 0,
    ) -> None:
        corr = self.bus.next_corr()
        attempt = [0]

        def fire():
            self.bus.send(Envelope(self.name, dst, "request", (topic, body), corr))
            handle = self.bus.sim.call_after(timeout, expired)
            self._pending[corr] = (deliver, handle)

        def deliver(reply: object):
            _, handle = self._pending.pop(corr, (None, None))
            if handle is not None:
                handle.cancel()
            on_reply(reply)

        def expired():
            if corr not in self._pending:
                return
            self._pending.pop(corr, None)
            if attempt[0] < retries:
                attempt[0] += 1
                fire()
            elif on_timeout is not None:
                on_timeout()

        fire()

    def oneway(self, dst: str, topic: str, body: object) -> None:
        self.bus.send(Envelope(self.name, dst, "oneway", (topic, body), 0))

    def _receive(self, env: Envelope) -> None:
        if not self.alive:
            return
        if env.kind == "response":
            pending = self._pending.get(env.corr_id)
            if pending is not None:
                pending[0](env.body)
            return
        topic, body = env.body
        handler = self.handlers.get(topic)
        if handler is None:
            return
        result = handler(env)
        if env.kind == "request":
            self.bus.send(Envelope(self.name, env.src, "response", result, env.corr_id))


class MessageBus:
    """Point-to-point transport with latency and crashed-peer drops."""

    def __init__(self, sim: Simulator, latency: float = 100e-6):
        self.sim = sim
        self.latency = latency
        self.endpoints: dict[str, Endpoint] = {}
        self._corr = itertools.count(1)
        self.down: set[str] = set()

    def endpoint(self, name: str) -> Endpoint:
        ep = Endpoint(self, name)
        self.endpoints[name] = ep
        return ep

    def next_corr(self) -> int:
        return next(self._corr)

    def set_down(self, name: str, down: bool = True) -> None:
        if down:
            self.down.add(name)
        else:
            self.down.discard(name)

    def send(self, env: Envelope) -> None:
        if env.src in self.down or env.dst in self.down:
            return

        def deliver():
            if env.dst in self.down:
                return
            ep = self.endpoints.get(env.dst)
            if ep is not None:
                ep._receive(env)

        self.sim.call_after(self.latency, deliver)

    def broadcast(self, src: str, topic: str, body: object) -> None:
        for name in self.endpoints:
            if name != src:
                self.send(Envelope(src, name, "oneway", (topic, body), 0))
