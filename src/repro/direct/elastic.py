"""Direct (non-DSL) elastic workers: the control arm for
``arch/elastic.py``.

A front endpoint load-balances jobs round-robin over the currently
registered worker endpoints and grows/shrinks the pool with an explicit
register/deregister handshake — membership bookkeeping the DSL version
gets from ``start``/``stop`` inside the architecture description.

The routing policy (round-robin cursor, initial pool of two) mirrors
the DSL arm exactly so differential tests can compare job placements.
"""

from __future__ import annotations

from typing import Callable

from ..runtime.sim import Simulator
from .messaging import Envelope, MessageBus

WORKERS = ("Wrk1", "Wrk2", "Wrk3", "Wrk4")


class DirectElasticWorkers:
    """A job service with a hand-rolled grow/shrink worker pool."""

    def __init__(
        self,
        sim: Simulator,
        *,
        latency: float = 100e-6,
        timeout: float = 0.5,
    ):
        self.sim = sim
        self.timeout = timeout
        self.bus = MessageBus(sim, latency)
        self.front = self.bus.endpoint("front")
        self.active: list[str] = ["Wrk1", "Wrk2"]
        self.rr = 0
        self.executed: dict[str, int] = {w: 0 for w in WORKERS}
        self.scale_events: list[tuple[float, str, str]] = []
        self.failed_jobs = 0
        for name in WORKERS:
            ep = self.bus.endpoint(name)
            ep.on("job", self._job_handler(name))
            ep.on("register", lambda env: True)
            ep.on("deregister", lambda env: True)
            # spare workers start cold (a down endpoint drops traffic,
            # like a not-yet-started DSL instance)
            if name not in self.active:
                self.bus.set_down(name)

    def _job_handler(self, name: str):
        def handle(env: Envelope):
            _topic, units = env.body
            self.executed[name] += 1
            return {"worker": name, "units": units}

        return handle

    @property
    def active_workers(self) -> list[str]:
        return list(self.active)

    # -- jobs ----------------------------------------------------------------

    def submit_job(self, units: int, on_done: Callable[[dict | None], None]) -> None:
        if not self.active:
            raise ValueError("no running workers")
        # same cursor policy as the DSL arm: advance, then pick
        self.rr = (self.rr + 1) % len(self.active)
        target = self.active[self.rr]

        def on_timeout():
            self.failed_jobs += 1
            on_done(None)

        self.front.request(
            target, "job", units, on_done,
            timeout=self.timeout, on_timeout=on_timeout,
        )

    # -- scaling -------------------------------------------------------------

    def scale_out(self, on_done: Callable[[bool], None] | None = None) -> None:
        """Boot the next spare worker and register it with the pool."""
        spare = [w for w in WORKERS if w not in self.active]
        if not spare:
            raise ValueError("no spare workers")
        worker = spare[0]
        self.bus.set_down(worker, False)

        def registered(_reply):
            self.active.append(worker)
            self.scale_events.append((self.sim.now, "out", worker))
            if on_done is not None:
                on_done(True)

        def fail():
            self.bus.set_down(worker)
            if on_done is not None:
                on_done(False)

        self.front.request(
            worker, "register", None, registered,
            timeout=self.timeout, on_timeout=fail,
        )

    def scale_in(self, on_done: Callable[[bool], None] | None = None) -> None:
        """Drain and stop the most recently added worker."""
        if len(self.active) <= 1:
            raise ValueError("refusing to scale below one worker")
        worker = self.active[-1]

        def deregistered(_reply):
            self.active.remove(worker)
            self.rr = self.rr % len(self.active)
            self.bus.set_down(worker)
            self.scale_events.append((self.sim.now, "in", worker))
            if on_done is not None:
                on_done(True)

        def fail():
            if on_done is not None:
                on_done(False)

        self.front.request(
            worker, "deregister", None, deregistered,
            timeout=self.timeout, on_timeout=fail,
        )
