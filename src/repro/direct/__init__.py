"""Direct (non-DSL) re-architecting — the Table 2 control arm.

These modules implement checkpointing, sharding and caching straight
against the substrate APIs with a hand-rolled messaging layer, to
measure the effort the DSL saves.  They are real, tested
implementations — the paper developed its ``Redis(C)`` control "without
knowledge of the DSL, as a control experiment".
"""

from .broker import DirectShardedBroker
from .caching import DirectCachedRedis
from .checkpointing import DirectCheckpointManager
from .elastic import DirectElasticWorkers
from .failover import DirectFailoverRedis
from .messaging import Endpoint, Envelope, MessageBus
from .migration import DirectMigratableRedis
from .schemas import redis_entry_schema, suricata_packet_schema
from .sharding import DirectShardedRedis
from .snapshot import DirectRemoteAuditor

__all__ = [
    "DirectCachedRedis",
    "DirectCheckpointManager",
    "DirectElasticWorkers",
    "DirectFailoverRedis",
    "DirectMigratableRedis",
    "DirectRemoteAuditor",
    "DirectShardedBroker",
    "DirectShardedRedis",
    "Endpoint",
    "Envelope",
    "MessageBus",
    "redis_entry_schema",
    "suricata_packet_schema",
]
