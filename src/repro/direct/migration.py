"""Direct (non-DSL) live migration: the control arm for
``arch/migration.py``.

A router endpoint forwards requests to whichever node is active and
runs the migration protocol by hand: snapshot the source, ship it to
the destination, install it, then flip the routing table — the same
snapshot → transfer → install → switch sequence the DSL version
expresses declaratively, here as chained request/response callbacks.
"""

from __future__ import annotations

from typing import Callable

from ..redislite.server import Command, CostModel, RedisServer, Reply
from ..runtime.sim import Simulator
from .messaging import Envelope, MessageBus

_NODES = ("NodeA", "NodeB")


class DirectMigratableRedis:
    """Two redislite nodes behind a hand-rolled migrating router."""

    def __init__(
        self,
        sim: Simulator,
        *,
        cost_model: CostModel | None = None,
        latency: float = 100e-6,
        timeout: float = 2.0,
    ):
        self.sim = sim
        self.timeout = timeout
        self.bus = MessageBus(sim, latency)
        self.router = self.bus.endpoint("router")
        self.active = "NodeA"
        self.migrations = 0
        self.failed_requests = 0
        self.servers: dict[str, RedisServer] = {}
        for name in _NODES:
            server = RedisServer(name=name, cost=cost_model)
            self.servers[name] = server
            ep = self.bus.endpoint(name)
            ep.on("exec", self._exec_handler(server))
            ep.on("snapshot", lambda env, s=server: s.checkpoint()[0])
            ep.on("install", self._install_handler(server))

    def _exec_handler(self, server: RedisServer):
        def handle(env: Envelope):
            _topic, (op, key, value) = env.body
            reply, _cost = server.execute(Command(op, key, value), now=self.sim.now)
            return {"ok": reply.ok, "value": reply.value, "hit": reply.hit}

        return handle

    def _install_handler(self, server: RedisServer):
        def handle(env: Envelope):
            _topic, snap = env.body
            server.restore(snap)
            return True

        return handle

    def node_server(self, name: str) -> RedisServer:
        return self.servers[name]

    # -- RequestPort ---------------------------------------------------------

    def submit(self, cmd: Command, on_done: Callable[[Reply], None]) -> None:
        def on_reply(body):
            if isinstance(body, dict):
                on_done(Reply(ok=body["ok"], value=body["value"], hit=body["hit"]))
            else:
                on_done(Reply(ok=False))

        def on_timeout():
            self.failed_requests += 1
            on_done(Reply(ok=False))

        self.router.request(
            self.active,
            "exec",
            (cmd.op, cmd.key, cmd.value),
            on_reply,
            timeout=self.timeout,
            on_timeout=on_timeout,
        )

    def preload(self, commands) -> None:
        server = self.servers[self.active]
        for cmd in commands:
            server.execute(cmd, now=0.0)

    # -- migration -----------------------------------------------------------

    def migrate(self, dst: str, on_done: Callable[[bool], None] | None = None) -> None:
        """Snapshot the active node, install on ``dst``, switch routing."""
        if dst not in _NODES:
            raise ValueError(f"unknown node {dst!r}")
        src = self.active
        if src == dst:
            raise ValueError("destination is already active")

        def fail():
            if on_done is not None:
                on_done(False)

        def installed(ok):
            if ok is not True:
                fail()
                return
            self.active = dst
            self.migrations += 1
            if on_done is not None:
                on_done(True)

        def snapped(snap):
            if not isinstance(snap, dict):
                fail()
                return
            self.router.request(
                dst, "install", snap, installed,
                timeout=self.timeout, on_timeout=fail,
            )

        self.router.request(
            src, "snapshot", None, snapped,
            timeout=self.timeout, on_timeout=fail,
        )
