"""Direct (non-DSL) checkpointing: the control arm of Table 2.

A checkpoint manager periodically snapshots the protected server,
ships the snapshot to a storage endpoint over the message bus, tracks
acknowledgements and re-sends on timeout, and on recovery fetches the
last acknowledged snapshot back — state-machine plumbing the DSL
version expresses declaratively.
"""

from __future__ import annotations

from typing import Callable

from ..runtime.sim import Simulator
from .messaging import Envelope, MessageBus


class DirectCheckpointManager:
    """Checkpoint/restore for any substrate with ``checkpoint()`` /
    ``restore(snapshot)`` (same protocol as the DSL version)."""

    def __init__(
        self,
        sim: Simulator,
        target,
        stall: Callable[[float], None],
        *,
        latency: float = 200e-6,
        timeout: float = 2.0,
        max_resends: int = 1,
    ):
        self.sim = sim
        self.target = target
        self.stall = stall
        self.timeout = timeout
        self.max_resends = max_resends
        self.bus = MessageBus(sim, latency)
        self.agent = self.bus.endpoint("agent")
        self.storage = self.bus.endpoint("storage")
        self.stored_snapshot: dict | None = None
        self.stored_seq = -1
        self.checkpoints = 0
        self.acked = 0
        self.restores = 0
        self.lost = 0
        self._seq = 0

        def store_handler(env: Envelope):
            _topic, (seq, snap) = env.body
            if seq > self.stored_seq:
                self.stored_seq = seq
                self.stored_snapshot = snap
            return {"ack": seq}

        def fetch_handler(env: Envelope):
            return {"seq": self.stored_seq, "snapshot": self.stored_snapshot}

        self.storage.on("store", store_handler)
        self.storage.on("fetch", fetch_handler)

    # -- checkpointing ---------------------------------------------------------

    def checkpoint_now(self) -> None:
        snap, cost = self.target.checkpoint()
        self.stall(cost)
        self.checkpoints += 1
        seq = self._seq
        self._seq += 1

        def on_reply(body):
            self.acked += 1

        def on_timeout():
            self.lost += 1

        self.agent.request(
            "storage",
            "store",
            (seq, snap),
            on_reply,
            timeout=self.timeout,
            on_timeout=on_timeout,
            retries=self.max_resends,
        )

    def schedule_checkpoints(self, interval: float, until: float, first: float | None = None) -> None:
        t = first if first is not None else interval
        while t <= until:
            self.sim.call_at(t, self.checkpoint_now)
            t += interval

    # -- recovery ------------------------------------------------------------------

    def recover(self, on_done: Callable[[bool], None] | None = None) -> None:
        def on_reply(body):
            if body["snapshot"] is None:
                if on_done:
                    on_done(False)
                return
            cost = self.target.restore(body["snapshot"])
            self.stall(cost)
            self.restores += 1
            if on_done:
                on_done(True)

        def on_timeout():
            if on_done:
                on_done(False)

        self.agent.request(
            "storage", "fetch", (), on_reply, timeout=self.timeout, on_timeout=on_timeout
        )
