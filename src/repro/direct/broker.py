"""Direct (non-DSL) partitioned broker: the control arm for the
broker differential.

A router endpoint hashes publish keys (djb2) to the owning partition
and forwards every command to the partition's endpoint over the
hand-rolled message bus — correlation, timeouts and per-partition
health tracked by hand, exactly the logic ``broker_sharded.csaw``
expresses in the DSL.
"""

from __future__ import annotations

from typing import Callable

from ..brokerlite import BrokerReply, BrokerRequest, BrokerServer, partition_for
from ..runtime.sim import Simulator
from .messaging import Envelope, MessageBus


class DirectShardedBroker:
    """Key-partitioned brokerlite without the DSL."""

    def __init__(
        self,
        sim: Simulator,
        n_partitions: int = 4,
        *,
        cost_model=None,
        latency: float = 100e-6,
        timeout: float = 2.0,
    ):
        self.sim = sim
        self.n_partitions = n_partitions
        self.timeout = timeout
        self.bus = MessageBus(sim, latency)
        self.router = self.bus.endpoint("router")
        self.servers: list[BrokerServer] = []
        self.partition_counts = [0] * n_partitions
        self.healthy = [True] * n_partitions
        self.failed_requests = 0
        self._busy_until = [0.0] * n_partitions

        for i in range(n_partitions):
            server = BrokerServer(name=f"dpartition{i}", cost=cost_model)
            self.servers.append(server)
            ep = self.bus.endpoint(f"partition{i}")
            ep.on("exec", self._make_exec(i, server))

    def _make_exec(self, idx: int, server: BrokerServer):
        def handler(env: Envelope):
            d = env.body[1]
            req = BrokerRequest(
                op=d["op"], partition=d["partition"], key=d["key"],
                value=d["value"], offset=d["offset"],
                max_records=d["max"], group=d["group"],
            )
            reply, cost = server.execute(req, now=self.sim.now)
            self._busy_until[idx] = max(self._busy_until[idx], self.sim.now) + cost
            return {
                "ok": reply.ok,
                "offset": reply.offset,
                "records": reply.records,
                "high_water": reply.high_water,
            }

        return handler

    def partition_of(self, req: BrokerRequest) -> int:
        if req.op.upper() == "PUB":
            return partition_for(req.key, self.n_partitions)
        return req.partition % self.n_partitions

    def submit(self, req: BrokerRequest, on_done: Callable[[BrokerReply], None]) -> None:
        p = self.partition_of(req)
        self.partition_counts[p] += 1

        def on_reply(body: object):
            self.healthy[p] = True
            if isinstance(body, dict):
                on_done(BrokerReply(
                    ok=body["ok"], offset=body["offset"],
                    records=body["records"], high_water=body["high_water"],
                ))
            else:
                on_done(BrokerReply(ok=False))

        def on_timeout():
            self.healthy[p] = False
            self.failed_requests += 1
            on_done(BrokerReply(ok=False))

        self.router.request(
            f"partition{p}",
            "exec",
            {
                "op": req.op, "partition": p, "key": req.key,
                "value": req.value, "offset": req.offset,
                "max": req.max_records, "group": req.group,
            },
            on_reply,
            timeout=self.timeout,
            on_timeout=on_timeout,
            retries=1,
        )

    def preload(self, records) -> None:
        for key, value in records:
            p = partition_for(key, self.n_partitions)
            self.servers[p].partition(p).append(key, value)

    def partition_sizes(self) -> list[int]:
        return [s.records_stored() for s in self.servers]
