"""C-type schemas for the substrates' wire data.

These model the structures the paper's serializer tool handled: Redis's
key/value entry (the 182-LoC generated serializer) and Suricata's
packet structure (2380 LoC generated — a large nest of headers, flow
state and detection metadata).  The schemas feed
:mod:`repro.serde.codegen` both for the Table 2 benefit analysis and
for typed ``save``/``write`` payloads in tests.
"""

from __future__ import annotations

from ..serde.ctypes_model import (
    Array,
    CString,
    Pointer,
    Primitive,
    SizedBuffer,
    TaggedUnion,
    TypeRegistry,
)

U8 = Primitive("uint8")
U16 = Primitive("uint16")
U32 = Primitive("uint32")
U64 = Primitive("uint64")
I64 = Primitive("int64")
F64 = Primitive("float64")
BOOL = Primitive("bool")


def redis_entry_schema(reg: TypeRegistry) -> str:
    """The redislite key/value entry (cf. the paper's Redis key and
    value structure)."""
    reg.struct(
        "redis_value",
        kind=U8,                      # string / int / ...
        data=SizedBuffer(1 << 20),
        int_value=I64,
    )
    reg.struct(
        "redis_entry",
        key=CString(512),
        value=Pointer("redis_value"),
        expires_at=F64,
        has_expiry=BOOL,
        lru_clock=U32,
    )
    reg.struct(
        "redis_keyspace_chunk",
        count=U32,
        entries=Array(Pointer("redis_entry"), 16),
        next=Pointer("redis_keyspace_chunk"),  # linked chunks: depth-capped
    )
    return "redis_entry"


def suricata_packet_schema(reg: TypeRegistry) -> str:
    """The suricatalite packet structure: layered headers, flow state
    and detection metadata (the paper's 2380-LoC generated case)."""
    reg.struct(
        "eth_header",
        dst=Array(U8, 6),
        src=Array(U8, 6),
        ethertype=U16,
    )
    reg.struct(
        "ipv4_header",
        version_ihl=U8,
        tos=U8,
        total_len=U16,
        ident=U16,
        flags_frag=U16,
        ttl=U8,
        proto=U8,
        checksum=U16,
        src=U32,
        dst=U32,
    )
    reg.struct(
        "ipv6_header",
        ver_class_flow=U32,
        payload_len=U16,
        next_header=U8,
        hop_limit=U8,
        src=Array(U8, 16),
        dst=Array(U8, 16),
    )
    reg.register(
        "ip_header",
        TaggedUnion("ip_header", ((4, "ipv4_header"), (6, "ipv6_header"))),
    )
    reg.struct(
        "tcp_header",
        src_port=U16,
        dst_port=U16,
        seq=U32,
        ack=U32,
        off_flags=U16,
        window=U16,
        checksum=U16,
        urgent=U16,
    )
    reg.struct(
        "udp_header",
        src_port=U16,
        dst_port=U16,
        length=U16,
        checksum=U16,
    )
    reg.struct("icmp_header", type=U8, code=U8, checksum=U16, rest=U32)
    reg.register(
        "l4_header",
        TaggedUnion(
            "l4_header", ((6, "tcp_header"), (17, "udp_header"), (1, "icmp_header"))
        ),
    )
    reg.struct(
        "flow_state",
        packets_toserver=U64,
        packets_toclient=U64,
        bytes_toserver=U64,
        bytes_toclient=U64,
        state=U8,
        alerted=BOOL,
        app_proto=U16,
        last_seen=F64,
    )
    reg.struct(
        "detect_alert",
        sid=U32,
        action=U8,
        msg=CString(256),
    )
    reg.struct(
        "suricata_packet",
        ts=F64,
        pcap_cnt=U64,
        eth=Pointer("eth_header"),
        ip=Pointer("ip_header"),
        l4=Pointer("l4_header"),
        payload=SizedBuffer(1 << 16),
        flow=Pointer("flow_state"),
        alerts=Array(Pointer("detect_alert"), 15),
        alert_count=U8,
        flags=U32,
        vlan_id=Array(U16, 2),
        livedev=CString(64),
        next=Pointer("suricata_packet"),  # capture-queue chain, depth-capped
    )
    return "suricata_packet"
