"""Direct (non-DSL) warm-replica fail-over: the control arm for the
sec. 7.3 architecture.

Every request fans out to every *registered* replica over the
hand-rolled message bus; the front waits for all of them (the
conservative Fig. 13 discipline), replies to the client from the first
successful response, and deregisters a replica that misses its
deadline.  A periodic poll re-registers recovered replicas — the
analogue of the DSL's startup/reactivate loop.

Like the other ``repro.direct`` modules this is written straight
against the simulator and the substrate API, re-implementing the
correlation, timeout and membership logic the C-Saw runtime provides
for free.
"""

from __future__ import annotations

from typing import Callable

from ..redislite.server import Command, RedisServer, Reply
from ..runtime.sim import Simulator
from .messaging import Envelope, MessageBus


class DirectFailoverRedis:
    """Warm fail-over over N redislite replicas without the DSL."""

    def __init__(
        self,
        sim: Simulator,
        *,
        n_replicas: int = 2,
        cost_model=None,
        latency: float = 100e-6,
        timeout: float = 0.5,
        reregister_poll: float | None = 1.0,
    ):
        self.sim = sim
        self.timeout = timeout
        self.bus = MessageBus(sim, latency)
        self.front = self.bus.endpoint("front")
        self.servers: list[RedisServer] = []
        self.registered: list[bool] = [True] * n_replicas
        self.seq = 0
        self.failed_requests = 0

        for i in range(n_replicas):
            server = RedisServer(name=f"replica{i}", cost=cost_model)
            self.servers.append(server)
            ep = self.bus.endpoint(f"replica{i}")
            ep.on("exec", self._make_exec(server))
            ep.on("ping", lambda env: True)

        if reregister_poll is not None:
            self._arm_reregister_poll(reregister_poll)

    def _make_exec(self, server: RedisServer):
        def handler(env: Envelope):
            req = env.body[1]
            cmd = Command(req["op"], req["key"], req.get("value", b""))
            reply, _cost = server.execute(cmd, now=self.sim.now)
            return {"ok": reply.ok, "value": reply.value, "hit": reply.hit}

        return handler

    def _arm_reregister_poll(self, interval: float) -> None:
        """Re-admit recovered replicas, the startup/reactivate loop."""

        def poll():
            for i in range(len(self.servers)):
                if not self.registered[i]:
                    self.front.request(
                        f"replica{i}",
                        "ping",
                        None,
                        lambda _r, i=i: self.registered.__setitem__(i, True),
                        timeout=self.timeout,
                    )
            self.sim.call_after(interval, poll)

        self.sim.call_after(interval, poll)

    # -- client API (mirrors arch.failover.FailoverRedis) ------------------

    def submit(self, cmd: Command, on_done: Callable[[Reply], None]) -> None:
        targets = [i for i, r in enumerate(self.registered) if r]
        if not targets:
            self.failed_requests += 1
            on_done(Reply(ok=False))
            return

        request = {"op": cmd.op, "key": cmd.key, "value": cmd.value}
        outstanding = [len(targets)]
        replies: dict[int, dict] = {}

        def finish():
            good = [replies[i] for i in sorted(replies) if replies[i]["ok"]]
            if not good:
                self.failed_requests += 1
                on_done(Reply(ok=False))
                return
            self.seq += 1
            first = good[0]
            on_done(Reply(ok=first["ok"], value=first["value"], hit=first["hit"]))

        def settle():
            outstanding[0] -= 1
            if outstanding[0] == 0:
                finish()

        for i in targets:

            def on_reply(reply: dict, i=i):
                replies[i] = reply
                settle()

            def on_timeout(i=i):
                self.registered[i] = False  # deregister the straggler
                settle()

            self.front.request(
                f"replica{i}",
                "exec",
                request,
                on_reply,
                timeout=self.timeout,
                on_timeout=on_timeout,
            )

    def preload(self, commands) -> None:
        for cmd in commands:
            for server in self.servers:
                server.execute(cmd, now=0.0)

    def registered_backends(self) -> list[str]:
        return [f"replica{i}" for i, r in enumerate(self.registered) if r]
