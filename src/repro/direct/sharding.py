"""Direct (non-DSL) sharding: the control arm of Table 2.

A router endpoint hashes keys (djb2) or 5-tuples and forwards each
command to one of N shard endpoints over the hand-rolled message bus,
correlating replies back to clients, handling shard timeouts, and
tracking per-shard health — all logic the DSL version gets from ~40
lines of architecture description.
"""

from __future__ import annotations

from typing import Callable

from ..redislite.bench import RequestPort
from ..redislite.server import Command, RedisServer, Reply
from ..redislite.workload import SIZE_CLASSES, djb2
from ..runtime.sim import Simulator
from .messaging import Envelope, MessageBus


class DirectShardedRedis:
    """Key- or size-sharded Redis without the DSL (RequestPort)."""

    def __init__(
        self,
        sim: Simulator,
        n_shards: int = 4,
        *,
        mode: str = "key",
        size_table: dict[str, int] | None = None,
        cost_model=None,
        latency: float = 100e-6,
        timeout: float = 2.0,
    ):
        self.sim = sim
        self.n_shards = n_shards
        self.mode = mode
        self.size_table = size_table or {}
        self.timeout = timeout
        self.bus = MessageBus(sim, latency)
        self.router = self.bus.endpoint("router")
        self.servers: list[RedisServer] = []
        self.shard_counts = [0] * n_shards
        self.healthy = [True] * n_shards
        self.failed_requests = 0
        self._busy_until = [0.0] * n_shards

        for i in range(n_shards):
            server = RedisServer(name=f"dshard{i}", cost=cost_model)
            self.servers.append(server)
            ep = self.bus.endpoint(f"shard{i}")
            ep.on("exec", self._make_exec(i, server))

    def _make_exec(self, idx: int, server: RedisServer):
        def handler(env: Envelope):
            op, key, value = env.body[1]
            reply, cost = server.execute(Command(op, key, value), now=self.sim.now)
            # model the shard's serial service time
            self._busy_until[idx] = max(self._busy_until[idx], self.sim.now) + cost
            return {"ok": reply.ok, "value": reply.value, "hit": reply.hit}

        return handler

    def _choose(self, cmd: Command) -> int:
        if self.mode == "key":
            return djb2(cmd.key) % self.n_shards
        size = self.size_table.get(cmd.key, len(cmd.value))
        for i, (lo, hi) in enumerate(SIZE_CLASSES):
            if lo < size <= hi:
                return i % self.n_shards
        return len(SIZE_CLASSES) % self.n_shards

    # -- RequestPort --------------------------------------------------------

    def submit(self, cmd: Command, on_done: Callable[[Reply], None]) -> None:
        shard = self._choose(cmd)
        self.shard_counts[shard] += 1

        def on_reply(body: object):
            self.healthy[shard] = True
            if isinstance(body, dict):
                on_done(Reply(ok=body["ok"], value=body["value"], hit=body["hit"]))
            else:
                on_done(Reply(ok=False))

        def on_timeout():
            self.healthy[shard] = False
            self.failed_requests += 1
            on_done(Reply(ok=False))

        self.router.request(
            f"shard{shard}",
            "exec",
            (cmd.op, cmd.key, cmd.value),
            on_reply,
            timeout=self.timeout,
            on_timeout=on_timeout,
            retries=1,
        )

    def preload(self, commands) -> None:
        for cmd in commands:
            self.servers[self._choose(cmd)].execute(cmd, now=0.0)

    def shard_sizes(self) -> list[int]:
        return [s.store.size() for s in self.servers]
