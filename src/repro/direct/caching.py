"""Direct (non-DSL) caching: the control arm of Table 2.

A caching proxy endpoint classifies commands, probes its LRU, forwards
misses to the server endpoint, installs fresh values, invalidates on
writes, and correlates concurrent in-flight misses (collapsing
duplicate look-ups for the same key) — concurrency bookkeeping the DSL
version inherits from junction scheduling.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable

from ..redislite.server import Command, RedisServer, Reply
from ..runtime.sim import Simulator
from .messaging import Envelope, MessageBus


class DirectCachedRedis:
    """Redis behind a hand-rolled caching proxy (RequestPort)."""

    def __init__(
        self,
        sim: Simulator,
        *,
        capacity: int = 128,
        cost_model=None,
        latency: float = 100e-6,
        timeout: float = 2.0,
        lookup_cost: float = 5e-6,
    ):
        self.sim = sim
        self.timeout = timeout
        self.lookup_cost = lookup_cost
        self.bus = MessageBus(sim, latency)
        self.proxy = self.bus.endpoint("proxy")
        self.backend = self.bus.endpoint("backend")
        self.server = RedisServer(name="dcache-fun", cost=cost_model)
        self.capacity = capacity
        self._cache: OrderedDict[str, bytes] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.failed_requests = 0
        #: collapse concurrent misses on the same key
        self._inflight: dict[str, list[Callable[[Reply], None]]] = {}

        def exec_handler(env: Envelope):
            _topic, (op, key, value) = env.body
            reply, _cost = self.server.execute(Command(op, key, value), now=self.sim.now)
            return {"ok": reply.ok, "value": reply.value, "hit": reply.hit}

        self.backend.on("exec", exec_handler)

    # -- cache ops ----------------------------------------------------------

    def _cache_get(self, key: str) -> bytes | None:
        if key in self._cache:
            self._cache.move_to_end(key)
            return self._cache[key]
        return None

    def _cache_put(self, key: str, value: bytes) -> None:
        self._cache[key] = value
        self._cache.move_to_end(key)
        while len(self._cache) > self.capacity:
            self._cache.popitem(last=False)

    # -- RequestPort ------------------------------------------------------------

    def submit(self, cmd: Command, on_done: Callable[[Reply], None]) -> None:
        if cmd.op == "GET":
            value = self._cache_get(cmd.key)
            if value is not None:
                self.hits += 1
                self.sim.call_after(
                    self.lookup_cost, lambda: on_done(Reply(ok=True, value=value, hit=True))
                )
                return
            self.misses += 1
            if cmd.key in self._inflight:
                self._inflight[cmd.key].append(on_done)
                return
            self._inflight[cmd.key] = [on_done]
            self._forward(cmd, cacheable=True)
            return
        if cmd.op == "SET":
            self._cache.pop(cmd.key, None)
        self._forward(cmd, cacheable=False, direct_done=on_done)

    def _forward(
        self,
        cmd: Command,
        *,
        cacheable: bool,
        direct_done: Callable[[Reply], None] | None = None,
    ) -> None:
        def finish(reply: Reply):
            if cacheable:
                waiters = self._inflight.pop(cmd.key, [])
                if reply.ok and reply.value is not None:
                    self._cache_put(cmd.key, reply.value)
                for w in waiters:
                    w(reply)
            elif direct_done is not None:
                direct_done(reply)

        def on_reply(body):
            if isinstance(body, dict):
                finish(Reply(ok=body["ok"], value=body["value"], hit=body["hit"]))
            else:
                finish(Reply(ok=False))

        def on_timeout():
            self.failed_requests += 1
            finish(Reply(ok=False))

        self.proxy.request(
            "backend",
            "exec",
            (cmd.op, cmd.key, cmd.value),
            on_reply,
            timeout=self.timeout,
            on_timeout=on_timeout,
        )

    def preload(self, commands) -> None:
        for cmd in commands:
            self.server.execute(cmd, now=0.0)
