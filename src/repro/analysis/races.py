"""Write-write race detection over KV keys.

Two complementary passes:

* **Cross-junction** (key-flow based): two different junctions with
  write sites for the same key in the same table, where no ordering
  exists between the junctions' executions.  Filtered down to pairs
  the runtime does not already serialize:

  - ``local`` and ``host`` sites are excluded: a junction's own table
    is written only while the junction executes, and remote updates
    arriving mid-run are queued and applied after the run — the
    owner's run loop serializes them (the consume/reset handshake
    ``guard Req`` … ``retract[] Req`` relies on exactly this);
  - ``echo`` sites are excluded — the interpreter's ack/recv-seq guard
    (``_exec_assert``) drops stale sender-side copies;
  - equal constant values (tt/tt, ff/ff) commute and are excluded.

  What remains is two *remote* writers racing on network arrival
  order.  Pairs from the *same type-level junction* on different
  instances (replica responses — every warm back-end writing ``m`` to
  the front-end) are reported as warnings; distinct writers are
  errors.

* **Intra-junction** (event-structure based): within one junction's
  denotation, two ``Wr`` events for the same key in the same table
  that are concurrent (no causal order, no conflict) — parallel arms
  of ``+`` / ``<| |>`` racing on one key.  The witness is a linear
  extension of the union of the two events' histories.  We denote with
  ``expand=False``: the unexpanded structure is linear in the body
  size (wait expansion is exponential) and keeps the body's own
  enablement order, which is exactly what concurrency of the
  junction's writes depends on.
"""

from __future__ import annotations

from itertools import combinations

from ..semantics.denote import Denoter
from ..semantics.events import Wr
from .bind import Binding
from .directives import Directives
from .keyflow import UNRESOLVED, KeyFlow, WriteSite
from .model import Finding

#: safety net: junctions whose (unexpanded) denotation still exceeds
#: this are skipped with an info finding — the key-flow cross-junction
#: pass still covers them.
MAX_EVENTS = 2000


def cross_junction_races(
    kf: KeyFlow, binding: Binding, directives: Directives
) -> list[Finding]:
    by_key: dict[tuple[str, str], list[WriteSite]] = {}
    for w in kf.writes:
        if w.kind != "remote" or w.target == UNRESOLVED:
            continue
        by_key.setdefault((w.target, w.key), []).append(w)

    origin_type = {bj.node: f"{bj.type_name}::{bj.junction}" for bj in binding.junctions}

    findings: list[Finding] = []
    for (target, key), sites in sorted(by_key.items()):
        suppressed_by = directives.suppression_for("race", key, target)

        # replica groups: instances of one type-level junction all
        # writing the same key — one collapsed warning per group
        by_type: dict[str, list[WriteSite]] = {}
        for s in sites:
            by_type.setdefault(origin_type.get(s.origin, s.origin), []).append(s)
        for _, group in sorted(by_type.items()):
            origins = sorted({s.origin for s in group})
            if len(origins) < 2:
                continue
            pairs = [
                (a, b)
                for a, b in combinations(group, 2)
                if a.origin != b.origin and _conflicting(a.value, b.value)
            ]
            if not pairs:
                continue
            a, b = pairs[0]
            findings.append(
                Finding(
                    check="race",
                    kind="replica-write-race",
                    severity="warning",
                    node=target,
                    key=key,
                    message=(
                        f"{', '.join(origins)} all write {key!r} in {target}'s "
                        f"table with no ordering between them (symmetric "
                        f"replicas of one junction — last reply wins)"
                    ),
                    sites=tuple(dict.fromkeys(s.describe() for s in group)),
                    witness=_cross_witness(a, b, target, key),
                    suppressed=suppressed_by is not None,
                    suppressed_by=suppressed_by or "",
                )
            )

        # distinct writers: pairwise errors
        reported: set[tuple[str, str]] = set()
        for a, b in combinations(sites, 2):
            if a.origin == b.origin:
                continue  # same junction: ordering is the intra pass's job
            if origin_type.get(a.origin, a.origin) == origin_type.get(b.origin, b.origin):
                continue  # replicas, collapsed above
            if not _conflicting(a.value, b.value):
                continue
            pair_id = tuple(sorted((a.origin, b.origin)))
            if pair_id in reported:
                continue
            reported.add(pair_id)
            findings.append(
                Finding(
                    check="race",
                    kind="write-write-race",
                    severity="error",
                    node=target,
                    key=key,
                    message=(
                        f"{a.origin} and {b.origin} both write {key!r} in "
                        f"{target}'s table with no ordering between them"
                    ),
                    sites=(a.describe(), b.describe()),
                    witness=_cross_witness(a, b, target, key),
                    suppressed=suppressed_by is not None,
                    suppressed_by=suppressed_by or "",
                )
            )
    return findings


def _conflicting(v1: str, v2: str) -> bool:
    """tt/tt and ff/ff commute; data (*) and opposite polarities don't."""
    return v1 != v2 or v1 == "*"


def _cross_witness(a: WriteSite, b: WriteSite, target: str, key: str) -> tuple[str, ...]:
    return (
        f"Sched_{a.origin}",
        f"{a.origin} executes: {a.stmt}",
        f"Sched_{b.origin} (no order with {a.origin}'s run)",
        f"{b.origin} executes: {b.stmt}",
        f"both updates land in {target}'s table for {key!r}; the final "
        f"value depends on arrival order",
    )


# ---------------------------------------------------------------------------
# Intra-junction concurrency (event structures)
# ---------------------------------------------------------------------------


def intra_junction_races(
    binding: Binding, directives: Directives, *, max_unfold: int = 1
) -> list[Finding]:
    findings: list[Finding] = []
    for bj in binding.junctions:
        den = Denoter(bj.node, max_unfold=max_unfold)
        try:
            # unexpanded: linear in body size, and no duplicated
            # downstream copies to produce spurious concurrent pairs
            es = den.denote_junction(bj.body, bj.guard, expand=False)
        except Exception:
            continue  # denotation limits (unexpanded templates etc.)
        if es.size() > MAX_EVENTS:
            findings.append(_skipped(bj.node, f"{es.size()} events"))
            continue
        events = {e.id: e for e in es.events}
        clo = es.closure_le()
        hist: dict[int, set] = {e.id: {e.id} for e in es.events}
        for p, q in clo:
            hist[q].add(p)
        conflict_pairs = [tuple(p) for p in es.conflict if len(p) == 2]

        def _concurrent(x: int, y: int) -> bool:
            """No order and conflict-free histories.  Histories are
            downward closed, so an *inherited* conflict between them
            exists iff a *base* conflict pair straddles them — no need
            to materialize the inherited relation (quadratic blowup)."""
            if (x, y) in clo or (y, x) in clo:
                return False
            hx, hy = hist[x], hist[y]
            for p, q in conflict_pairs:
                if (p in hx and q in hy) or (p in hy and q in hx):
                    return False
            return True

        # isolated (outward=False) events are alternative copies from the
        # otherwise/transaction rules; sequential composition does not
        # order them, so they would pair up spuriously — skip them.
        wrs = [e for e in es.events if isinstance(e.label, Wr) and e.outward]
        seen: set[tuple[str, str, str, str]] = set()
        for a, b in combinations(sorted(wrs, key=lambda e: e.id), 2):
            la, lb = a.label, b.label
            if la.key != lb.key:
                continue
            tables = la.junctions & lb.junctions
            if not tables:
                continue
            if not _conflicting(_val(la.value), _val(lb.value)):
                continue
            if str(la) == str(lb):
                continue  # copies of one statement (otherwise duplication)
            if not _concurrent(a.id, b.id):
                continue
            table = sorted(tables)[0]
            sig = (bj.node, la.key, str(la), str(lb))
            if sig in seen or (bj.node, la.key, str(lb), str(la)) in seen:
                continue
            seen.add(sig)
            suppressed_by = directives.suppression_for("race", la.key, bj.node)
            findings.append(
                Finding(
                    check="race",
                    kind="concurrent-write-race",
                    severity="error",
                    node=bj.node,
                    key=la.key,
                    message=(
                        f"parallel branches of {bj.node} write {la.key!r} in "
                        f"{table}'s table concurrently ({la} vs {lb})"
                    ),
                    sites=(f"{bj.node}: {la}", f"{bj.node}: {lb}"),
                    witness=_linear_extension(hist, events, a.id, b.id),
                    suppressed=suppressed_by is not None,
                    suppressed_by=suppressed_by or "",
                )
            )
    return findings


def _skipped(node: str, why: str) -> Finding:
    return Finding(
        check="race",
        kind="intra-race-skipped",
        severity="info",
        node=node,
        key="",
        message=(
            f"intra-junction concurrency pass skipped for {node} "
            f"({why} — denotation too large); cross-junction checks still apply"
        ),
    )


def _val(v) -> str:
    if v is True:
        return "tt"
    if v is False:
        return "ff"
    return "*"


def _linear_extension(hist: dict, events: dict, a: int, b: int) -> tuple[str, ...]:
    """A schedule reaching both events: topological order of the union
    of their histories, racing writes last."""
    ids = (hist[a] | hist[b]) - {a, b}
    order = sorted(ids, key=lambda i: (len(hist[i]), i))
    steps = [str(events[i]) for i in order]
    steps.append(str(events[a]))
    steps.append(f"{events[b]}   <- races the previous write")
    return tuple(steps)
