"""Dead coordination code: unsatisfiable guards, dead case arms,
never-started instances, and key-flow hygiene.

The **key-flow lattice** assigns every proposition key the set of
values it can ever hold: its ``init`` polarity plus every value some
write site can give it (host writes count as both).  Propositions named
by an ``# analyze: external`` directive can additionally be flipped by
the embedding application (``System.external_update``) and evaluate as
UNKNOWN.  Guards and case-arm formulas are then evaluated in Kleene
three-valued logic (:func:`repro.core.formula.evaluate`): *definitely
false* means dead code.

The lattice is closed-world on purpose: a guard that waits on a
proposition nothing ever asserts is dead *unless* the architecture
declares the proposition as an external input — which doubles as
machine-checked documentation of the program's interface.
"""

from __future__ import annotations

from ..core import ast as A
from ..core.formula import Formula, UNKNOWN, evaluate, to_dnf
from ..semantics.denote import _atomize
from .bind import Binding
from .directives import Directives, family
from .keyflow import KeyFlow, _formula_keys, _declared_sets
from .model import Finding


def _value_lattice(kf: KeyFlow, directives: Directives) -> dict[tuple[str, str], set[str]]:
    possible: dict[tuple[str, str], set[str]] = {}
    for (node, key), init in kf.prop_inits.items():
        possible[(node, key)] = {init}
    for w in kf.writes:
        if w.value == "*" and w.kind != "host":
            continue  # data writes don't touch propositions
        slot = possible.setdefault((w.target, w.key), set())
        if w.kind == "host":
            if (w.target, w.key) in kf.prop_inits:
                slot.update(("tt", "ff"))
        else:
            slot.add(w.value)
    for (node, key), slot in possible.items():
        if directives.is_external(key):
            slot.update(("tt", "ff"))
    return possible


def _env_for(node: str, possible: dict, kf: KeyFlow):
    """A three-valued proposition environment for formulas at ``node``."""

    def env(key: str):
        slot = possible.get((node, key))
        if slot is None:
            # undeclared key: family init (``Work`` for ``Work[w]``) or unknown
            slot = possible.get((node, family(key)))
        if slot == {"tt"}:
            return True
        if slot == {"ff"}:
            return False
        return UNKNOWN

    return env


def dead_code(
    kf: KeyFlow, binding: Binding, directives: Directives
) -> list[Finding]:
    possible = _value_lattice(kf, directives)
    findings: list[Finding] = []

    for bj in binding.junctions:
        env = _env_for(bj.node, possible, kf)
        if bj.guard is not None:
            verdict = _formula_verdict(bj.guard, env)
            if verdict is False:
                reason = _unsat_reason(bj.guard, kf, bj.node, possible)
                suppressed_by = directives.suppression_for("dead", bj.node)
                findings.append(
                    Finding(
                        check="dead",
                        kind="dead-junction",
                        severity="error",
                        node=bj.node,
                        key=str(bj.guard),
                        message=(
                            f"guard of {bj.node} can never hold: {reason}"
                        ),
                        suppressed=suppressed_by is not None,
                        suppressed_by=suppressed_by or "",
                    )
                )
        findings.extend(_dead_case_arms(bj, env, directives))

    findings.extend(_never_started(binding, directives))
    return findings


def _formula_verdict(f: Formula, env):
    """False for definitely-unsatisfiable, else True/UNKNOWN."""
    if not to_dnf(_atomize(f)):
        return False  # contradictory regardless of any valuation
    return evaluate(f, env)


def _unsat_reason(f: Formula, kf: KeyFlow, node: str, possible: dict) -> str:
    if not to_dnf(_atomize(f)):
        return f"{f} is contradictory"
    parts = []
    for key in _formula_keys(f, {}):
        slot = possible.get((node, key))
        if slot is not None and len(slot) == 1:
            writers = [w for w in kf.writers_of(node, key) if w.kind != "echo"]
            how = (
                f"written only as {next(iter(slot))} by "
                + ", ".join(sorted({w.origin for w in writers}))
                if writers
                else f"initialized {next(iter(slot))} and never written "
                "(declare '# analyze: external "
                + family(key)
                + "' if the application asserts it)"
            )
            parts.append(f"{key} is {how}")
    return "; ".join(parts) or f"{f} evaluates to false under the key-flow lattice"


def _dead_case_arms(bj, env, directives: Directives) -> list[Finding]:
    findings: list[Finding] = []
    idx_elems = _declared_sets(bj)["idx"]
    for e in A.walk(bj.body):
        if not isinstance(e, A.Case):
            continue
        unreachable_after: str | None = None
        for i, arm in enumerate(e.arms):
            inner = arm.arm if isinstance(arm, A.ForArm) else arm
            label = f"case arm {i + 1} ({inner.formula} => ...)"
            if unreachable_after is not None:
                findings.append(
                    _arm_finding(
                        bj.node,
                        inner,
                        "unreachable-case-arm",
                        f"{label} of {bj.node} is unreachable: "
                        f"{unreachable_after}",
                        directives,
                    )
                )
                continue
            verdict = _arm_verdict(inner.formula, env, idx_elems)
            if verdict is False:
                findings.append(
                    _arm_finding(
                        bj.node,
                        inner,
                        "dead-case-arm",
                        f"{label} of {bj.node} can never be taken "
                        f"({inner.formula} is false under the key-flow lattice)",
                        directives,
                    )
                )
            elif verdict is True and inner.terminator == "break":
                unreachable_after = (
                    f"arm {i + 1} ({inner.formula}) always holds and breaks"
                )
    return findings


def _arm_verdict(f: Formula, env, idx_elems: dict):
    if not to_dnf(_atomize(f)):
        return False
    if _mentions_idx(f, idx_elems):
        return UNKNOWN  # cursor-indexed arms depend on the cursor value
    return evaluate(f, env)


def _mentions_idx(f: Formula, idx_elems: dict) -> bool:
    from ..core.formula import prop_nodes

    for p in prop_nodes(f):
        idx = p.index
        name = idx.name if isinstance(idx, A.Ref) and idx.is_simple else idx
        if isinstance(name, str) and name in idx_elems:
            return True
    return False


def _arm_finding(node, inner, kind, message, directives: Directives) -> Finding:
    suppressed_by = directives.suppression_for("dead", node, str(inner.formula))
    return Finding(
        check="dead",
        kind=kind,
        severity="warning",
        node=node,
        key=str(inner.formula),
        message=message,
        suppressed=suppressed_by is not None,
        suppressed_by=suppressed_by or "",
    )


def _never_started(binding: Binding, directives: Directives) -> list[Finding]:
    if binding.has_dynamic_starts:
        return []  # idx-cursor starts (elastic scale-out): anything may start
    findings = []
    for iname in sorted(binding.program.instance_map()):
        if iname in binding.started:
            continue
        nodes = [bj.node for bj in binding.junctions if bj.instance == iname]
        suppressed_by = directives.suppression_for("dead", iname, *nodes)
        findings.append(
            Finding(
                check="dead",
                kind="never-started-instance",
                severity="warning",
                node=iname,
                key="",
                message=(
                    f"instance {iname!r} is never started by main or any "
                    f"junction; its junction(s) {', '.join(nodes) or '(none)'} "
                    "are unreachable unless the application starts it"
                ),
                suppressed=suppressed_by is not None,
                suppressed_by=suppressed_by or "",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# Key-flow hygiene (advisory)
# ---------------------------------------------------------------------------


def unused_keys(kf: KeyFlow, binding: Binding, directives: Directives) -> list[Finding]:
    findings: list[Finding] = []
    written = {
        (w.target, w.key) for w in kf.writes if w.kind != "echo"
    }
    read = kf.read_keys()
    read_families = {(n, family(k)) for n, k in read}
    host_nodes = {node for node, _, _ in kf.host_blocks}

    for (node, key) in sorted(set(kf.prop_inits) | kf.data_keys):
        is_read = (node, key) in read or (node, family(key)) in read or (
            node,
            key,
        ) in read_families
        is_written = (node, key) in written
        if not is_read and is_written and node not in host_nodes:
            suppressed_by = directives.suppression_for("unused", key, node)
            findings.append(
                Finding(
                    check="unused",
                    kind="write-never-read",
                    severity="info",
                    node=node,
                    key=key,
                    message=(
                        f"{key!r} is written in {node}'s table but nothing "
                        "reads it (no guard, wait, case, verify or data use)"
                    ),
                    suppressed=suppressed_by is not None,
                    suppressed_by=suppressed_by or "",
                )
            )
        if is_read and not is_written and (node, key) in kf.prop_inits:
            if directives.is_external(key):
                continue
            suppressed_by = directives.suppression_for("unused", key, node)
            findings.append(
                Finding(
                    check="unused",
                    kind="read-never-written",
                    severity="info",
                    node=node,
                    key=key,
                    message=(
                        f"{key!r} is read at {node} but no junction or host "
                        "block ever writes it; if the application asserts it, "
                        f"declare '# analyze: external {family(key)}'"
                    ),
                    suppressed=suppressed_by is not None,
                    suppressed_by=suppressed_by or "",
                )
            )
    return findings
