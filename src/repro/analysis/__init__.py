"""Static analysis over compiled C-Saw programs.

The paper's pitch for a non-Turing-complete coordination language is
that architectures stay *analyzable* (secs. 1 and 8).  This package
cashes that in: it walks the expanded AST (:mod:`repro.core.expand`
output) and the denoted event structures (:mod:`repro.semantics`) and
reports

* write-write races on KV keys between concurrently-enabled writers,
  with the conflicting sites and a witness interleaving;
* dead coordination code — junctions whose guard cannot hold under the
  key-flow lattice, dead ``case`` arms, instances never started;
* host write-contract problems (``host NAME {writes}``) and remote
  writes of keys the target junction never declared;
* advisory key-flow hygiene: keys read but never written, written but
  never read, and the program's external inputs.

Entry points: :func:`analyze_program` / :func:`analyze_source`; the CLI
surface is ``repro analyze`` (and a fast subset under ``repro check
--strict``).  See ``docs/ANALYSIS.md``.
"""

from .analyzer import analyze_program, analyze_source, fast_checks
from .directives import Directives, parse_directives
from .model import AnalysisReport, Finding

__all__ = [
    "AnalysisReport",
    "Directives",
    "Finding",
    "analyze_program",
    "analyze_source",
    "fast_checks",
    "parse_directives",
]
