"""Bind compiled junctions to instances for whole-program analysis.

Mirrors what :meth:`repro.runtime.system.System._start_instance` does at
run time — specialize each (instance, junction) body with the load-time
configuration, resolve ``me::`` references — but *statically*, for every
instance at once.  Junction parameters that remain unbound (timeouts
supplied by ``start`` arguments) are defaulted to ``1.0``: parameter
values never influence key flow, only deadlines.

Also derives the set of instances that are ever started.  ``start``
targets that go through an idx cursor (elastic scale-out) are dynamic —
their presence disables the never-started check.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ast as A
from ..core.compiler import CompiledJunction, CompiledProgram
from ..core.expand import resolve_me_decl, resolve_me_expr, specialize, to_ast_value
from ..core.formula import Formula


@dataclass
class BoundJunction:
    """One (instance, junction) pair with a closed body."""

    node: str  # "instance::junction"
    instance: str
    type_name: str
    junction: str
    params: tuple[str, ...]
    decls: tuple[A.Decl, ...]
    body: A.Expr
    guard: Formula | None


@dataclass
class Binding:
    """The statically-bound program."""

    program: CompiledProgram
    junctions: list[BoundJunction]
    unbound: list[tuple[str, str]]  # (node, reason) that failed to close
    started: frozenset[str]  # instance names started anywhere
    has_dynamic_starts: bool

    def by_node(self) -> dict[str, BoundJunction]:
        return {bj.node: bj for bj in self.junctions}

    def sole_junction_node(self, instance: str) -> str | None:
        """The runtime's instance-name target resolution: an instance
        with exactly one junction."""
        nodes = [bj.node for bj in self.junctions if bj.instance == instance]
        return nodes[0] if len(nodes) == 1 else None


def bind_program(program: CompiledProgram, env: dict | None = None) -> Binding:
    cfg = program.config_env()
    for k, v in (env or {}).items():
        cfg[k] = to_ast_value(v)

    main_body = _specialized_main(program, cfg)
    start_args = _collect_start_args(main_body)

    junctions: list[BoundJunction] = []
    unbound: list[tuple[str, str]] = []
    for iname, tname in program.instance_map().items():
        for cj in program.junctions_of_type(tname):
            node = f"{iname}::{cj.name}"
            args = start_args.get((iname, cj.name), start_args.get((iname, None)))
            try:
                body, decls = _close(cj, cfg, args)
            except Exception as exc:  # stays analyzable program-minus-one
                unbound.append((node, str(exc)))
                continue
            body = resolve_me_expr(body, iname, cj.name)
            decls = tuple(resolve_me_decl(d, iname, cj.name) for d in decls)
            guard = None
            for d in decls:
                if isinstance(d, A.Guard):
                    guard = d.formula
            junctions.append(
                BoundJunction(
                    node=node,
                    instance=iname,
                    type_name=tname,
                    junction=cj.name,
                    params=cj.params,
                    decls=decls,
                    body=body,
                    guard=guard,
                )
            )

    started, dynamic = _started_instances(program, main_body, junctions)
    return Binding(
        program=program,
        junctions=junctions,
        unbound=unbound,
        started=frozenset(started),
        has_dynamic_starts=dynamic,
    )


def _specialized_main(program: CompiledProgram, cfg: dict) -> A.Expr | None:
    if program.main is None:
        return None
    env = dict(cfg)
    for p in program.main.params:
        env.setdefault(p, A.Num(1.0))
    try:
        body, _ = specialize(program.main.body, (), env)
        return body
    except Exception:
        return program.main.body


def _collect_start_args(main_body: A.Expr | None) -> dict[tuple[str, str | None], tuple]:
    """Junction arguments supplied by ``main``'s ``start`` statements:
    ``start f b({b1,b2}, t)`` binds f::b's params.  An anonymous
    argument group (``start Wrk1(t)``) applies to every junction of the
    instance (keyed with junction None)."""
    out: dict[tuple[str, str | None], tuple] = {}
    if main_body is None:
        return out
    for e in A.walk(main_body):
        if not isinstance(e, A.Start):
            continue
        iname = str(e.instance)
        for jname, args in e.junction_args:
            out[(iname, jname)] = tuple(args)
    return out


def _close(
    cj: CompiledJunction, cfg: dict, args: tuple | None
) -> tuple[A.Expr, tuple[A.Decl, ...]]:
    """Specialize with the config plus ``main``'s start arguments;
    default params that remain unbound to 1.0 (timeouts never influence
    key flow)."""
    env = dict(cfg)
    if args:
        for p, a in zip(cj.params, args):
            env[p] = a
    for p in cj.params:
        env.setdefault(p, A.Num(1.0))
    return specialize(cj.body, cj.decls, env)


def _started_instances(
    program: CompiledProgram, main_body: A.Expr | None, junctions: list[BoundJunction]
) -> tuple[set[str], bool]:
    """Instances started by ``main`` or (flow-insensitively) by any
    junction body.  Returns (started, has_dynamic_starts)."""
    instances = set(program.instance_map())
    started: set[str] = set()
    dynamic = False

    bodies: list[A.Expr] = [bj.body for bj in junctions]
    if main_body is not None:
        bodies.append(main_body)

    for body in bodies:
        for e in A.walk(body):
            if not isinstance(e, A.Start):
                continue
            name = str(e.instance)
            if name in instances:
                started.add(name)
            else:
                dynamic = True  # idx cursor / parameter target
    return started, dynamic
