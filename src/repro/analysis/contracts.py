"""Static host write-contract and communication-contract checks.

``host NAME {writes}`` is the paper's ``⌊H⌉{V}`` — host code may read
anything but write only the declared symbols.  The runtime enforces the
contract per call (:class:`repro.runtime.host.HostContext`, strict or
warn mode); this pass checks it before any run, for *every* junction of
*every* instance, including ones a given deployment never starts:

* a host block declaring a write to state its junction never declared
  (the static face of the runtime ``HostError``);
* a remote write (assert/retract/``write``) of a key the *target*
  junction never declared — the update would land in the target's
  table but no guard, wait or statement there could ever see it.
"""

from __future__ import annotations

from ..core.validate import collect_declared
from .bind import Binding
from .directives import Directives, family
from .keyflow import UNRESOLVED, KeyFlow
from .model import Finding


def contract_findings(
    kf: KeyFlow, binding: Binding, directives: Directives
) -> list[Finding]:
    findings: list[Finding] = []
    declared = {bj.node: collect_declared(bj.decls) for bj in binding.junctions}

    for bj in binding.junctions:
        decl = declared[bj.node]
        writable = (
            decl["data"] | decl["prop"] | decl["subset"] | decl["idx"]
        )
        for node, name, writes in kf.host_blocks:
            if node != bj.node:
                continue
            for w in writes:
                if w in writable:
                    continue
                suppressed_by = directives.suppression_for("contract", w, bj.node)
                findings.append(
                    Finding(
                        check="contract",
                        kind="host-undeclared-state",
                        severity="error",
                        node=bj.node,
                        key=w,
                        message=(
                            f"host block {name!r} at {bj.node} declares a "
                            f"write to {w!r}, which the junction never "
                            "declares (no init prop/data, subset or idx)"
                        ),
                        sites=(f"{bj.node}: host {name} {{{w}}}",),
                        suppressed=suppressed_by is not None,
                        suppressed_by=suppressed_by or "",
                    )
                )

    seen: set[tuple[str, str, str]] = set()
    for w in kf.writes:
        if w.kind != "remote" or w.target == UNRESOLVED:
            continue
        decl = declared.get(w.target)
        if decl is None:
            continue  # unbound target junction: not statically checkable
        ok = (
            w.key in decl["data"]
            or w.key in decl["prop"]
            or family(w.key) in decl["prop"]
        )
        if ok:
            continue
        sig = (w.origin, w.target, w.key)
        if sig in seen:
            continue
        seen.add(sig)
        suppressed_by = directives.suppression_for("contract", w.key, w.target)
        findings.append(
            Finding(
                check="contract",
                kind="undeclared-remote-key",
                severity="error",
                node=w.target,
                key=w.key,
                message=(
                    f"{w.origin} writes {w.key!r} into {w.target}'s table, "
                    f"but {w.target} never declares it — the update can "
                    "never be observed there"
                ),
                sites=(w.describe(),),
                suppressed=suppressed_by is not None,
                suppressed_by=suppressed_by or "",
            )
        )
    return findings
