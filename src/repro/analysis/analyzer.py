"""The analyzer entry points.

:func:`analyze_program` runs every pass over a compiled program;
:func:`fast_checks` is the key-flow subset (no event-structure
denotation) that ``repro check --strict`` folds in; ``analyze_source``
compiles text first (keeping the comment directives).
"""

from __future__ import annotations

from ..core.compiler import CompiledProgram, compile_program
from .bind import bind_program
from .contracts import contract_findings
from .deadcode import dead_code, unused_keys
from .directives import parse_directives
from .keyflow import collect_keyflow
from .model import AnalysisReport, Finding
from .races import cross_junction_races, intra_junction_races


def analyze_program(
    program: CompiledProgram,
    env: dict | None = None,
    *,
    source_text: str | None = None,
    label: str = "<program>",
    deep: bool = True,
    max_unfold: int = 1,
) -> AnalysisReport:
    """Analyze a compiled program.

    ``source_text`` carries the ``# analyze:`` directives (defaults to
    the text the program was compiled from, when known); ``deep``
    enables the event-structure intra-junction race pass.
    """
    if source_text is None:
        source_text = getattr(program, "source_text", None)
    directives = parse_directives(source_text)
    report = AnalysisReport(source=label)

    for word in directives.unknown:
        report.add(
            Finding(
                check="contract",
                kind="unknown-directive",
                severity="warning",
                node="",
                key=word,
                message=f"unknown '# analyze:' directive {word!r}",
            )
        )

    binding = bind_program(program, env)
    for node, reason in binding.unbound:
        report.add(
            Finding(
                check="dead",
                kind="not-analyzed",
                severity="info",
                node=node,
                key="",
                message=f"{node} could not be closed for analysis: {reason}",
            )
        )

    kf = collect_keyflow(binding)
    report.extend(contract_findings(kf, binding, directives))
    report.extend(dead_code(kf, binding, directives))
    report.extend(unused_keys(kf, binding, directives))
    report.extend(cross_junction_races(kf, binding, directives))
    if deep:
        report.extend(intra_junction_races(binding, directives, max_unfold=max_unfold))
    return report


def fast_checks(
    program: CompiledProgram,
    env: dict | None = None,
    *,
    source_text: str | None = None,
    label: str = "<program>",
) -> AnalysisReport:
    """The key-flow subset: contract + dead + unused + cross-junction
    races, no event-structure denotation (for ``repro check --strict``)."""
    return analyze_program(
        program, env, source_text=source_text, label=label, deep=False
    )


def analyze_source(
    text: str,
    config: dict | None = None,
    *,
    label: str = "<source>",
    deep: bool = True,
    max_unfold: int = 1,
) -> AnalysisReport:
    program = compile_program(text, config=config)
    return analyze_program(
        program,
        config,
        source_text=text,
        label=label,
        deep=deep,
        max_unfold=max_unfold,
    )
