"""Key-flow extraction: who writes and reads which KV key where.

Walks each bound junction body (flow-insensitively; ordering questions
are the race pass's job) and records :class:`WriteSite` /
:class:`ReadSite` facts with targets and indices resolved the same way
the runtime resolves them:

* an ``assert``/``retract``/``write`` target that is an instance name
  resolves to the instance's sole junction;
* a target that is an ``idx`` cursor expands to every element of the
  cursor's underlying set;
* a proposition index that is an ``idx`` cursor expands likewise — and
  *jointly* with the target when both go through the same cursor
  (``assert[tgt] Work[tgt]`` touches ``Work[w]`` at ``w``, never
  ``Work[w]`` at ``w'``).

Write kinds mirror the interpreter:

* ``local``  — self-targeted assert/retract and ``save``;
* ``remote`` — the target-table copy of assert/retract/``write``;
* ``echo``   — the sender-table copy of a remote assert/retract.  The
  interpreter applies it only after the ack and only if no newer update
  for the key arrived in between (``_exec_assert``), so echoes are
  excluded from cross-junction race candidates;
* ``host``   — a ``host NAME {writes}`` declared write.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import ast as A
from ..core.formula import Formula, Prop, prop_nodes
from .bind import Binding, BoundJunction

#: placeholder target when static resolution is impossible
UNRESOLVED = "?"


@dataclass(frozen=True)
class WriteSite:
    origin: str  # node executing the statement
    target: str  # node whose table is written (UNRESOLVED if unknown)
    key: str
    value: str  # "tt" | "ff" | "*"
    kind: str  # "local" | "remote" | "echo" | "host"
    stmt: str

    def describe(self) -> str:
        where = "" if self.target == self.origin else f" -> {self.target}"
        return f"{self.origin}: {self.stmt}{where}"


@dataclass(frozen=True)
class ReadSite:
    node: str
    key: str
    context: str  # "guard" | "wait" | "case" | "verify" | "data"
    detail: str


@dataclass
class KeyFlow:
    """All key-flow facts of a bound program."""

    writes: list[WriteSite] = field(default_factory=list)
    reads: list[ReadSite] = field(default_factory=list)
    #: declared proposition keys and their init polarity, per node
    prop_inits: dict[tuple[str, str], str] = field(default_factory=dict)
    #: declared data names per node
    data_keys: set[tuple[str, str]] = field(default_factory=set)
    #: host blocks: (node, name, declared writes)
    host_blocks: list[tuple[str, str, tuple[str, ...]]] = field(default_factory=list)
    #: statements whose target could not be resolved statically
    unresolved: list[tuple[str, str]] = field(default_factory=list)

    def writers_of(self, target: str, key: str) -> list[WriteSite]:
        return [w for w in self.writes if w.target == target and w.key == key]

    def written_keys(self) -> set[tuple[str, str]]:
        return {(w.target, w.key) for w in self.writes}

    def read_keys(self) -> set[tuple[str, str]]:
        return {(r.node, r.key) for r in self.reads}


def collect_keyflow(binding: Binding) -> KeyFlow:
    kf = KeyFlow()
    for bj in binding.junctions:
        _collect_junction(kf, bj, binding)
    return kf


# ---------------------------------------------------------------------------
# Per-junction extraction
# ---------------------------------------------------------------------------


def _collect_junction(kf: KeyFlow, bj: BoundJunction, binding: Binding) -> None:
    sets = _declared_sets(bj)
    idx_elems = sets["idx"]

    for d in bj.decls:
        if isinstance(d, A.InitProp):
            kf.prop_inits[(bj.node, d.key())] = "tt" if d.value else "ff"
        elif isinstance(d, A.InitData):
            kf.data_keys.add((bj.node, d.name))

    if bj.guard is not None:
        for key in _formula_keys(bj.guard, idx_elems):
            kf.reads.append(ReadSite(bj.node, key, "guard", str(bj.guard)))

    for e in A.walk(bj.body):
        if isinstance(e, A.Save):
            kf.writes.append(
                WriteSite(bj.node, bj.node, e.name, "*", "local", f"save({e.name})")
            )
        elif isinstance(e, A.Write):
            kf.reads.append(ReadSite(bj.node, e.name, "data", str(e)))
            for tgt in _targets(e.target, bj, binding, kf, str(e)):
                kf.writes.append(
                    WriteSite(bj.node, tgt, e.name, "*", "remote", str(e))
                )
        elif isinstance(e, (A.Assert, A.Retract)):
            val = "tt" if isinstance(e, A.Assert) else "ff"
            for tgt, key in _prop_updates(e, bj, binding, kf, idx_elems):
                if tgt == bj.node:
                    kf.writes.append(
                        WriteSite(bj.node, bj.node, key, val, "local", str(e))
                    )
                else:
                    kf.writes.append(
                        WriteSite(bj.node, tgt, key, val, "remote", str(e))
                    )
                    kf.writes.append(
                        WriteSite(bj.node, bj.node, key, val, "echo", str(e))
                    )
        elif isinstance(e, A.HostBlock):
            kf.host_blocks.append((bj.node, e.name, e.writes))
            for w in e.writes:
                for key in _host_write_keys(w, bj, idx_elems):
                    kf.writes.append(
                        WriteSite(bj.node, bj.node, key, "*", "host", f"host {e.name}")
                    )
        elif isinstance(e, A.Restore):
            kf.reads.append(ReadSite(bj.node, e.name, "data", str(e)))
        elif isinstance(e, A.Wait):
            for k in e.keys:
                kf.reads.append(ReadSite(bj.node, k, "data", str(e)))
            for key in _formula_keys(e.formula, idx_elems):
                kf.reads.append(ReadSite(bj.node, key, "wait", str(e)))
        elif isinstance(e, A.Verify):
            for key in _formula_keys(e.formula, idx_elems):
                kf.reads.append(ReadSite(bj.node, key, "verify", str(e)))
        elif isinstance(e, A.Case):
            for arm in e.arms:
                inner = arm.arm if isinstance(arm, A.ForArm) else arm
                for key in _formula_keys(inner.formula, idx_elems):
                    kf.reads.append(
                        ReadSite(bj.node, key, "case", str(inner.formula))
                    )
        elif isinstance(e, A.Keep):
            for k in e.keys:
                kf.reads.append(ReadSite(bj.node, k, "data", str(e)))


def _declared_sets(bj: BoundJunction) -> dict[str, dict[str, tuple[str, ...]]]:
    """Element names of each set-like declaration, by kind."""
    literals: dict[str, tuple[str, ...]] = {}
    for d in bj.decls:
        if isinstance(d, A.SetDecl) and d.literal is not None:
            literals[d.name] = tuple(str(i) for i in d.literal.items)
    out: dict[str, dict[str, tuple[str, ...]]] = {"idx": {}, "subset": {}}
    for d in bj.decls:
        if isinstance(d, (A.IdxDecl, A.SubsetDecl)):
            kind = "idx" if isinstance(d, A.IdxDecl) else "subset"
            of = d.of_set
            if isinstance(of, A.SetLit):
                out[kind][d.name] = tuple(str(i) for i in of.items)
            elif isinstance(of, A.Ref) and of.is_simple and of.name in literals:
                out[kind][d.name] = literals[of.name]
            else:
                out[kind][d.name] = ()
    return out


# ---------------------------------------------------------------------------
# Target / index resolution
# ---------------------------------------------------------------------------


def _node_of(name: str, binding: Binding) -> str | None:
    """A target element (``Inst`` or ``Inst::junction``) as a node."""
    if "::" in name:
        return name
    return binding.sole_junction_node(name)


def _targets(
    target: object, bj: BoundJunction, binding: Binding, kf: KeyFlow, stmt: str
) -> list[str]:
    """Resolve a communication target to candidate nodes."""
    if isinstance(target, A.SelfTarget):
        return [bj.node]
    if not isinstance(target, A.Ref):
        kf.unresolved.append((bj.node, stmt))
        return [UNRESOLVED]
    if not target.is_simple:
        return [str(target)]
    name = target.name
    idx_elems = _declared_sets(bj)["idx"]
    if name in idx_elems:
        nodes = [_node_of(el, binding) for el in idx_elems[name]]
        known = [n for n in nodes if n is not None]
        if not known:
            kf.unresolved.append((bj.node, stmt))
            return [UNRESOLVED]
        return known
    node = _node_of(name, binding)
    if node is None:
        kf.unresolved.append((bj.node, stmt))
        return [UNRESOLVED]
    return [node]


def _prop_updates(
    e, bj: BoundJunction, binding: Binding, kf: KeyFlow, idx_elems: dict
) -> list[tuple[str, str]]:
    """(target node, key) pairs of an assert/retract, expanding idx
    cursors — jointly when target and index share the cursor."""
    index = e.index
    tgt = e.target
    if (
        isinstance(tgt, A.Ref)
        and tgt.is_simple
        and tgt.name in idx_elems
        and isinstance(index, A.Ref)
        and index.is_simple
        and index.name == tgt.name
    ):
        out = []
        for el in idx_elems[tgt.name]:
            node = _node_of(el, binding)
            if node is None:
                kf.unresolved.append((bj.node, str(e)))
                node = UNRESOLVED
            out.append((node, f"{e.prop}[{el}]"))
        if out:
            return out
    keys = _expand_index(e.prop, index, idx_elems)
    return [
        (tgt_node, key)
        for tgt_node in _targets(tgt, bj, binding, kf, str(e))
        for key in keys
    ]


def _expand_index(prop: str, index: object, idx_elems: dict) -> list[str]:
    if index is None:
        return [prop]
    if isinstance(index, A.Ref) and index.is_simple and index.name in idx_elems:
        elems = idx_elems[index.name]
        if elems:
            return [f"{prop}[{el}]" for el in elems]
    return [f"{prop}[{index}]"]


def _host_write_keys(name: str, bj: BoundJunction, idx_elems: dict) -> list[str]:
    """A host write of a family name touches every declared member key
    (``Choose {tgt}`` writes the cursor itself — kept as-is)."""
    member_keys = [
        d.key()
        for d in bj.decls
        if isinstance(d, A.InitProp) and d.index is not None and d.name == name
    ]
    return member_keys or [name]


def _formula_keys(f: Formula, idx_elems: dict) -> list[str]:
    """Concrete proposition keys read by a formula (local scope only;
    ``@``-scoped and ``live`` literals are remote reads)."""
    out: list[str] = []
    for p in _local_prop_nodes(f):
        out.extend(_expand_index(p.name, _as_index(p.index), idx_elems))
    return out


def _as_index(index: object) -> object:
    if isinstance(index, str):
        return A.Ref((index,))
    return index


def _local_prop_nodes(f: Formula):
    from ..core.formula import And, At, Implies, Live, Not, Or

    if isinstance(f, Prop):
        yield f
    elif isinstance(f, (At, Live)):
        return
    elif isinstance(f, Not):
        yield from _local_prop_nodes(f.operand)
    elif isinstance(f, (And, Or, Implies)):
        yield from _local_prop_nodes(f.left)
        yield from _local_prop_nodes(f.right)


__all__ = [
    "KeyFlow",
    "ReadSite",
    "UNRESOLVED",
    "WriteSite",
    "collect_keyflow",
    "prop_nodes",
]
