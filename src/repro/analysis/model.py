"""Findings and reports produced by the analyzer.

A :class:`Finding` is one diagnosed issue; a :class:`AnalysisReport`
aggregates them with the JSON serialization documented in
``docs/ANALYSIS.md`` (schema version 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: top-level check categories (the vocabulary of ``--fail-on``)
CHECKS = ("race", "dead", "contract", "unused")

SEVERITIES = ("error", "warning", "info")


@dataclass
class Finding:
    """One diagnosed issue.

    ``check`` is the coarse category (``race``/``dead``/``contract``/
    ``unused``); ``kind`` the precise pattern (``write-write-race``,
    ``dead-case-arm``, …).  ``sites`` are human-readable statement
    locations (``node: statement``), ``witness`` an ordered event list
    demonstrating the issue (races only).
    """

    check: str
    kind: str
    severity: str
    node: str
    key: str
    message: str
    sites: tuple[str, ...] = ()
    witness: tuple[str, ...] = ()
    suppressed: bool = False
    suppressed_by: str = ""

    def to_json(self) -> dict:
        out = {
            "check": self.check,
            "kind": self.kind,
            "severity": self.severity,
            "node": self.node,
            "key": self.key,
            "message": self.message,
            "sites": list(self.sites),
        }
        if self.witness:
            out["witness"] = list(self.witness)
        if self.suppressed:
            out["suppressed"] = True
            out["suppressed_by"] = self.suppressed_by
        return out

    def sort_key(self):
        return (
            SEVERITIES.index(self.severity) if self.severity in SEVERITIES else 99,
            self.check,
            self.kind,
            self.node,
            self.key,
        )


@dataclass
class AnalysisReport:
    """All findings for one analyzed program."""

    source: str  # file path or label
    findings: list[Finding] = field(default_factory=list)

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def extend(self, findings) -> None:
        self.findings.extend(findings)

    def sorted(self) -> list[Finding]:
        return sorted(self.findings, key=Finding.sort_key)

    def unsuppressed(self, checks: tuple[str, ...] | None = None) -> list[Finding]:
        out = [f for f in self.findings if not f.suppressed]
        if checks is not None:
            out = [f for f in out if f.check in checks]
        return out

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.check] = out.get(f.check, 0) + 1
        return out

    def to_json(self) -> dict:
        return {
            "version": 1,
            "source": self.source,
            "findings": [f.to_json() for f in self.sorted()],
            "summary": {
                "total": len(self.findings),
                "suppressed": sum(1 for f in self.findings if f.suppressed),
                "by_check": self.counts(),
            },
        }

    def render_text(self) -> str:
        """Human-readable report (one block per finding)."""
        lines: list[str] = []
        shown = self.sorted()
        if not shown:
            return f"{self.source}: no findings\n"
        for f in shown:
            mark = " [suppressed]" if f.suppressed else ""
            lines.append(
                f"{f.severity}: {f.kind} at {f.node} (key {f.key!r}){mark}"
            )
            lines.append(f"  {f.message}")
            for s in f.sites:
                lines.append(f"    site: {s}")
            if f.witness:
                lines.append("    witness:")
                for w in f.witness:
                    lines.append(f"      {w}")
        active = [f for f in shown if not f.suppressed]
        lines.append(
            f"{self.source}: {len(active)} finding(s)"
            + (f", {len(shown) - len(active)} suppressed" if len(shown) != len(active) else "")
        )
        return "\n".join(lines) + "\n"
