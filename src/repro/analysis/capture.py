"""Capture the programs example scripts construct.

``repro analyze some_example.py`` must analyze whatever architecture
the script builds — mirroring how ``repro trace`` captures telemetry
(:func:`repro.telemetry.facade.capture_systems`), ``System.__init__``
calls :func:`note_program` so every compiled program that reaches a
:class:`~repro.runtime.system.System` inside a
:func:`capture_programs` scope is collected.

This module must stay import-light: the runtime imports it at load
time.
"""

from __future__ import annotations

from contextlib import contextmanager

_capture_stack: list[list] = []


def note_program(program) -> None:
    """Called by ``System.__init__`` (no-op outside a capture scope).
    Deduplicates: one entry per distinct program object."""
    if not _capture_stack:
        return
    captured = _capture_stack[-1]
    if not any(p is program for p in captured):
        captured.append(program)


@contextmanager
def capture_programs():
    """Collect the :class:`~repro.core.compiler.CompiledProgram` of
    every ``System`` constructed inside the ``with`` block."""
    captured: list = []
    _capture_stack.append(captured)
    try:
        yield captured
    finally:
        _capture_stack.pop()
