"""Analyzer directives embedded in ``.csaw`` comments.

Architectures document their external interface and accepted hazards in
the source itself::

    # analyze: external Req MigrateReq
    # analyze: allow-race m preresp
    # analyze: allow-dead Fnt::spare
    # analyze: allow-unused state

``external`` names propositions asserted/retracted by the embedding
application (``System.external_update``) — without it the key-flow
lattice is closed-world and a guard waiting on an un-written
proposition reads as dead.  ``allow-*`` directives suppress findings:
the finding stays in the JSON output with ``"suppressed": true`` but
does not count toward ``--fail-on`` exit codes.

A directive key matches a finding's key exactly or by family: ``Work``
matches ``Work[Bck1]``.  ``allow-dead`` also matches node names
(``inst::junction``).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_DIRECTIVE = re.compile(r"#\s*analyze:\s*([a-z-]+)\s+(.+?)\s*$")

KNOWN = ("external", "allow-race", "allow-dead", "allow-contract", "allow-unused")


@dataclass
class Directives:
    """Parsed ``# analyze:`` directives of one source file."""

    external: frozenset[str] = frozenset()
    allow: dict[str, frozenset[str]] = field(default_factory=dict)
    unknown: tuple[str, ...] = ()

    def is_external(self, key: str) -> bool:
        return _matches(key, self.external)

    def suppression_for(self, check: str, *names: str) -> str | None:
        """The directive name suppressing a finding of category
        ``check`` about any of ``names`` (keys or nodes), or None."""
        allowed = self.allow.get(check, frozenset())
        for name in names:
            if name and _matches(name, allowed):
                return f"allow-{check} {family(name)}"
        return None


def family(key: str) -> str:
    """``Work[Bck1]`` -> ``Work`` (indexed keys form one family)."""
    return key.split("[", 1)[0]


def _matches(key: str, names: frozenset[str]) -> bool:
    return key in names or family(key) in names


def parse_directives(text: str | None) -> Directives:
    """Scan raw source text for ``# analyze:`` comment directives."""
    if not text:
        return Directives()
    external: set[str] = set()
    allow: dict[str, set[str]] = {}
    unknown: list[str] = []
    for line in text.splitlines():
        m = _DIRECTIVE.search(line)
        if not m:
            continue
        word, args = m.group(1), m.group(2).split()
        if word == "external":
            external.update(args)
        elif word.startswith("allow-") and word in KNOWN:
            allow.setdefault(word[len("allow-"):], set()).update(args)
        else:
            unknown.append(word)
    return Directives(
        external=frozenset(external),
        allow={k: frozenset(v) for k, v in allow.items()},
        unknown=tuple(unknown),
    )
