"""Chaos-schedule fault engine: seeded randomized fault timelines.

Concerto-D's Maude formalization (see PAPERS.md) stresses that
decentralized reconfiguration must stay correct under asynchrony and
message loss; the paper's own evaluation only injects hand-placed
crashes.  This module generates *randomized but reproducible* fault
schedules — crash/restart storms, link flaps, network-wide loss bursts,
message duplication and reordering — and installs them on a running
:class:`~repro.runtime.system.System` through its
:class:`~repro.runtime.faults.FaultPlan`.  A fixed seed yields a fixed
schedule, so chaos soak tests are deterministic and their failures
replayable.

Typical use::

    engine = ChaosEngine(system, seed=7, config=ChaosConfig(horizon=20.0))
    engine.schedule(instances=["b1", "b2"], links=[("f", "b1")])
    soak = SoakHarness(system)
    soak.invariant("no_failures", lambda s: not s.failures)
    soak.run(until=engine.config.horizon + 5.0)
    assert soak.violations == []

:class:`SoakHarness` checks invariants periodically *while* the chaos
schedule plays out, not just at the end — a wedged or diverged system is
caught at the moment it wedges, with the simulated timestamp recorded.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..core.errors import StartStopFailure
from .faults import FaultPlan

if TYPE_CHECKING:  # pragma: no cover
    from .system import System


@dataclass
class ChaosConfig:
    """Shape of a generated chaos schedule.

    The schedule occupies ``[start_after, horizon)``; counts are per
    target (per instance for crash storms, per link for flaps/bursts).
    Durations are drawn uniformly from their ``(lo, hi)`` ranges.
    """

    horizon: float = 30.0
    start_after: float = 0.5
    #: crash/restart windows per target instance
    crash_storms: int = 2
    downtime: tuple[float, float] = (0.2, 1.5)
    #: process kills per target instance (cluster engine: a real
    #: SIGKILL of the hosting worker, recovered by the supervisor; other
    #: engines: degrades to crash + scheduled restart)
    process_kills: int = 0
    #: flap windows per target link
    link_flaps: int = 1
    flap_window: tuple[float, float] = (0.5, 2.0)
    flap_period: float = 0.4
    flap_duty: float = 0.5
    #: network-wide loss bursts
    loss_bursts: int = 2
    burst_length: tuple[float, float] = (0.5, 2.0)
    burst_loss: tuple[float, float] = (0.1, 0.6)
    #: steady-state duplication / reordering during the whole schedule
    duplication: float = 0.0
    reorder_jitter: float = 0.0


class ChaosEngine:
    """Generates and installs a seeded randomized fault schedule."""

    def __init__(self, system: "System", *, seed: int = 0, config: ChaosConfig | None = None):
        self.system = system
        self.config = config or ChaosConfig()
        self.rng = random.Random(seed)
        self.plan = FaultPlan(system)
        #: the generated schedule, for reporting/replay: (time, kind, detail)
        self.events: list[tuple[float, str, str]] = []
        #: faults that could not be applied when their time came
        #: (e.g. restart of an instance the architecture already revived)
        self.skipped: list[tuple[float, str, str]] = []

    # -- schedule generation -------------------------------------------------

    def _slots(self, count: int) -> list[tuple[float, float]]:
        """Split ``[start_after, horizon)`` into ``count`` equal slots —
        one fault window is placed inside each, which guarantees windows
        on the same target never overlap (a restart always precedes the
        next crash)."""
        cfg = self.config
        span = (cfg.horizon - cfg.start_after) / max(count, 1)
        return [
            (cfg.start_after + i * span, cfg.start_after + (i + 1) * span)
            for i in range(count)
        ]

    def _window(self, slot: tuple[float, float], length: tuple[float, float]) -> tuple[float, float]:
        lo, hi = slot
        dur = min(self.rng.uniform(*length), (hi - lo) * 0.8)
        start = self.rng.uniform(lo, hi - dur - (hi - lo) * 0.05)
        return start, start + dur

    def schedule_crashes(self, instances: Iterable[str]) -> None:
        """Crash/restart storms: each target instance gets
        ``crash_storms`` non-overlapping downtime windows."""
        for inst in instances:
            self.system.instance(inst)  # unknown names fail at schedule time
            for slot in self._slots(self.config.crash_storms):
                start, end = self._window(slot, self.config.downtime)
                self._at(start, "crash", inst, lambda i=inst: self.plan.crash(i))
                self._at(end, "restart", inst, lambda i=inst: self.plan.restart(i))

    def schedule_process_kills(self, instances: Iterable[str]) -> None:
        """Process-kill storms: each target gets ``process_kills``
        SIGKILLs of its hosting worker.  Under a supervised engine
        (cluster) recovery is the supervisor's job — no restart is
        scheduled; on unsupervised engines the kill degrades to a crash
        and the window's end restarts the instance, keeping the
        schedule engine-portable."""
        supervised = getattr(self.system.engine, "supervisor", None) is not None
        for inst in instances:
            self.system.instance(inst)  # unknown names fail at schedule time
            for slot in self._slots(self.config.process_kills):
                start, end = self._window(slot, self.config.downtime)
                self._at(start, "kill_process", inst,
                         lambda i=inst: self.plan.kill_process(i))
                if not supervised:
                    self._at(end, "restart", inst, lambda i=inst: self.plan.restart(i))

    def schedule_link_faults(self, links: Iterable[tuple[str, str]]) -> None:
        """Link flaps: each target link gets ``link_flaps`` windows of
        periodic up/down flapping."""
        cfg = self.config
        for src, dst in links:
            for slot in self._slots(cfg.link_flaps):
                start, end = self._window(slot, cfg.flap_window)
                self.events.append((start, "flap", f"{src}<->{dst} until {end:.3f}"))
                self.plan.flap_link(start, end, src, dst, cfg.flap_period, cfg.flap_duty)

    def schedule_loss_bursts(self) -> None:
        """Network-wide loss bursts of random intensity."""
        cfg = self.config
        for slot in self._slots(cfg.loss_bursts):
            start, end = self._window(slot, cfg.burst_length)
            p = self.rng.uniform(*cfg.burst_loss)
            self.events.append((start, "loss_burst", f"p={p:.2f} until {end:.3f}"))
            self.plan.loss_burst(start, end, p)

    def schedule_knobs(self) -> None:
        """Steady duplication/reordering over the whole schedule."""
        cfg = self.config
        if cfg.duplication > 0.0:
            self._at(cfg.start_after, "duplication", f"p={cfg.duplication}",
                     lambda: self.plan.set_duplication(cfg.duplication))
            self._at(cfg.horizon, "duplication", "off",
                     lambda: self.plan.set_duplication(0.0))
        if cfg.reorder_jitter > 0.0:
            self._at(cfg.start_after, "reorder", f"jitter={cfg.reorder_jitter}",
                     lambda: self.plan.set_reorder(cfg.reorder_jitter))
            self._at(cfg.horizon, "reorder", "off",
                     lambda: self.plan.set_reorder(0.0))

    def schedule(
        self,
        instances: Sequence[str] = (),
        links: Sequence[tuple[str, str]] = (),
        kills: Sequence[str] = (),
    ) -> list[tuple[float, str, str]]:
        """Generate and install the full schedule; returns it sorted.
        ``kills`` targets get process-kill storms (when
        ``config.process_kills`` > 0) in addition to whatever crash
        storms ``instances`` get."""
        self.schedule_crashes(instances)
        if self.config.process_kills > 0:
            self.schedule_process_kills(kills)
        self.schedule_link_faults(links)
        self.schedule_loss_bursts()
        self.schedule_knobs()
        self.events.sort()
        return self.events

    # -- plumbing ------------------------------------------------------------

    def _at(self, time: float, kind: str, detail: str, action: Callable[[], None]) -> None:
        self.events.append((time, kind, detail))

        def fire():
            try:
                action()
            except StartStopFailure:
                # the architecture raced us (e.g. already restarted the
                # instance) — chaos yields, the system won
                self.skipped.append((self.system.clock.now, kind, detail))

        self.system.clock.call_at(time, fire)


@dataclass
class Violation:
    time: float
    name: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover
        return f"t={self.time:.3f} {self.name}: {self.detail}"


class SoakHarness:
    """Runs a system under chaos while checking invariants periodically.

    Invariants are callables of the system returning truthy (holds) or
    falsy/raising (violated).  Checks run every ``check_interval`` of
    simulated time plus once at the end of :meth:`run`."""

    def __init__(self, system: "System", *, check_interval: float = 0.5):
        self.system = system
        self.check_interval = check_interval
        self.invariants: dict[str, Callable[["System"], object]] = {}
        self.violations: list[Violation] = []

    def invariant(self, name: str, fn: Callable[["System"], object] | None = None):
        """Register an invariant; usable as a decorator."""
        if fn is None:
            def deco(f):
                self.invariants[name] = f
                return f
            return deco
        self.invariants[name] = fn
        return fn

    def check_now(self) -> list[Violation]:
        found = []
        for name, fn in self.invariants.items():
            try:
                ok = fn(self.system)
            except Exception as exc:
                ok = False
                detail = f"raised {exc!r}"
            else:
                detail = "returned falsy"
            if not ok:
                v = Violation(self.system.clock.now, name, detail)
                found.append(v)
                self.violations.append(v)
        return found

    def run(self, until: float) -> list[Violation]:
        """Run the system to ``until`` with periodic invariant checks;
        returns all recorded violations."""
        t = self.system.clock.now + self.check_interval
        while t < until:
            self.system.clock.call_at(t, self.check_now)
            t += self.check_interval
        self.system.run_until(until)
        self.check_now()
        return self.violations
