"""The cluster execution engine: multi-process deployment with crash
supervision, heartbeats and restart-with-backoff.

The paper's deployment model (libcompart) runs one OS process per
component instance and wires them over TCP.  :class:`ClusterEngine`
realizes that behind the Clock/Transport/Executor seam: at ``attach``
time it spawns one **worker process** per instance (or per shard
group when ``workers=N`` is given) from the stdlib-only
:mod:`repro.runtime.cluster_worker` module, and every runtime message
addressed to an instance physically transits that instance's worker
over a framed TCP link (``coordinator → worker → coordinator →
dispatch``).  A worker's death therefore *is* the instance's failure:
messages to it stop flowing immediately, and the
:class:`ClusterSupervisor` turns the detected crash into a real
``crash_instance`` — the same fault surface the PR 1 delivery/failover
machinery and the chaos engine already react to.

Supervision model (Erlang/systemd shaped):

* **heartbeats** — the supervisor pings every worker each
  ``heartbeat_interval`` logical seconds; a worker that has not ponged
  within ``heartbeat_timeout`` is declared crashed even if its process
  is technically alive (wedged/SIGSTOPped).
* **crash detection** — process exit (``poll()``), socket EOF/reset
  (fast path: a SIGKILL is usually noticed within one loop iteration),
  or missed heartbeats.
* **restart with backoff** — capped exponential delay plus seeded
  jitter (:class:`~repro.runtime.supervisor.BackoffPolicy`); the
  attempt counter resets after the worker stays up ``stable_after``
  logical seconds, and an optional ``max_restarts`` budget turns a
  crash-looping worker into a permanent ``failed`` state.
* **degraded mode** — while a worker is down the rest of the system
  keeps serving; the architecture's own failover logic (deregistration,
  warm replicas) sees the crash through the normal liveness surface.
* **graceful drain** — ``drain()`` stops supervision, asks workers to
  shut down, and runs the engine until in-flight work settles before
  force-killing stragglers (wired to SIGTERM by ``repro cluster``).

Honest scoping: junction scheduling, guard evaluation and host blocks
still execute in the coordinator (host functions are arbitrary Python
closures and cannot cross a process boundary without pickling them);
the worker processes embody each instance's *compartment* — its
network identity and its crash unit.  What is real: OS processes,
kernel sockets, serde wire framing, SIGKILL-able instances,
heartbeat-based failure detection, supervised restart.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from ..core.errors import SerdeError, StartStopFailure
from .cluster_worker import OP_DELIVER, OP_HELLO, OP_MSG, OP_PING, OP_PONG, OP_SHUTDOWN
from .engine import ExecutionEngine, Transport
from .realtime import RealtimeClock, ThreadPoolHostExecutor
from .supervisor import (
    Backoff,
    BackoffPolicy,
    SupervisorReport,
    WorkerState,
    WorkerStatus,
)
from .wire import decode_message, encode_message, frame, read_frame

if TYPE_CHECKING:  # pragma: no cover
    from .system import System

__all__ = [
    "ClusterEngine",
    "ClusterSupervisor",
    "ClusterTransport",
    "live_worker_pgids",
    "reap_orphan_workers",
]

_WORKER_PATH = Path(__file__).with_name("cluster_worker.py")

#: wall-clock budget for a spawned worker to dial back and say hello
_SPAWN_TIMEOUT_WALL = 30.0

# ---------------------------------------------------------------------------
# Worker-process hygiene registry
#
# Every spawned worker is its own session leader (start_new_session), so
# its pid doubles as a process-group id.  The registry lets test
# fixtures (tests/engine/conftest.py) verify that no worker survives a
# test and reap any that do — a failing test must never leave orphaned
# processes on CI.
# ---------------------------------------------------------------------------

_LIVE_WORKER_PGIDS: set[int] = set()


def live_worker_pgids() -> set[int]:
    """Process-group ids of cluster workers believed to be alive."""
    return set(_LIVE_WORKER_PGIDS)


def reap_orphan_workers() -> list[int]:
    """Kill any worker process groups still registered; returns the
    pgids that were actually alive (i.e. leaked)."""
    leaked: list[int] = []
    for pgid in sorted(_LIVE_WORKER_PGIDS):
        _LIVE_WORKER_PGIDS.discard(pgid)
        try:  # collect an already-dead direct child without counting it
            done, _ = os.waitpid(pgid, os.WNOHANG)
            if done == pgid:
                continue
        except ChildProcessError:
            continue
        try:
            os.killpg(pgid, signal.SIGKILL)
        except ProcessLookupError:
            continue
        leaked.append(pgid)
        try:
            os.waitpid(pgid, 0)
        except ChildProcessError:
            pass
    return leaked


# ---------------------------------------------------------------------------
# Transport
# ---------------------------------------------------------------------------


class _WorkerLink:
    """One live worker connection."""

    __slots__ = ("name", "reader", "writer", "outstanding", "alive", "closed", "task")

    def __init__(self, name: str, reader, writer):
        self.name = name
        self.reader = reader
        self.writer = writer
        self.outstanding = 0  # M frames sent, D frames not yet returned
        self.alive = True
        self.closed = False
        self.task: asyncio.Task | None = None


class ClusterTransport(Transport):
    """Per-instance worker routing over framed TCP.

    ``deliver`` models latency on the engine clock, then sends the
    message through the *destination instance's* worker process (an
    ``M`` frame the worker returns as ``D``); the coordinator-side read
    loop re-enters :meth:`~repro.runtime.channels.Network.dispatch`, so
    liveness and partition policy are re-checked at arrival exactly as
    on every other engine.  A message whose source or destination
    worker is dead is dropped at the transport — sender-side
    retransmission and ``otherwise`` deadlines see the loss, exactly as
    with a crashed remote process.
    """

    inproc = False

    def __init__(self):
        super().__init__()
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self.links: dict[str, _WorkerLink] = {}
        self._expected: dict[str, asyncio.Future] = {}
        #: instance name -> worker (group) name, set by the supervisor
        self.owner: dict[str, str] = {}
        #: supervisor hooks
        self.on_pong = None
        self.on_link_down = None
        self._closing = False

    # -- wiring -------------------------------------------------------------

    def bind(self, network, clock) -> None:
        super().bind(network, clock)
        loop = clock.loop
        self._server = loop.run_until_complete(
            asyncio.start_server(self._on_connect, "127.0.0.1", 0)
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def expect(self, name: str) -> asyncio.Future:
        """Register interest in a worker's hello; returns a future
        resolved with its :class:`_WorkerLink`."""
        fut = self.clock.loop.create_future()
        self._expected[name] = fut
        return fut

    def unexpect(self, name: str) -> None:
        self._expected.pop(name, None)

    async def _on_connect(self, reader, writer):
        link = None
        try:
            hello = await asyncio.wait_for(read_frame(reader), timeout=_SPAWN_TIMEOUT_WALL)
            if hello[:1] != OP_HELLO:
                writer.close()
                return
            name = hello[1:].decode("utf-8", errors="replace")
            fut = self._expected.pop(name, None)
            if fut is None or fut.done():
                writer.close()  # unsolicited / stale connection
                return
            link = _WorkerLink(name, reader, writer)
            link.task = asyncio.current_task()
            self.links[name] = link
            fut.set_result(link)
            await self._read_loop(link)
        except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                ConnectionError, OSError):
            writer.close()
        except SerdeError:
            # a corrupt length prefix poisons the rest of the stream —
            # drop the link; supervision treats it as a worker crash
            self.network.count("wire_rejected")
            writer.close()
        except asyncio.CancelledError:
            pass  # engine close() cancels the reader mid-await
        finally:
            if link is not None:
                self._link_closed(link)

    async def _read_loop(self, link: _WorkerLink) -> None:
        while True:
            body = await read_frame(link.reader)
            op, payload = body[:1], body[1:]
            if op == OP_DELIVER:
                link.outstanding -= 1
                self.in_flight -= 1
                try:
                    msg = decode_message(payload)
                except SerdeError:
                    self.network.count("wire_rejected")
                    continue
                self.network.dispatch(msg)
            elif op == OP_PONG:
                if self.on_pong is not None:
                    self.on_pong(link.name)
            # unknown opcodes ignored (forward compatibility)

    def _link_closed(self, link: _WorkerLink) -> None:
        """Idempotent teardown accounting for one dead connection."""
        if link.closed:
            return
        link.closed = True
        link.alive = False
        # frames swallowed by the dead worker will never come back
        self.in_flight -= link.outstanding
        link.outstanding = 0
        try:
            link.writer.close()
        except RuntimeError:
            pass  # event loop already closed (interpreter teardown)
        if self.links.get(link.name) is link:
            del self.links[link.name]
        if not self._closing and self.on_link_down is not None:
            self.on_link_down(link.name)

    def close_link(self, name: str) -> None:
        """Force a worker's connection down (the read loop finishes the
        accounting on the next loop iteration)."""
        link = self.links.get(name)
        if link is not None and not link.closed:
            link.alive = False
            link.writer.close()

    # -- delivery -----------------------------------------------------------

    def _link_for_instance(self, inst: str) -> _WorkerLink | None:
        name = self.owner.get(inst)
        return self.links.get(name) if name is not None else None

    def deliver(self, msg, latency, dispatch, *, label=None, footprint=None):
        self.in_flight += 1
        self.clock.call_after(latency, lambda m=msg: self._transmit(m, dispatch))

    def _transmit(self, msg, dispatch) -> None:
        src_inst = msg.src.split("::", 1)[0]
        dst_inst = msg.dst.split("::", 1)[0]
        src_owner = self.owner.get(src_inst)
        if src_owner is not None:
            src_link = self.links.get(src_owner)
            if src_link is None or not src_link.alive:
                # the sender's process is gone: its outbound halts the
                # moment the link is seen down, not at heartbeat time
                self._drop(msg, src_inst, dst_inst)
                return
        dst_owner = self.owner.get(dst_inst)
        if dst_owner is None:
            # instances without a worker (the __init__ start-up
            # pseudo-instance) deliver locally
            self.in_flight -= 1
            dispatch(msg)
            return
        link = self.links.get(dst_owner)
        if link is None or not link.alive:
            self._drop(msg, src_inst, dst_inst)
            return
        link.outstanding += 1
        self.clock.loop.create_task(self._send(link, OP_MSG + encode_message(msg)))

    def _drop(self, msg, src_inst: str, dst_inst: str) -> None:
        self.in_flight -= 1
        self.network._drop(msg, src_inst, dst_inst, "worker_down")

    async def _send(self, link: _WorkerLink, body: bytes) -> None:
        try:
            link.writer.write(frame(body))
            await link.writer.drain()
        except (ConnectionError, OSError):
            pass  # link death is detected and accounted by the read loop

    # -- supervision plumbing -----------------------------------------------

    def ping(self, name: str) -> None:
        link = self.links.get(name)
        if link is not None and link.alive:
            self.clock.loop.create_task(self._send(link, OP_PING))

    def request_shutdown(self, name: str) -> None:
        link = self.links.get(name)
        if link is not None and link.alive:
            self.clock.loop.create_task(self._send(link, OP_SHUTDOWN))

    def close(self) -> None:
        self._closing = True
        for link in list(self.links.values()):
            self._link_closed(link)
        if self._server is not None:
            self._server.close()
            self._server = None


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------


class ClusterSupervisor:
    """Spawns, monitors and restarts the cluster's worker processes."""

    def __init__(
        self,
        transport: ClusterTransport,
        clock: RealtimeClock,
        *,
        workers: int | None = None,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 2.0,
        backoff: BackoffPolicy | None = None,
        seed: int = 0,
        python: str | None = None,
    ):
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval "
                f"({heartbeat_timeout} <= {heartbeat_interval})"
            )
        self.transport = transport
        self.clock = clock
        self.workers = workers
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.policy = backoff or BackoffPolicy()
        self.python = python or sys.executable
        import random as _random

        self._rng = _random.Random(seed)
        self.system: "System | None" = None
        self.statuses: dict[str, WorkerStatus] = {}
        self._procs: dict[str, subprocess.Popen] = {}
        self._backoffs: dict[str, Backoff] = {}
        self._hb_handle = None
        self._stopping = False
        transport.on_pong = self._note_pong
        transport.on_link_down = self._link_lost

    # -- deployment ---------------------------------------------------------

    @staticmethod
    def assign_groups(
        instances: Sequence[str], workers: int | None
    ) -> list[tuple[str, tuple[str, ...]]]:
        """Shard ``instances`` across ``workers`` processes.  ``None``
        (or a count >= the instance count) means one worker per
        instance, named after it; otherwise round-robin groups named
        ``w0..wN-1``."""
        names = sorted(instances)
        if workers is None or workers >= len(names):
            return [(n, (n,)) for n in names]
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        groups: list[list[str]] = [[] for _ in range(workers)]
        for i, n in enumerate(names):
            groups[i % workers].append(n)
        return [(f"w{i}", tuple(g)) for i, g in enumerate(groups)]

    def attach(self, system: "System") -> None:
        self.system = system
        loop = self.clock.loop
        futures = []
        for name, insts in self.assign_groups(list(system.instances), self.workers):
            st = WorkerStatus(name=name, instances=insts)
            self.statuses[name] = st
            self._backoffs[name] = Backoff(self.policy, self._rng)
            for inst in insts:
                self.transport.owner[inst] = name
            self._procs[name] = self._spawn(st)
            futures.append(self.transport.expect(name))
        try:
            loop.run_until_complete(
                asyncio.wait_for(asyncio.gather(*futures), timeout=_SPAWN_TIMEOUT_WALL)
            )
        except (asyncio.TimeoutError, TimeoutError):
            self.shutdown()
            raise RuntimeError(
                "cluster: worker handshake timed out — see worker stderr"
            ) from None
        now = self.clock.now
        for name, st in self.statuses.items():
            st.pid = self._procs[name].pid
            st.state = WorkerState.RUNNING
            st.last_pong = now
            st.started_at = now
            system.telemetry.emit(
                "worker_spawn", name, pid=st.pid, instances=list(st.instances)
            )
        # the spawn+handshake burst consumed wall time before the first
        # logical event — rebase so it doesn't eat into the horizon
        self.clock.rebase()
        self._arm_heartbeat()

    def deploy(self, instances: Sequence[str]) -> None:
        """Spawn and handshake workers for instances added by a live
        reconfiguration (one worker per new instance, named after it).
        Blocking; must be called while the event loop is idle — the
        reconfiguration executor calls it in the prepare phase, before
        the transition starts pumping the engine."""
        fresh = [n for n in sorted(instances) if n not in self.transport.owner]
        if not fresh or self._stopping:
            return
        loop = self.clock.loop
        futures = []
        for inst in fresh:
            # RESTARTING until the handshake lands: unlike attach, the
            # heartbeat monitor is already ticking, and a RUNNING status
            # with last_pong=0 would be condemned mid-handshake (and its
            # auto-restart would steal this expect future)
            st = WorkerStatus(
                name=inst,
                instances=(inst,),
                state=WorkerState.RESTARTING,
                last_pong=self.clock.now,
            )
            self.statuses[inst] = st
            self._backoffs[inst] = Backoff(self.policy, self._rng)
            self.transport.owner[inst] = inst
            self._procs[inst] = self._spawn(st)
            futures.append(self.transport.expect(inst))
        try:
            loop.run_until_complete(
                asyncio.wait_for(asyncio.gather(*futures), timeout=_SPAWN_TIMEOUT_WALL)
            )
        except (asyncio.TimeoutError, TimeoutError):
            for name in fresh:
                self.transport.unexpect(name)
                self._reap(name)
                self.statuses.pop(name, None)
                self._procs.pop(name, None)
                self._backoffs.pop(name, None)
                self.transport.owner.pop(name, None)
            raise RuntimeError(
                "cluster: worker handshake timed out during reconfiguration"
            ) from None
        now = self.clock.now
        for name in fresh:
            st = self.statuses[name]
            st.pid = self._procs[name].pid
            st.state = WorkerState.RUNNING
            st.last_pong = now
            st.started_at = now
            if self.system is not None:
                self.system.telemetry.emit(
                    "worker_spawn", name, pid=st.pid, instances=list(st.instances)
                )
        # same rationale as attach: don't let the spawn burst's wall
        # time advance the logical clock past in-flight deadlines
        self.clock.rebase()

    def retire(self, instances: Sequence[str]) -> None:
        """Shut down workers whose hosted instances were all removed by
        a live reconfiguration; grouped workers that still host a
        surviving instance just shed the removed ones.  Blocking; call
        while the event loop is idle (after the transition completes)."""
        targets: dict[str, list[str]] = {}
        for inst in instances:
            w = self.transport.owner.get(inst)
            if w is not None:
                targets.setdefault(w, []).append(inst)
        for wname, insts in sorted(targets.items()):
            st = self.statuses.get(wname)
            if st is None:
                continue
            for i in insts:
                self.transport.owner.pop(i, None)
            remaining = tuple(i for i in st.instances if i not in insts)
            if remaining:
                st.instances = remaining
                continue
            # mark STOPPED *before* closing the link so the link-down
            # callback doesn't declare a crash and schedule a restart
            st.state = WorkerState.STOPPED
            if self.system is not None:
                self.system.telemetry.emit(
                    "worker_retire", wname, pid=st.pid, instances=list(st.instances)
                )
            self.transport.request_shutdown(wname)
            try:
                self.clock.loop.run_until_complete(asyncio.sleep(0.05))
            except RuntimeError:  # pragma: no cover - loop unexpectedly running
                pass
            self.transport.close_link(wname)
            self._reap(wname)
            self.statuses.pop(wname, None)
            self._procs.pop(wname, None)
            self._backoffs.pop(wname, None)

    def _spawn(self, st: WorkerStatus) -> subprocess.Popen:
        proc = subprocess.Popen(
            [
                self.python,
                str(_WORKER_PATH),
                "--connect",
                f"127.0.0.1:{self.transport.port}",
                "--name",
                st.name,
            ],
            stdin=subprocess.DEVNULL,
            stdout=subprocess.DEVNULL,
            start_new_session=True,  # own process group: killable as a unit
        )
        _LIVE_WORKER_PGIDS.add(proc.pid)
        return proc

    def _reap(self, name: str) -> None:
        proc = self._procs.get(name)
        if proc is None:
            return
        if proc.poll() is None:
            try:
                os.killpg(proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        try:
            proc.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
            pass
        _LIVE_WORKER_PGIDS.discard(proc.pid)

    # -- liveness -----------------------------------------------------------

    def _arm_heartbeat(self) -> None:
        if self._stopping:
            return
        self._hb_handle = self.clock.call_after(
            self.heartbeat_interval, self._heartbeat_tick
        )

    def _heartbeat_tick(self) -> None:
        if self._stopping:
            return
        now = self.clock.now
        for name, st in self.statuses.items():
            if st.state is not WorkerState.RUNNING:
                continue
            proc = self._procs.get(name)
            if proc is not None and proc.poll() is not None:
                self._declare_crash(name, f"process exit (code {proc.returncode})")
            elif now - st.last_pong > self.heartbeat_timeout:
                if st.suspect:
                    st.heartbeat_timeouts += 1
                    self._telemetry_counter("cluster_heartbeat_timeouts", name)
                    self._declare_crash(name, "missed heartbeats")
                else:
                    # first stale observation: give buffered pongs one
                    # more tick to be processed before condemning
                    st.suspect = True
                    self.transport.ping(name)
            else:
                st.suspect = False
                self.transport.ping(name)
        self._arm_heartbeat()

    def _note_pong(self, name: str) -> None:
        st = self.statuses.get(name)
        if st is not None:
            st.last_pong = self.clock.now
            st.suspect = False

    def _link_lost(self, name: str) -> None:
        st = self.statuses.get(name)
        if st is not None and st.state is WorkerState.RUNNING:
            self._declare_crash(name, "connection lost")

    # -- crash / restart ------------------------------------------------------

    def _telemetry_counter(self, counter: str, name: str) -> None:
        if self.system is not None:
            self.system.telemetry.counter(counter, worker=name).inc()

    def _declare_crash(self, name: str, reason: str) -> None:
        st = self.statuses[name]
        if st.state is not WorkerState.RUNNING or self._stopping:
            return
        st.state = WorkerState.DOWN
        st.crashes += 1
        st.last_crash_reason = reason
        self._telemetry_counter("cluster_worker_crashes", name)
        sys_ = self.system
        ev = sys_.telemetry.emit(
            "worker_crash", name, reason=reason, instances=list(st.instances)
        )
        self.transport.close_link(name)
        self._reap(name)
        # the real fault enters the runtime here: every hosted instance
        # crashes, and the PR 1 failover machinery takes over
        for inst in st.instances:
            runtime = sys_.instances.get(inst)
            if runtime is not None and runtime.alive:
                sys_.crash_instance(inst)
        delay = self._backoffs[name].next_delay()
        if delay is None:
            st.state = WorkerState.FAILED
            sys_.telemetry.emit("worker_gave_up", name, parent=ev)
            self._update_degraded()
            return
        sys_.telemetry.emit(
            "worker_restart_scheduled", name, parent=ev, delay=round(delay, 6)
        )
        self.clock.call_after(delay, lambda: self._restart(name))
        self._update_degraded()

    def _restart(self, name: str) -> None:
        if self._stopping:
            return
        st = self.statuses.get(name)
        if st is None or st.state is not WorkerState.DOWN:
            # gone: a live reconfiguration retired the worker while its
            # restart was pending
            return
        st.state = WorkerState.RESTARTING
        self._procs[name] = self._spawn(st)
        fut = self.transport.expect(name)
        self.clock.loop.create_task(self._complete_restart(name, fut))

    async def _complete_restart(self, name: str, fut: asyncio.Future) -> None:
        st = self.statuses.get(name)
        if st is None:  # retired before the handshake wait even began
            self.transport.unexpect(name)
            self._reap(name)
            return
        try:
            await asyncio.wait_for(fut, timeout=_SPAWN_TIMEOUT_WALL)
        except asyncio.CancelledError:
            self.transport.unexpect(name)
            self._reap(name)
            return
        except (asyncio.TimeoutError, TimeoutError):
            self.transport.unexpect(name)
            self._reap(name)
            if self.statuses.get(name) is not st:
                return  # retired while the spawn was in flight
            st.state = WorkerState.DOWN
            delay = self._backoffs[name].next_delay()
            if delay is None:
                st.state = WorkerState.FAILED
                self.system.telemetry.emit("worker_gave_up", name)
                self._update_degraded()
                return
            self.clock.call_after(delay, lambda: self._restart(name))
            return
        if self.statuses.get(name) is not st:
            # a live reconfiguration retired the worker while its
            # replacement process was handshaking: it is no longer ours
            self.transport.close_link(name)
            self._reap(name)
            return
        now = self.clock.now
        st.state = WorkerState.RUNNING
        st.pid = self._procs[name].pid
        st.last_pong = now
        st.suspect = False
        st.started_at = now
        st.restarts += 1
        self._telemetry_counter("cluster_worker_restarts", name)
        self.system.telemetry.emit("worker_restart", name, pid=st.pid)
        for inst in st.instances:
            runtime = self.system.instances.get(inst)
            if runtime is not None and runtime.crashed:
                try:
                    self.system.restart_instance(inst)
                except StartStopFailure:
                    pass  # the architecture revived it first — it wins
        self.clock.call_after(
            self.policy.stable_after,
            lambda started=now: self._maybe_reset_backoff(name, started),
        )
        self._update_degraded()

    def _maybe_reset_backoff(self, name: str, started_at: float) -> None:
        st = self.statuses.get(name)
        if (
            st is not None
            and st.state is WorkerState.RUNNING
            and st.started_at == started_at
        ):
            self._backoffs[name].reset()

    def _update_degraded(self) -> None:
        if self.system is not None:
            self.system.telemetry.gauge("cluster_workers_down").set(
                sum(1 for s in self.statuses.values() if s.state is not WorkerState.RUNNING)
            )

    # -- operator surface ----------------------------------------------------

    @property
    def degraded(self) -> bool:
        """True while any worker is down, restarting or failed."""
        return any(
            s.state is not WorkerState.RUNNING for s in self.statuses.values()
        )

    def worker_of(self, target: str) -> str:
        """Resolve an instance or worker name to the worker name."""
        if target in self.statuses:
            return target
        name = self.transport.owner.get(target)
        if name is None:
            raise KeyError(f"no cluster worker hosts {target!r}")
        return name

    def worker_pid(self, target: str) -> int | None:
        return self.statuses[self.worker_of(target)].pid

    def kill(self, target: str, sig: int = signal.SIGKILL) -> str:
        """Operator fault drill: signal the worker hosting ``target``
        (an instance or worker name).  Returns the worker name."""
        name = self.worker_of(target)
        proc = self._procs.get(name)
        if proc is not None and proc.poll() is None:
            try:
                os.killpg(proc.pid, sig)
            except ProcessLookupError:
                pass
        if self.system is not None:
            self.system.telemetry.emit("worker_kill", name, signal=int(sig))
        return name

    def status(self) -> dict[str, dict]:
        return {name: st.as_dict() for name, st in self.statuses.items()}

    def report(self) -> SupervisorReport:
        sts = list(self.statuses.values())
        return SupervisorReport(
            workers=len(sts),
            crashes=sum(s.crashes for s in sts),
            restarts=sum(s.restarts for s in sts),
            heartbeat_timeouts=sum(s.heartbeat_timeouts for s in sts),
            degraded=self.degraded,
            statuses=sts,
        )

    # -- shutdown ------------------------------------------------------------

    def drain(self, grace: float = 5.0) -> bool:
        """Graceful shutdown: stop supervision, ask workers to exit,
        run the engine until in-flight messages and host calls settle
        (or ``grace`` logical seconds elapse), then force-kill any
        straggler.  Returns True when fully drained."""
        self._stopping = True
        if self._hb_handle is not None:
            self._hb_handle.cancel()
            self._hb_handle = None
        for name in list(self.statuses):
            self.transport.request_shutdown(name)

        def pending() -> int:
            extra = self.clock.extra_pending
            return extra() if extra is not None else 0

        deadline = self.clock.now + max(grace, 0.0)
        while pending() > 0 and self.clock.now < deadline:
            self.clock.run_until(min(self.clock.now + 0.1, deadline))
        drained = pending() == 0
        self.shutdown()
        return drained

    def shutdown(self) -> None:
        """Force-stop every worker process group and reap it."""
        self._stopping = True
        if self._hb_handle is not None:
            self._hb_handle.cancel()
            self._hb_handle = None
        for name, st in self.statuses.items():
            self._reap(name)
            if st.state is not WorkerState.FAILED:
                st.state = WorkerState.STOPPED


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


class ClusterEngine(ExecutionEngine):
    """Multi-process deployment behind the engine seam.

    ``workers`` shards instances across that many worker processes
    (default: one per instance); ``time_scale`` compresses logical time
    exactly as on the realtime engine; ``heartbeat_interval`` /
    ``heartbeat_timeout`` / ``backoff`` tune supervision (all in
    logical seconds); ``drills`` is a sequence of ``(logical_time,
    instance)`` SIGKILL fault drills scheduled at attach (the
    ``repro cluster --kill`` surface).

    Architectures with self-re-arming poll loops never quiesce — and
    the heartbeat timer alone keeps the clock busy — so drive a cluster
    system with ``run_until``, not ``run``.
    """

    supports_controlled_scheduling = False

    def __init__(
        self,
        *,
        workers: int | None = None,
        time_scale: float = 1.0,
        max_workers: int | None = None,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 2.0,
        backoff: BackoffPolicy | None = None,
        seed: int = 0,
        python: str | None = None,
        drills: Iterable[tuple[float, str]] = (),
    ):
        clock = RealtimeClock(time_scale=time_scale)
        transport = ClusterTransport()
        executor = ThreadPoolHostExecutor(clock, max_workers)
        super().__init__(clock, transport, executor)
        self.name = "cluster"
        clock.extra_pending = lambda: transport.in_flight + executor.in_flight
        self.supervisor = ClusterSupervisor(
            transport,
            clock,
            workers=workers,
            heartbeat_interval=heartbeat_interval,
            heartbeat_timeout=heartbeat_timeout,
            backoff=backoff,
            seed=seed,
            python=python,
        )
        self._drills = tuple(drills)
        self._closed = False

    def attach(self, system: "System") -> None:
        super().attach(system)
        self.supervisor.attach(system)
        for t, inst in self._drills:
            self.clock.call_at(t, lambda i=inst: self.supervisor.kill(i))

    def prepare_instances(self, names) -> None:
        self.supervisor.deploy(names)

    def retire_instances(self, names) -> None:
        self.supervisor.retire(names)

    def drain(self, grace: float = 5.0) -> bool:
        return self.supervisor.drain(grace)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.supervisor.shutdown()
        self.transport.close()
        self.executor.close()
        self.clock.close()
