"""The host-language interface of junctions.

A DSL ``host Name {w1, w2}`` block invokes the Python callable bound as
``Name`` on the junction's instance type, passing a :class:`HostContext`.
Host code may *read* arbitrary junction state but may only *write* the
symbols the block declares — exactly the contract of the paper's
``⌊H⌉{V}`` notation.

Host code models computation cost with :meth:`HostContext.take`, which
advances simulated time after the block returns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.errors import HostError
from .kvtable import UNDEF

if TYPE_CHECKING:  # pragma: no cover
    from .instance import JunctionRuntime
    from .system import System


class HostContext:
    """What a host block sees of its junction."""

    def __init__(
        self,
        system: "System",
        junction: "JunctionRuntime",
        writes: tuple[str, ...],
        defer_writes: bool = False,
    ):
        self._system = system
        self._junction = junction
        self._writes = frozenset(writes)
        self._elapsed = 0.0
        #: engine-executor mode: the host function runs off the runtime
        #: thread, so writes are buffered here (reads see them through
        #: an overlay) and applied on the runtime thread when the call
        #: completes — the KV table is never touched cross-thread
        self._defer = defer_writes
        self._deferred: list[tuple[str, object]] = []
        self._overlay: dict[str, object] = {}

    # -- identity ----------------------------------------------------------

    @property
    def instance(self) -> str:
        return self._junction.instance.name

    @property
    def junction(self) -> str:
        return self._junction.name

    @property
    def app(self):
        """The application object created by the instance type's
        ``app_factory`` when the instance started."""
        return self._junction.instance.app

    @property
    def now(self) -> float:
        return self._system.clock.now

    @property
    def params(self) -> dict:
        """Junction parameters as runtime values (read-only copy)."""
        return dict(self._junction.params)

    # -- junction state -----------------------------------------------------

    def get(self, key: str, default=None):
        if self._defer and key in self._overlay:
            v = self._overlay[key]
            return default if v is UNDEF else v
        table = self._junction.table
        if table.has(key):
            v = table.values[key]
            return default if v is UNDEF else v
        if key in self._junction.params:
            return self._junction.params[key]
        return default

    def __getitem__(self, key: str):
        v = self.get(key, default=_MISSING)
        if v is _MISSING:
            raise KeyError(f"no junction state or parameter {key!r}")
        return v

    def set(self, key: str, value) -> None:
        """Write junction state declared writable by the host block.

        Undeclared writes violate the block's ``⌊H⌉{V}`` contract.
        Under the system's default ``host_contract="strict"`` they
        raise; under ``"warn"`` the write goes through, but a
        ``host_contract_violation`` telemetry event and counter record
        it (the write still must name *known* junction state).
        """
        if key not in self._writes:
            if self._system.host_contract != "warn":
                raise HostError(
                    f"host block may not write {key!r}; declared writes are "
                    f"{sorted(self._writes)}"
                )
            self._warn_contract(key)
        if self._defer:
            self._deferred.append((key, value))
            self._overlay[key] = value
            return
        self._apply(key, value)

    def apply_deferred_writes(self) -> None:
        """Apply buffered writes in program order — called on the
        runtime thread by the engine executor's completion callback.
        Validation errors (unknown state, non-bool propositions, idx
        membership) surface here and fail the strand exactly as the
        inline path would have."""
        writes, self._deferred = self._deferred, []
        self._overlay.clear()
        for key, value in writes:
            self._apply(key, value)

    def _apply(self, key: str, value) -> None:
        jr = self._junction
        if key in jr.idx_names:
            self._set_idx(key, value)
            return
        if key in jr.subset_names:
            self._set_subset(key, value)
            return
        if key in jr.prop_names:
            if not isinstance(value, bool):
                raise HostError(f"proposition {key!r} requires a bool, got {type(value).__name__}")
            jr.table.set_local(key, value)
            return
        if key in jr.data_names:
            jr.table.set_local(key, value)
            return
        raise HostError(f"host block writes unknown junction state {key!r}")

    def _warn_contract(self, key: str) -> None:
        jr = self._junction
        node = f"{jr.instance.name}::{jr.name}"
        tele = self._system.telemetry
        tele.emit(
            "host_contract_violation",
            node,
            key=key,
            declared=sorted(self._writes),
        )
        tele.counter("host_contract_violations", node=node, key=key).inc()

    def _set_idx(self, key: str, value) -> None:
        """Indices must take values from their underlying set — the
        paper's contract with the host language."""
        elems = self._junction.set_values.get(key + "!of", ())
        if isinstance(value, int) and not isinstance(value, bool) and value not in elems:
            # allow positional choice
            if 0 <= value < len(elems):
                self._junction.table.set_local(key, elems[value])
                return
        if value in elems:
            self._junction.table.set_local(key, value)
            return
        raise HostError(f"idx {key!r} must be a member (or position) of {elems}, got {value!r}")

    def _set_subset(self, key: str, value) -> None:
        elems = self._junction.set_values.get(key + "!of", ())
        try:
            chosen = tuple(value)
        except TypeError:
            raise HostError(f"subset {key!r} requires an iterable of set members") from None
        for v in chosen:
            if v not in elems:
                raise HostError(f"subset {key!r}: {v!r} is not a member of {elems}")
        table = self._junction.table
        table.set_local(key, chosen)
        # maintain the membership propositions the DSL iterates over
        from ..core.expand import subset_membership_prop

        fam = subset_membership_prop(key)
        for elem in elems:
            table.set_local(f"{fam}[{elem}]", elem in chosen)

    # -- cost modelling ----------------------------------------------------------

    def take(self, dt: float) -> None:
        """Consume ``dt`` units of simulated service time."""
        if dt < 0:
            raise HostError("take() requires a non-negative duration")
        self._elapsed += dt

    @property
    def elapsed(self) -> float:
        return self._elapsed

    # -- escape hatch ------------------------------------------------------------

    @property
    def system(self) -> "System":
        """The running system (for substrate integration such as
        emitting metrics or scheduling external work)."""
        return self._system


_MISSING = object()
