"""Crash supervision policy for the cluster engine.

The mechanics of running worker processes (spawning, socket plumbing,
frame routing) live in :mod:`repro.runtime.cluster`; this module holds
the *policy* pieces the supervisor composes, mirroring how classic
process supervisors (Erlang/OTP, systemd, s6) separate restart policy
from process plumbing:

* :class:`BackoffPolicy` — capped exponential restart backoff with
  seeded jitter.  Delays are in **logical seconds** (the engine clock's
  unit), so a compressed ``time_scale`` compresses supervision the same
  way it compresses the workload.
* :class:`WorkerState` / :class:`WorkerStatus` — the lifecycle of one
  supervised worker process: ``running → down → restarting → running``
  (or ``failed`` once the restart budget is exhausted).
* :class:`SupervisorReport` — the operator-facing digest printed by
  ``repro cluster`` and asserted by the recovery tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Backoff", "BackoffPolicy", "SupervisorReport", "WorkerState", "WorkerStatus"]


@dataclass(frozen=True)
class BackoffPolicy:
    """Capped exponential backoff with jitter, in logical seconds.

    Attempt *n* (0-based) waits ``min(base * factor**n, cap)`` plus a
    uniform jitter of up to ``jitter`` times that delay.  ``max_restarts``
    bounds *consecutive* restart attempts; a worker that stays up for
    ``stable_after`` logical seconds resets its attempt counter (the
    standard supervisor convention, so a flapping worker escalates but
    an occasional crash does not).  ``max_restarts=None`` retries
    forever.
    """

    base: float = 0.5
    factor: float = 2.0
    cap: float = 8.0
    jitter: float = 0.1
    max_restarts: int | None = None
    stable_after: float = 10.0

    def delay(self, attempt: int, rng: random.Random) -> float:
        d = min(self.base * (self.factor ** attempt), self.cap)
        if self.jitter > 0.0:
            d += rng.uniform(0.0, self.jitter * d)
        return d


class Backoff:
    """Per-worker backoff state over a :class:`BackoffPolicy`."""

    def __init__(self, policy: BackoffPolicy, rng: random.Random):
        self.policy = policy
        self._rng = rng
        self.attempt = 0

    def next_delay(self) -> float | None:
        """The delay before the next restart attempt, or ``None`` when
        the consecutive-restart budget is exhausted."""
        if (
            self.policy.max_restarts is not None
            and self.attempt >= self.policy.max_restarts
        ):
            return None
        d = self.policy.delay(self.attempt, self._rng)
        self.attempt += 1
        return d

    def reset(self) -> None:
        self.attempt = 0


class WorkerState(str, Enum):
    """Lifecycle of one supervised worker process."""

    RUNNING = "running"
    DOWN = "down"            # crash detected, restart scheduled
    RESTARTING = "restarting"  # new process spawned, handshake pending
    FAILED = "failed"        # restart budget exhausted — gave up
    STOPPED = "stopped"      # deliberately shut down (drain/close)


@dataclass
class WorkerStatus:
    """Mutable supervision record of one worker."""

    name: str
    instances: tuple[str, ...]
    state: WorkerState = WorkerState.RUNNING
    pid: int | None = None
    restarts: int = 0
    crashes: int = 0
    heartbeat_timeouts: int = 0
    last_pong: float = 0.0       # logical time of the last heartbeat reply
    last_crash_reason: str = ""
    started_at: float = 0.0      # logical time the current process came up
    #: a stale pong was observed on the last heartbeat tick; a crash is
    #: declared only when staleness persists across *two* consecutive
    #: ticks, so a coordinator stall (e.g. the blocking process spawn of
    #: another worker's restart) cannot condemn a healthy worker whose
    #: pong is sitting unprocessed in a socket buffer
    suspect: bool = False

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "instances": list(self.instances),
            "state": self.state.value,
            "pid": self.pid,
            "restarts": self.restarts,
            "crashes": self.crashes,
            "heartbeat_timeouts": self.heartbeat_timeouts,
            "last_crash_reason": self.last_crash_reason,
        }


@dataclass
class SupervisorReport:
    """Aggregate supervision digest (``ClusterSupervisor.report()``)."""

    workers: int
    crashes: int
    restarts: int
    heartbeat_timeouts: int
    degraded: bool
    statuses: list[WorkerStatus] = field(default_factory=list)

    def recovered(self, names: tuple[str, ...] = ()) -> bool:
        """True when every named worker (default: all) is running."""
        targets = [s for s in self.statuses if not names or s.name in names]
        return bool(targets) and all(
            s.state is WorkerState.RUNNING for s in targets
        )

    def render(self) -> str:
        lines = [
            f"cluster: workers={self.workers} crashes={self.crashes} "
            f"restarts={self.restarts} heartbeat_timeouts={self.heartbeat_timeouts} "
            f"degraded={self.degraded}"
        ]
        for s in self.statuses:
            lines.append(
                f"  worker {s.name} [{','.join(s.instances)}] state={s.state.value} "
                f"pid={s.pid} restarts={s.restarts} crashes={s.crashes}"
            )
        return "\n".join(lines)
