"""Runtime representations of instance types, instances and junctions.

An :class:`InstanceTypeRuntime` packages a compiled instance type with
its host-language bindings: named host functions (the ``⌊H⌉`` blocks),
an application-object factory, and state save/restore providers used by
the ``save``/``restore`` primitives.

Instances are created up front (they are *declared* in the program) but
only participate once started — by ``main``, by another junction's
``start``, or by the embedding application.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..core import ast as A
from ..core.compiler import CompiledJunction
from ..core.errors import CompileError
from ..semantics.commute import Footprint, key_token, node_token
from .kvtable import KVTable, UNDEF


#: Host function signature: receives a HostContext.
HostFn = Callable[["HostContext"], None]  # noqa: F821  (defined in host.py)


@dataclass
class StateProviders:
    """Host-state capture callbacks for ``save``/``restore``.

    ``save(app, instance)`` returns a picklable/serializable object;
    ``restore(app, instance, obj)`` re-installs it.  ``schema`` names
    the serde schema used to serialize the object (``None`` selects the
    generic object codec).
    """

    save: Callable[[object, "InstanceRuntime"], object] | None = None
    restore: Callable[[object, "InstanceRuntime", object], None] | None = None
    schema: str | None = None


class InstanceTypeRuntime:
    """An instance type with its host-language bindings."""

    def __init__(self, name: str, junctions: list[CompiledJunction]):
        self.name = name
        self.junctions = {j.name: j for j in junctions}
        self.host_fns: dict[str, HostFn] = {}
        self.app_factory: Callable[["InstanceRuntime"], object] | None = None
        self.state = StateProviders()
        #: per-data-name state providers (overrides ``state``)
        self.data_state: dict[str, StateProviders] = {}

    def bind_host(self, name: str, fn: HostFn) -> None:
        self.host_fns[name] = fn

    def host(self, name: str) -> Callable:
        """Decorator form: ``@type_rt.host('H1')``."""

        def deco(fn: HostFn) -> HostFn:
            self.bind_host(name, fn)
            return fn

        return deco


class JunctionRuntime:
    """A junction of a started instance."""

    def __init__(self, instance: "InstanceRuntime", compiled: CompiledJunction):
        self.instance = instance
        self.compiled = compiled
        self.name = compiled.name
        self.node = f"{instance.name}::{compiled.name}"
        self.table = KVTable(owner=self.node)
        self.params: dict[str, object] = {}
        self.ast_params: dict[str, object] = {}
        self.guard = None  # Formula | None, set at bind time
        self.body: A.Expr | None = None  # specialized body
        self.decls: tuple[A.Decl, ...] = ()
        self.status = "idle"  # 'idle' | 'running'
        self.sched_count = 0
        #: reconfiguration quiesce flag: a paused junction buffers
        #: inbound updates (they still apply/ack through the reliable
        #: delivery layer) but schedules no new executions until resumed
        self.paused = False
        #: has this junction ever been driven from outside the
        #: architecture (external_update/external_data/poke)?  The
        #: reconfiguration executor pauses these *inbound* junctions
        #: first so the rest of the pipeline can drain naturally.
        self.external_inbound = False
        #: names of declared idx / subset state (host-writable)
        self.idx_names: set[str] = set()
        self.subset_names: set[str] = set()
        self.set_values: dict[str, tuple] = {}
        self.data_names: set[str] = set()
        self.prop_names: set[str] = set()
        #: compiled guard/body (``repro.compile.JunctionCode``), set at
        #: instance bind time when compilation is enabled; None runs the
        #: tree-walking interpreter
        self.code = None
        # hot-path caches: schedule-replay labels/footprints and
        # telemetry handles are per-junction constants — building them
        # per event dominated the interpreter's scheduling overhead
        self._label_pump = f"pump:{self.node}"
        self._label_sleep = f"sleep-wake:{self.node}"
        self._label_deadline = f"deadline:{self.node}"
        self._label_attempt = f"attempt:{self.node}"
        self._fp_node = Footprint.make(writes=[node_token(self.node)])
        self._fp_strand = Footprint.make(writes=[key_token(self.node, "__strand__")])
        self._m_scheds = None
        self._m_exec_seconds = None
        self._m_unscheds: dict[str, object] = {}
        #: cached causeless attempt callback (System._attempt_soon)
        self._attempt_cb = None
        #: a synchronously-completed JunctionExecution parked for reuse
        #: by the next scheduling (object-churn relief: storms schedule
        #: tens of thousands of one-shot executions per junction)
        self._free_exec = None

    def init_state(self) -> None:
        """(Re)initialize the KV table from the specialized decls.

        The values reset; the msg-id dedup window carries over — it is
        transport state, and a restarted junction must keep suppressing
        retransmissions its previous incarnation already applied (see
        :meth:`KVTable.adopt_dedup`)."""
        prev = self.table
        self.table = KVTable(owner=self.node)
        self.table.adopt_dedup(prev)
        # the parked execution binds the old table; drop it
        self._free_exec = None
        self.idx_names.clear()
        self.subset_names.clear()
        self.set_values.clear()
        self.data_names.clear()
        self.prop_names.clear()
        for d in self.decls:
            if isinstance(d, A.InitProp):
                self.table.declare(d.key(), d.value)
                self.prop_names.add(d.key())
            elif isinstance(d, A.InitData):
                self.table.declare(d.name, UNDEF)
                self.data_names.add(d.name)
            elif isinstance(d, A.IdxDecl):
                self.table.declare(d.name, UNDEF)
                self.idx_names.add(d.name)
                self.set_values[d.name + "!of"] = _set_elements(d.of_set)
            elif isinstance(d, A.SubsetDecl):
                self.table.declare(d.name, UNDEF)
                self.subset_names.add(d.name)
                parents = _set_elements(d.of_set)
                self.set_values[d.name + "!of"] = parents
                # auto-maintained membership propositions, so the DSL
                # can iterate subsets (unrolled over the parent set)
                from ..core.expand import subset_membership_prop

                fam = subset_membership_prop(d.name)
                for elem in parents:
                    key = f"{fam}[{elem}]"
                    self.table.declare(key, False)
                    self.prop_names.add(key)
            elif isinstance(d, A.SetDecl):
                if d.literal is not None:
                    self.set_values[d.name] = _set_elements(d.literal)
            # Guard handled at bind; ForInit expanded by specialize.

        # Guard-footprint tracking: a *pure* guard's verdict depends
        # only on the keys it reads, so record them on the table —
        # writes to any of them set ``guard_dirty`` and the scheduler
        # skips re-evaluating a clean guard (dirty-driven scheduling).
        # Impure guards (@ / S() / idx-indexed props) read state the
        # table cannot observe and stay untracked.  Function-level
        # import: ``repro.compile`` pulls in codegen, which this
        # module must not import at load time.
        from ..compile.formulas import guard_keys, is_pure

        guard = self.guard
        if guard is None or is_pure(guard, self.idx_names):
            self.table.set_guard_tracking(
                guard_keys(guard) if guard is not None else ()
            )
        else:
            self.table.set_guard_tracking(None)

    def checkpoint(self) -> dict[str, object]:
        return self.table.snapshot()

    def restore_checkpoint(self, snap: Mapping[str, object]) -> None:
        self.table.values.update(snap)


def _set_elements(s: object) -> tuple:
    """Normalize a set literal to runtime elements (strings/floats)."""
    if isinstance(s, A.SetLit):
        out = []
        for item in s.items:
            if isinstance(item, A.Ref):
                out.append(str(item))
            elif isinstance(item, A.Num):
                out.append(item.value)
            else:
                out.append(item)
        return tuple(out)
    if isinstance(s, tuple):
        return s
    raise CompileError(f"set expression {s!r} was not resolved before runtime")


class InstanceRuntime:
    """A named instance of an instance type."""

    def __init__(self, name: str, type_rt: InstanceTypeRuntime):
        self.name = name
        self.type = type_rt
        self.running = False
        self.crashed = False
        self.app: object | None = None
        self.junctions: dict[str, JunctionRuntime] = {
            jname: JunctionRuntime(self, cj) for jname, cj in type_rt.junctions.items()
        }
        self.start_count = 0

    def junction(self, name: str) -> JunctionRuntime:
        try:
            return self.junctions[name]
        except KeyError:
            raise CompileError(f"instance {self.name!r} has no junction {name!r}") from None

    def sole_junction(self) -> JunctionRuntime:
        if len(self.junctions) == 1:
            return next(iter(self.junctions.values()))
        if "junction" in self.junctions:
            return self.junctions["junction"]
        raise CompileError(
            f"instance {self.name!r} has {len(self.junctions)} junctions; qualify the target"
        )

    def set_paused(self, value: bool) -> None:
        """Pause/resume every junction of this instance (reconfig quiesce)."""
        for jr in self.junctions.values():
            jr.paused = value

    @property
    def alive(self) -> bool:
        return self.running and not self.crashed
