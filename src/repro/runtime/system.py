"""System assembly: programs + host bindings + network + scheduler.

A :class:`System` loads a :class:`~repro.core.compiler.CompiledProgram`,
creates the declared instances, and runs the architecture on simulated
time.  It plays the role of the paper's libcompart deployment: starting
the special ``main`` computation, interconnecting junctions, routing KV
updates, evaluating junction guards, and exposing fault injection.

Scheduling model
----------------

A junction executes when *scheduled*.  Scheduling attempts happen:

* when a KV update arrives while the junction is idle,
* when the embedding application pokes it
  (:meth:`System.external_update` / :meth:`System.poke`),
* right after an instance starts (each junction gets an initial
  attempt — the paper starts an instance's junctions concurrently in
  arbitrary order),
* after an execution finishes with queued pending updates.

An attempt applies pending updates, evaluates the guard and — if the
guard holds — runs the junction body.  Guards therefore express the
paper's scheduling assumptions (``guard Work``, ``guard !Starting &&
Req`` …).
"""

from __future__ import annotations

import random
import warnings
from functools import partial
from typing import Callable, Mapping

from ..core import ast as A
from ..core.compiler import CompiledProgram
from ..core.errors import (
    CompileError,
    DslFailure,
    StartStopFailure,
    UndefError,
)
from ..core.expand import (
    resolve_me_decl,
    resolve_me_expr,
    specialize,
    to_ast_value,
)
from ..core.formula import TRUE, UNKNOWN, evaluate
from ..core.validate import validate_closed_junction
from ..serde.framing import Serializer
from ..analysis.capture import note_program
from ..telemetry import Telemetry
from ..telemetry.facade import note_system
from .channels import Message, Network
from .delivery import DeliveryPolicy, ReliableDelivery
from .engine import (
    EngineSpec,
    ExecutionEngine,
    SimEngine,
    _default_engine_factory,
    _default_engine_spec,
    controller_pending,
)
from .instance import InstanceRuntime, InstanceTypeRuntime, JunctionRuntime
from .interpreter import JunctionExecution
from .kvtable import UNDEF, Update
from .sim import Simulator


class System:
    """A running C-Saw architecture."""

    def __init__(
        self,
        program: CompiledProgram,
        *,
        latency: float = 0.05,
        intra_latency: float = 0.0005,
        max_retries: int = 3,
        seed: int = 0,
        serializer: Serializer | None = None,
        sim: Simulator | None = None,
        delivery_policy: DeliveryPolicy | None = None,
        telemetry: Telemetry | bool | None = None,
        host_contract: str = "strict",
        engine: ExecutionEngine | EngineSpec | str | None = None,
        compiled: bool | None = None,
    ):
        if host_contract not in ("strict", "warn"):
            raise ValueError(
                f"host_contract must be 'strict' or 'warn', got {host_contract!r}"
            )
        self.program = program
        #: how undeclared host-block writes are handled: ``"strict"``
        #: raises :class:`~repro.core.errors.HostError`; ``"warn"``
        #: performs the write and emits a ``host_contract_violation``
        #: telemetry event (sec. 6's ``⌊H⌉{V}`` write contract)
        self.host_contract = host_contract
        # -- execution engine resolution: explicit engine/spec > shared
        #    sim (deprecated) > ambient default_engine() scope > fresh
        #    SimEngine.  Spec strings and EngineSpec values carry a
        #    compile mode too; the explicit ``compiled`` kwarg wins.
        if sim is not None:
            warnings.warn(
                "System(sim=...) is deprecated; pass engine=SimEngine(sim) "
                "or an EngineSpec",
                DeprecationWarning,
                stacklevel=2,
            )
        spec_compiled: bool | None = None
        if isinstance(engine, (EngineSpec, str)):
            spec = EngineSpec.of(engine)
            spec_compiled = spec.compiled
            engine = spec.create()
        if engine is not None:
            if sim is not None:
                raise ValueError("pass engine=... or sim=..., not both")
        elif sim is not None:
            engine = SimEngine(sim)
        else:
            factory = _default_engine_factory()
            if factory is not None:
                engine = factory()
                ambient = _default_engine_spec()
                if ambient is not None:
                    spec_compiled = ambient.compiled
            else:
                engine = SimEngine()
        if compiled is None:
            compiled = spec_compiled
        if compiled is None:
            from ..compile import compile_default

            compiled = compile_default()
        self._compiled = bool(compiled)
        self._compile_cache: dict = {}
        #: node -> JunctionRuntime resolution cache; cleared whenever
        #: the instance/junction topology changes (reconfiguration)
        self._junction_cache: dict[str, JunctionRuntime] = {}
        if controller_pending() and not engine.supports_controlled_scheduling:
            raise ValueError(
                f"engine {engine.name!r} does not support controlled scheduling "
                "(use_controller / repro explore require the sim engine)"
            )
        self.engine = engine
        self.clock = engine.clock
        self.rng = random.Random(seed)
        # the telemetry facade owns the metrics registry shared by the
        # transport, delivery layer, KV tables and interpreter;
        # ``telemetry=False`` disables event emission (metrics stay on,
        # they are plain integer counters) for clean timing runs
        if isinstance(telemetry, Telemetry):
            self.telemetry = telemetry
            self.telemetry.clock = self.clock
        else:
            self.telemetry = Telemetry(self.clock, enabled=telemetry is not False)
        # tag every metric and exported trace line with the engine, so
        # sim and realtime runs of one workload are distinguishable
        self.telemetry.engine = engine.name
        self.telemetry.metrics.constant_labels["engine"] = engine.name
        note_system(self.telemetry)
        note_program(program)
        self.network = Network(
            self.clock,
            default_latency=latency,
            intra_latency=intra_latency,
            rng=self.rng,
            metrics=self.telemetry.metrics,
            transport=engine.transport,
        )
        self.network.telemetry = self.telemetry
        self.delivery = ReliableDelivery(self, delivery_policy, seed=seed)
        self.max_retries = max_retries
        self.serializer = serializer or Serializer()

        self.types: dict[str, InstanceTypeRuntime] = {}
        for tname in program.source.instance_types:
            self.types[tname] = InstanceTypeRuntime(tname, program.junctions_of_type(tname))

        self.instances: dict[str, InstanceRuntime] = {}
        for iname, tname in program.instance_map().items():
            self.instances[iname] = InstanceRuntime(iname, self.types[tname])

        self._executions: dict[str, JunctionExecution] = {}
        self._started_main = False
        #: AST-valued environment ``main`` was started with (config +
        #: caller overrides); reconfiguration re-evaluates the *new*
        #: program's start expression against it so unchanged parameters
        #: keep their original values
        self._main_env: dict[str, object] = {}
        #: re-entrancy latch for :meth:`reconfigure`
        self._reconfiguring = False
        #: transient causal context: the event that triggered the KV
        #: receive currently being processed (see ``_make_deliver``)
        self._attempt_cause: int | None = None
        self.failures: list[tuple[float, str, BaseException]] = []
        engine.attach(self)

    @property
    def sim(self):
        """The engine's clock (named for the original Simulator-only
        runtime; on a realtime engine this is the wall-clock timer
        facade).  Kept as the stable alias embedding code and the
        chaos/fault layers schedule against."""
        return self.clock

    # ------------------------------------------------------------------
    # Host bindings
    # ------------------------------------------------------------------

    def type_runtime(self, type_name: str) -> InstanceTypeRuntime:
        try:
            return self.types[type_name]
        except KeyError:
            raise CompileError(f"no instance type {type_name!r}") from None

    def bind_host(self, type_name: str, fn_name: str, fn) -> None:
        """Bind host function ``fn_name`` of instance type ``type_name``."""
        self.type_runtime(type_name).bind_host(fn_name, fn)

    def host(self, type_name: str, fn_name: str):
        """Decorator form of :meth:`bind_host`."""

        def deco(fn):
            self.bind_host(type_name, fn_name, fn)
            return fn

        return deco

    def bind_app(self, type_name: str, factory) -> None:
        """Application-object factory, called per instance at start."""
        self.type_runtime(type_name).app_factory = factory

    def bind_state(
        self,
        type_name: str,
        *,
        save=None,
        restore=None,
        schema: str | None = None,
        data_name: str | None = None,
    ) -> None:
        """Register host-state capture for ``save``/``restore``.

        ``data_name`` scopes the providers to one named data item;
        otherwise they become the type's defaults.
        """
        t = self.type_runtime(type_name)
        from .instance import StateProviders

        providers = StateProviders(save=save, restore=restore, schema=schema)
        if data_name is None:
            t.state = providers
        else:
            t.data_state[data_name] = providers

    # ------------------------------------------------------------------
    # Program start-up
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        return self.clock.now

    def start(self, **main_args) -> None:
        """Run ``main``: evaluates the start-up expression.

        ``main_args`` bind main's parameters by name; unbound parameters
        fall back to the program's compile-time config.
        """
        if self._started_main:
            raise CompileError("main already started")
        self._started_main = True
        main = self.program.main
        if main is None:
            return
        env = self.program.config_env()
        for k, v in main_args.items():
            env[k] = to_ast_value(v)
        missing = [p for p in main.params if p not in env]
        if missing:
            raise CompileError(f"main parameters missing values: {missing}")
        self._main_env = dict(env)

        body, _ = specialize(main.body, (), env)

        # main runs on a distinguished start-up pseudo-junction.
        from ..core.compiler import CompiledJunction

        init_cj = CompiledJunction(
            type_name="__init__", name="main", params=main.params, decls=(), body=body
        )
        init_type = InstanceTypeRuntime("__init__", [])
        init_type.junctions["main"] = init_cj
        init_inst = InstanceRuntime("__init__", init_type)
        init_inst.running = True
        jr = init_inst.junctions["main"] = JunctionRuntime(init_inst, init_cj)
        jr.body = body
        jr.decls = ()
        jr.guard = TRUE
        jr.params = {p: _to_runtime_value(env[p]) for p in main.params}
        jr.init_state()
        jr.table.attach_telemetry(self.telemetry)
        self.network.register(jr.node, self._make_deliver(jr))
        execution = JunctionExecution(self, jr)
        self._executions[jr.node] = execution
        execution.start()
        # drain immediate events so starts complete deterministically
        self.engine.run_until(self.clock.now)

    def run_until(self, time: float) -> None:
        self.engine.run_until(time)

    def run(self, max_events: int = 10_000_000) -> None:
        self.engine.run(max_events)

    def shutdown(self) -> None:
        """Release engine resources (worker threads, sockets, event
        loops).  A no-op for the default sim engine; realtime systems
        should be shut down when the embedding application is done."""
        self.engine.close()

    # ------------------------------------------------------------------
    # Instance lifecycle
    # ------------------------------------------------------------------

    def instance(self, name: str) -> InstanceRuntime:
        try:
            return self.instances[name]
        except KeyError:
            raise CompileError(f"no instance {name!r}") from None

    def _resolve_instance_name(self, ref: A.Ref, caller: JunctionRuntime | None) -> str:
        """Resolve a start/stop target, dereferencing the caller's idx
        cursors and parameters (so ``start which(t)`` works with
        ``idx which of {...}`` — used by elastic scale-out)."""
        name = str(ref)
        if name in self.instances or caller is None:
            return name
        if ref.is_simple and ref.name in caller.idx_names:
            v = caller.table.get(ref.name)
            if v is UNDEF:
                raise UndefError(f"{caller.node}: index {ref.name!r} is undef")
            return str(v)
        if ref.is_simple and isinstance(caller.params.get(ref.name), str):
            return caller.params[ref.name]
        return name

    def _execution_event(self, caller: JunctionRuntime | None) -> int | None:
        """The ``sched`` event of the caller's running execution — the
        causal parent of lifecycle actions taken from DSL code."""
        if caller is None:
            return None
        ex = self._executions.get(caller.node)
        return ex.sched_event if ex is not None else None

    def exec_start(self, node: A.Start, caller: JunctionRuntime | None) -> None:
        """Execute a ``start`` statement."""
        name = self._resolve_instance_name(node.instance, caller)
        inst = self.instance(name)
        if inst.running and not inst.crashed:
            raise StartStopFailure(f"start {name}: instance already running")
        arg_groups = dict(node.junction_args)
        junctions = list(inst.junctions.values())
        if None in arg_groups and len(arg_groups) == 1:
            if len(junctions) != 1:
                raise StartStopFailure(
                    f"start {name}: anonymous arguments but {len(junctions)} junctions"
                )
            arg_groups = {junctions[0].name: arg_groups[None]}
        self._start_instance(inst, arg_groups, parent=self._execution_event(caller))

    def start_instance(self, name: str, /, **junction_args) -> None:
        """Host-level instance start.  ``junction_args`` maps junction
        name to a dict of parameter values (or, for a sole junction, may
        be the parameter dict directly via ``args=...``)."""
        inst = self.instance(name)
        if inst.running and not inst.crashed:
            raise StartStopFailure(f"start {name}: instance already running")
        groups: dict[str, tuple] = {}
        for jname, params in junction_args.items():
            jr = inst.junction(jname)
            ordered = tuple(
                to_ast_value(params[p]) for p in jr.compiled.params
            )
            groups[jname] = ordered
        self._start_instance(inst, groups)

    def _start_instance(
        self,
        inst: InstanceRuntime,
        arg_groups: Mapping[str, tuple],
        parent: int | None = None,
    ) -> None:
        inst.running = True
        inst.crashed = False
        inst.start_count += 1
        self.network.set_down(inst.name, False)
        if inst.type.app_factory is not None:
            inst.app = inst.type.app_factory(inst)
        config_env = self.program.config_env()

        for jname, jr in inst.junctions.items():
            self._bind_junction(inst, jr, arg_groups.get(jname, ()), config_env)

        self.telemetry.counter("instance_starts", instance=inst.name).inc()
        ev = self.telemetry.emit("start_instance", inst.name, parent=parent)
        # junctions of a started instance start concurrently, in
        # arbitrary order — model with an immediate attempt for each
        for jr in inst.junctions.values():
            self._attempt_soon(jr, cause=ev)

    def _bind_junction(
        self,
        inst: InstanceRuntime,
        jr: JunctionRuntime,
        args: tuple,
        config_env: Mapping[str, object],
    ) -> None:
        """Specialize a junction template against its arguments and wire
        it into the network.  Used both at instance start and when the
        reconfiguration executor rebinds a live junction to a new
        template (the table is re-initialized; the caller restores any
        carried-over state afterwards)."""
        cj = jr.compiled
        if len(args) != len(cj.params):
            raise StartStopFailure(
                f"start {inst.name}: junction {jr.name!r} expects {len(cj.params)} "
                f"parameter(s), got {len(args)}"
            )
        env = dict(config_env)
        env.update(dict(zip(cj.params, args)))
        body, decls = specialize(cj.body, cj.decls, env)
        body = resolve_me_expr(body, inst.name, jr.name)
        decls = tuple(resolve_me_decl(d, inst.name, jr.name) for d in decls)
        validate_closed_junction(cj.qualified, decls, body, cj.params)
        jr.body = body
        jr.decls = decls
        jr.guard = TRUE
        for d in decls:
            if isinstance(d, A.Guard):
                jr.guard = d.formula
        jr.ast_params = dict(zip(cj.params, args))
        jr.params = {p: _to_runtime_value(v) for p, v in jr.ast_params.items()}
        jr.init_state()
        jr.table.attach_telemetry(self.telemetry)
        jr.table.on_idle_update = lambda j=jr: self._attempt_soon(j)
        jr.code = self._compile_junction(jr)
        self.network.register(jr.node, self._make_deliver(jr))

    def reconfigure(
        self,
        new_program: CompiledProgram | None = None,
        *,
        main_args: Mapping[str, object] | None = None,
        quiesce_grace: float = 5.0,
        poll: float = 0.01,
        bind: "Callable[[System], None] | None" = None,
        on_transfer=None,
    ):
        """Live-reconfigure this running system to ``new_program``.

        Diffs the running architecture against the target, plans a
        decentralized transition (quiesce inbound junctions → serde
        state snapshot → cutover/rebind → transfer → resume) and applies
        it without dropping client requests: updates addressed to a
        quiescing junction keep buffering (and acking) through the
        reliable-delivery layer and replay after cutover.

        ``new_program=None`` re-binds against the *same* program with
        new ``main_args`` (parameter-only reconfiguration).  ``bind``
        runs before cutover to install host bindings for newly added
        instance types; ``on_transfer(system, removed_apps)`` runs after
        cutover for application-level state transfer (e.g. resharding).

        Must be called from outside engine callbacks (like
        :meth:`run_until`): the quiesce phase pumps the engine, and on
        the cluster engine worker processes spawn/retire around it.

        Returns a :class:`repro.reconfig.ReconfigReport`.
        """
        from ..reconfig.executor import execute_reconfiguration

        return execute_reconfiguration(
            self,
            new_program,
            main_args=main_args,
            quiesce_grace=quiesce_grace,
            poll=poll,
            bind=bind,
            on_transfer=on_transfer,
        )

    def exec_stop(self, node: A.Stop, caller: JunctionRuntime | None) -> None:
        self.stop_instance(
            self._resolve_instance_name(node.instance, caller),
            _parent=self._execution_event(caller),
        )

    def stop_instance(self, name: str, *, _parent: int | None = None) -> None:
        inst = self.instance(name)
        if not inst.running:
            raise StartStopFailure(f"stop {name}: instance not running")
        for jr in inst.junctions.values():
            ex = self._executions.pop(jr.node, None)
            if ex is not None and not ex.finished:
                ex.cancel()
            self.network.unregister(jr.node)
        inst.running = False
        self.telemetry.counter("instance_stops", instance=name).inc()
        self.telemetry.emit("stop_instance", name, parent=_parent)

    # -- fault injection -----------------------------------------------------

    def crash_instance(self, name: str) -> None:
        """Crash an instance: abort executions, drop its traffic."""
        inst = self.instance(name)
        inst.crashed = True
        self.network.set_down(inst.name, True)
        for jr in inst.junctions.values():
            ex = self._executions.pop(jr.node, None)
            if ex is not None and not ex.finished:
                ex.cancel()
        self.telemetry.counter("instance_crashes", instance=name).inc()
        self.telemetry.emit("crash_instance", name)

    def restart_instance(self, name: str, /, reinit: bool = True) -> None:
        """Bring a crashed instance back (fresh junction state)."""
        inst = self.instance(name)
        if not inst.crashed:
            raise StartStopFailure(f"restart {name}: instance is not crashed")
        inst.crashed = False
        self.network.set_down(inst.name, False)
        if reinit:
            for jr in inst.junctions.values():
                jr.init_state()
                jr.table.attach_telemetry(self.telemetry)
                jr.table.on_idle_update = lambda j=jr: self._attempt_soon(j)
        self.telemetry.counter("instance_restarts", instance=name).inc()
        ev = self.telemetry.emit("restart_instance", name)
        for jr in inst.junctions.values():
            self._attempt_soon(jr, cause=ev)

    # ------------------------------------------------------------------
    # Junction scheduling
    # ------------------------------------------------------------------

    def junction(self, node: str) -> JunctionRuntime:
        jr = self._junction_cache.get(node)
        if jr is not None:
            return jr
        inst_name, _, jname = node.partition("::")
        inst = self.instance(inst_name)
        jr = inst.sole_junction() if not jname else inst.junction(jname)
        self._junction_cache[node] = jr
        return jr

    def _attempt_soon(self, jr: JunctionRuntime, cause: int | None = None) -> None:
        """Schedule an attempt; ``cause`` (or, when absent, the event
        currently being applied — see ``_make_deliver``) becomes the
        causal parent of the resulting ``attempt`` event."""
        if cause is None:
            cause = self._attempt_cause
        if cause is None:
            # causeless attempts (telemetry off, or idle pokes with no
            # parent event) reuse one callback per junction instead of
            # allocating a partial per post
            cb = jr._attempt_cb
            if cb is None:
                cb = jr._attempt_cb = partial(self.attempt_schedule, jr, None)
        else:
            cb = partial(self.attempt_schedule, jr, cause)
        self.clock.post(cb, label=jr._label_attempt, footprint=jr._fp_node)

    def attempt_schedule(self, jr: JunctionRuntime, cause: int | None = None) -> bool:
        """Apply pending updates, check the guard, and run if it holds."""
        inst = jr.instance
        if jr.status != "idle" or not inst.running or inst.crashed or jr.paused or jr.body is None:
            return False
        tel = self.telemetry
        attempt_ev = tel.emit("attempt", jr.node, parent=cause) if tel.enabled else None
        t = jr.table
        if t._pending_n:
            t.apply_pending()
        # inline of _guard_holds' clean-cache fast path (dirty-driven
        # scheduling): most attempts in an update storm re-see a guard
        # whose footprint did not change
        if t.guard_tracked and not t.guard_dirty and t.guard_cached is not None:
            if not t.guard_cached:
                return False
        elif not self._guard_holds(jr):
            return False
        execution = jr._free_exec
        if execution is None:
            execution = JunctionExecution(self, jr, parent_event=attempt_ev)
        else:
            jr._free_exec = None
            execution.reset(attempt_ev)
        self._executions[jr.node] = execution
        execution.start()
        return True

    def _compile_junction(self, jr: JunctionRuntime):
        """Compile a freshly-bound junction (tentpole of the junction
        compiler).  Disabled per system via ``compiled=False`` /
        ``compilation(False)``, and always under a schedule controller
        (``repro explore`` replays against interpreter event labels).
        Restarting an instance with the same arguments reuses the cached
        code — the generated module closes over no per-execution state.
        """
        if not self._compiled:
            return None
        if getattr(self.clock, "controller", None) is not None:
            return None
        key = (jr.node, tuple(sorted(jr.ast_params.items())))
        try:
            return self._compile_cache[key]
        except KeyError:
            pass
        except TypeError:  # unhashable argument value: compile uncached
            from ..compile import compile_junction_code

            return compile_junction_code(self, jr)
        from ..compile import compile_junction_code

        code = self._compile_cache[key] = compile_junction_code(self, jr)
        return code

    def _guard_holds(self, jr: JunctionRuntime) -> bool:
        # dirty-driven scheduling: a pure guard's verdict depends only
        # on the keys the table tracks for it, so while none of them
        # changed since the last evaluation the cached verdict stands.
        # Only the *evaluation* is skipped — attempts still fire and
        # pending updates still apply, so the observable event stream
        # (and telemetry) is identical with or without the cache.
        t = jr.table
        if t.guard_tracked and not t.guard_dirty and t.guard_cached is not None:
            return t.guard_cached
        code = jr.code
        if code is not None and code.guard_fn is not None:
            held = code.guard_fn(t.slots) is True
        else:
            guard = jr.guard if jr.guard is not None else TRUE
            held = (
                evaluate(
                    guard,
                    lambda k: pv if isinstance(pv := t.prop_value(k), bool) else UNKNOWN,
                    at=self.make_at_resolver(jr),
                    live=self.make_live_resolver(),
                )
                is True
            )
        if t.guard_tracked:
            t.guard_cached = held
            t.guard_dirty = False
        return held

    def execution_finished(self, jr: JunctionRuntime, execution: JunctionExecution) -> None:
        if execution.failure is not None:
            self.failures.append((self.clock.now, jr.node, execution.failure))
        self._executions.pop(jr.node, None)
        if jr.table._pending_n:
            self._attempt_soon(jr)

    # ------------------------------------------------------------------
    # Message routing
    # ------------------------------------------------------------------

    def _make_deliver(self, jr: JunctionRuntime):
        def deliver(msg: Message) -> None:
            tel = self.telemetry
            if msg.kind == "update":
                if not jr.instance.alive:
                    return  # no ack: sender retransmits / times out
                send_ev = tel.message_event(msg.msg_id)
                # retransmitted updates (lost ack) apply exactly once,
                # but every copy is (re-)acknowledged
                if msg.msg_id and not jr.table.note_msg_id(msg.msg_id):
                    self.network.count("dedup_suppressed", msg.kind)
                    tel.emit("dedup", jr.node, parent=send_ev, msg_id=msg.msg_id)
                else:
                    apply_ev = tel.emit(
                        "apply",
                        jr.node,
                        parent=send_ev,
                        key=msg.payload.key,
                        src=msg.src,
                        msg_id=msg.msg_id,
                    )
                    # the receive below may trigger an idle-update
                    # attempt; parent that attempt to the apply event
                    self._attempt_cause = apply_ev
                    try:
                        jr.table.receive(msg.payload)
                    finally:
                        self._attempt_cause = None
                self.network.send(
                    Message(src=jr.node, dst=msg.src, kind="ack", payload=msg.msg_id, msg_id=msg.msg_id)
                )
            elif msg.kind == "ack":
                tel.emit(
                    "ack",
                    jr.node,
                    parent=tel.message_event(msg.payload),
                    msg_id=msg.payload,
                )
                self.delivery.ack(msg.payload)
                ex = self._executions.get(jr.node)
                if ex is not None:
                    ex.on_ack(msg.payload)

        return deliver

    # ------------------------------------------------------------------
    # Target / formula resolution
    # ------------------------------------------------------------------

    def resolve_target(self, target: object, caller: JunctionRuntime) -> JunctionRuntime:
        """Resolve an assert/retract/write target to a junction."""
        if isinstance(target, str):
            target = A.ref(target)
        if not isinstance(target, A.Ref):
            raise DslFailure(f"{caller.node}: bad communication target {target!r}")
        parts = target.parts
        if parts[0] == "me":
            raise DslFailure(f"{caller.node}: unresolved special reference {target}")
        if target.is_simple:
            name = parts[0]
            # an index variable? dereference through the table
            if name in caller.idx_names:
                v = caller.table.get(name)
                if v is UNDEF:
                    raise UndefError(f"{caller.node}: index {name!r} is undef")
                return self.resolve_target(str(v), caller)
            if name in caller.params:
                v = caller.params[name]
                if isinstance(v, str):
                    return self.resolve_target(v, caller)
                raise DslFailure(f"{caller.node}: parameter {name!r} is not a junction reference")
            if name in self.instances:
                return self.instance(name).sole_junction()
            raise DslFailure(f"{caller.node}: unknown target {name!r}")
        inst_name, jname = parts[0], parts[1]
        if inst_name not in self.instances:
            raise DslFailure(f"{caller.node}: unknown instance {inst_name!r} in target {target}")
        return self.instance(inst_name).junction(jname)

    def make_at_resolver(self, caller: JunctionRuntime):
        """``gamma@F`` evaluation: read the remote junction's table if
        its instance is running, else UNKNOWN (ternary error)."""

        def at(junction_ref, body):
            try:
                jr = self.resolve_target(junction_ref, caller)
            except DslFailure:
                return UNKNOWN
            if not jr.instance.alive:
                return UNKNOWN
            return evaluate(
                body,
                lambda k: pv if isinstance(pv := jr.table.prop_value(k), bool) else UNKNOWN,
                at=self.make_at_resolver(jr),
                live=self.make_live_resolver(),
            )

        return at

    def make_live_resolver(self):
        def live(instance_ref):
            name = str(instance_ref) if not isinstance(instance_ref, A.Ref) else instance_ref.parts[0]
            if isinstance(instance_ref, A.Ref):
                name = instance_ref.parts[0]
            inst = self.instances.get(name)
            if inst is None:
                return UNKNOWN
            return inst.alive

        return live

    # ------------------------------------------------------------------
    # External (application-driven) interaction
    # ------------------------------------------------------------------

    def external_update(self, node: str, key: str, value: object, *, poke: bool = True) -> None:
        """Apply an externally-originated KV update (e.g. the embedding
        application asserting ``Req`` on a client request) and attempt a
        scheduling."""
        jr = self.junction(node)
        jr.external_inbound = True
        tel = self.telemetry
        if tel.enabled:
            ev = tel.emit("external_update", jr.node, key=key)
            self._attempt_cause = ev
            try:
                jr.table.receive(Update(key, value, "__external__"))
            finally:
                self._attempt_cause = None
        else:
            ev = None
            jr.table.receive(Update(key, value, "__external__"))
        if poke:
            self._attempt_soon(jr, cause=ev)

    def external_data(self, node: str, key: str, obj: object, schema: str | None = None) -> None:
        """Install externally-supplied named data (serialized)."""
        jr = self.junction(node)
        jr.external_inbound = True
        payload = self.serializer.encode(schema, obj)
        ev = self.telemetry.emit("external_data", jr.node, key=key)
        self._attempt_cause = ev
        try:
            jr.table.receive(Update(key=key, value=payload, src="__external__"))
        finally:
            self._attempt_cause = None

    def poke(self, node: str) -> None:
        """Attempt to schedule a junction."""
        jr = self.junction(node)
        jr.external_inbound = True
        self._attempt_soon(jr, cause=self.telemetry.emit("poke", jr.node))

    def read_state(self, node: str, key: str):
        """Read junction state from outside (tests/metrics)."""
        return self.junction(node).table.values.get(key, UNDEF)


def _to_runtime_value(v: object) -> object:
    """AST argument value → runtime value (str / float / tuple)."""
    if isinstance(v, A.Ref):
        return str(v)
    if isinstance(v, A.Num):
        return v.value
    if isinstance(v, A.SetLit):
        return tuple(_to_runtime_value(i) for i in v.items)
    return v
