"""The realtime execution engine: asyncio timers, real transports,
thread-pool host execution.

Where :class:`~repro.runtime.engine.SimEngine` advances a logical clock
event-by-event, :class:`RealtimeEngine` maps logical seconds onto the
wall clock of a private asyncio event loop:

* :class:`RealtimeClock` — ``wall = t0 + logical * time_scale``.  A
  ``time_scale`` below 1.0 compresses time (``0.05`` runs a 20-logical-
  second workload in about one wall second), which is how the parity
  suite keeps realtime runs cheap.  Timers become ``loop.call_at``
  callbacks; schedule labels/footprints are accepted and ignored (there
  is no controlled scheduling on a wall clock).
* transports — ``inproc`` reuses the shared
  :class:`~repro.runtime.engine.ClockTransport` (delivery is a scaled
  wall-clock timer); :class:`TcpTransport` pushes every message over a
  loopback TCP socket using libcompart-style length-prefixed frames
  (see :mod:`repro.runtime.wire`), exercising real serialization and
  kernel scheduling.
* :class:`ThreadPoolHostExecutor` — host blocks (``⌊H⌉{V}``) run on a
  worker thread while the strand stays blocked; KV writes are deferred
  into the :class:`~repro.runtime.host.HostContext` overlay and applied
  on the loop thread when the call completes, so table mutation remains
  single-threaded.

Determinism: the realtime engine makes **no** ordering guarantees
between timers that race within the scheduling jitter of the host OS.
Fault policy (loss, partitions, duplication) still lives in
:class:`~repro.runtime.channels.Network` and therefore still applies —
but the *sequence* of RNG draws can differ from the sim engine, so
seeded fault runs are only reproducible under ``engine="sim"``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
from typing import Callable

from ..core.errors import SerdeError
from .engine import Clock, ClockTransport, ExecutionEngine, Executor, Transport
from .wire import decode_message, encode_message, frame, read_frame

__all__ = [
    "RealtimeClock",
    "RealtimeEngine",
    "TcpTransport",
    "ThreadPoolHostExecutor",
]


class _WallHandle:
    """Timer handle with the :class:`~repro.runtime.sim.EventHandle`
    surface (``cancel`` / ``cancelled`` / ``time``)."""

    __slots__ = ("_clock", "_th", "_cancelled", "_fired", "time")

    def __init__(self, clock: "RealtimeClock", time: float):
        self._clock = clock
        self.time = time
        self._th: asyncio.TimerHandle | None = None
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._th is not None:
            self._th.cancel()
        self._clock._live.discard(self)

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class RealtimeClock(Clock):
    """Logical time riding on a private asyncio loop's wall clock."""

    def __init__(self, *, time_scale: float = 1.0):
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.time_scale = time_scale
        self.loop = asyncio.new_event_loop()
        self._t0 = self.loop.time()
        self._floor = 0.0  # run_until(T) guarantees now >= T afterwards
        self._live: set[_WallHandle] = set()
        #: engine hook: extra pending work (in-flight messages / host
        #: calls) consulted by the quiescence-driven :meth:`run`
        self.extra_pending: Callable[[], int] | None = None

    # -- time ---------------------------------------------------------------

    @property
    def now(self) -> float:
        return max((self.loop.time() - self._t0) / self.time_scale, self._floor)

    def _wall(self, logical: float) -> float:
        return self._t0 + logical * self.time_scale

    def rebase(self) -> None:
        """Re-anchor logical zero to the current wall instant, so wall
        time already spent (e.g. the cluster engine's worker spawn +
        handshake burst) stops counting against the logical horizon.
        Only valid while no timers are live — moving ``t0`` would shift
        their wall deadlines — so this is a no-op otherwise."""
        if self._live:
            return
        self._t0 = self.loop.time() - self._floor * self.time_scale

    # -- timers -------------------------------------------------------------

    def call_at(self, time, callback, priority=0, *, label=None, footprint=None):
        # priority / label / footprint are sim-engine schedule metadata;
        # on a wall clock co-enabled ordering is the OS scheduler's call
        h = _WallHandle(self, time)

        def fire() -> None:
            h._fired = True
            self._live.discard(h)
            if not h._cancelled:
                callback()

        # a past deadline fires on the next loop iteration (asyncio
        # clamps internally), matching the sim's call_at(now, ...) path
        h._th = self.loop.call_at(self._wall(time), fire)
        self._live.add(h)
        return h

    def call_after(self, delay, callback, priority=0, *, label=None, footprint=None):
        return self.call_at(self.now + max(delay, 0.0), callback, priority,
                            label=label, footprint=footprint)

    def pending_events(self) -> int:
        return len(self._live)

    # -- run loop -----------------------------------------------------------

    def _sleep(self, seconds: float) -> None:
        self.loop.run_until_complete(asyncio.sleep(seconds))

    def _next_due(self) -> float | None:
        return min((self._wall(h.time) for h in self._live), default=None)

    def _drain_due(self, limit: int = 100_000) -> None:
        """Run ready callbacks plus any timers already past their wall
        deadline — zero-delay cascades (pump → send → ack → pump) settle
        here instead of costing a poll interval each."""
        for _ in range(limit):
            self._sleep(0)
            due = self._next_due()
            if due is None or due > self.loop.time():
                return
        raise RuntimeError("realtime clock: zero-delay event cascade did not settle")

    def run_until(self, time: float) -> None:
        deadline = self._wall(time)
        self._drain_due()
        while self.loop.time() < deadline:
            # the loop fires intervening timers during the sleep itself
            self._sleep(min(deadline - self.loop.time(), 0.1))
            self._drain_due()
        self._floor = max(self._floor, time)

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until quiescent: no live timers, no in-flight messages,
        no running host calls.  Architectures with self-re-arming poll
        loops (e.g. failover reactivation probes) never quiesce — drive
        those with :meth:`run_until`."""
        idle = 0
        while True:
            self._drain_due()
            pending = len(self._live)
            if self.extra_pending is not None:
                pending += self.extra_pending()
            if pending == 0:
                # one extra settle round catches completions posted from
                # worker threads between the check and the sleep
                idle += 1
                if idle >= 2:
                    return
            else:
                idle = 0
            self._sleep(0.002)

    def close(self) -> None:
        if self.loop.is_closed():
            return
        for h in list(self._live):
            h.cancel()
        # cancel in-flight transport tasks and let everything settle
        # before the loop closes (destroying pending tasks warns)
        tasks = asyncio.all_tasks(self.loop)
        for t in tasks:
            t.cancel()
        if tasks:
            self.loop.run_until_complete(
                asyncio.gather(*tasks, return_exceptions=True)
            )
        self._sleep(0)
        self.loop.close()


class ThreadPoolHostExecutor(Executor):
    """Host blocks on worker threads, completions on the loop thread."""

    inline = False

    def __init__(self, clock: RealtimeClock, max_workers: int | None = None):
        self._clock = clock
        self.in_flight = 0
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max_workers or min(8, (os.cpu_count() or 1) + 2),
            thread_name_prefix="csaw-host",
        )

    def invoke(self, fn, ctx, done) -> None:
        self.in_flight += 1
        loop = self._clock.loop

        def work() -> None:
            try:
                fn(ctx)
                exc: BaseException | None = None
            except BaseException as e:  # noqa: BLE001 - relayed to the strand
                exc = e
            loop.call_soon_threadsafe(self._complete, done, exc)

        self._pool.submit(work)

    def _complete(self, done, exc) -> None:
        self.in_flight -= 1
        done(exc)

    def close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)


class TcpTransport(Transport):
    """Loopback TCP delivery with length-prefixed frames.

    ``bind`` opens a listening socket on an ephemeral port; the first
    transmit lazily connects a single client stream to it.  Latency is
    modelled by the clock (scaled), then the frame crosses the kernel:
    ``deliver → timer → frame → socket → reader → network.dispatch``.
    ``in_flight`` covers the whole span, so quiescence accounting still
    holds while bytes sit in socket buffers.
    """

    inproc = False

    def __init__(self):
        super().__init__()
        self.port: int | None = None
        self._server: asyncio.base_events.Server | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._conn_lock: asyncio.Lock | None = None

    def bind(self, network, clock) -> None:
        super().bind(network, clock)
        loop = clock.loop
        self._server = loop.run_until_complete(
            asyncio.start_server(self._serve, "127.0.0.1", 0)
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._conn_lock = asyncio.Lock()

    def deliver(self, msg, latency, dispatch, *, label=None, footprint=None):
        # dispatch is ignored on purpose: the receiving side of the
        # socket re-enters through network.dispatch, which re-resolves
        # liveness/partition state at arrival time exactly as the
        # in-process path does
        self.in_flight += 1
        self.clock.call_after(latency, lambda m=msg: self._transmit(m))

    def _transmit(self, msg) -> None:
        # timer context — the loop is running, so tasks may be spawned
        self.clock.loop.create_task(self._send(encode_message(msg)))

    async def _send(self, body: bytes) -> None:
        try:
            async with self._conn_lock:
                if self._writer is None:
                    _, self._writer = await asyncio.open_connection("127.0.0.1", self.port)
                self._writer.write(frame(body))
                await self._writer.drain()
        except (ConnectionError, OSError):
            self.in_flight -= 1  # transport torn down mid-send

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        try:
            while True:
                body = await read_frame(reader)
                msg = decode_message(body)
                self.in_flight -= 1
                self.network.dispatch(msg)
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer went away: connection drained or reset
        except SerdeError:
            # corrupt prefix or garbage body: reject the stream — a
            # framing error poisons everything after it on the
            # connection, so the only clean recovery is to drop it and
            # let sender-side retransmission re-establish traffic
            self.network.count("wire_rejected")
        except asyncio.CancelledError:
            pass  # engine close() cancels the reader mid-await
        finally:
            writer.close()

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        if self._server is not None:
            self._server.close()
            self._server = None


class RealtimeEngine(ExecutionEngine):
    """asyncio wall-clock backend: parallel host work, real transports.

    ``transport`` selects ``"inproc"`` (scaled timers, no wire format)
    or ``"tcp"`` (loopback sockets + serde frames).  ``time_scale``
    compresses logical time onto the wall clock; ``max_workers`` sizes
    the host-block thread pool.
    """

    supports_controlled_scheduling = False

    def __init__(self, *, time_scale: float = 1.0, transport: str = "inproc",
                 max_workers: int | None = None):
        if transport not in ("inproc", "tcp"):
            raise ValueError(f"transport must be 'inproc' or 'tcp', got {transport!r}")
        clock = RealtimeClock(time_scale=time_scale)
        tr: Transport = TcpTransport() if transport == "tcp" else ClockTransport()
        ex = ThreadPoolHostExecutor(clock, max_workers)
        super().__init__(clock, tr, ex)
        self.name = "realtime-tcp" if transport == "tcp" else "realtime"
        clock.extra_pending = lambda: tr.in_flight + ex.in_flight
        self._closed = False

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.transport.close()
        self.executor.close()
        self.clock.close()
