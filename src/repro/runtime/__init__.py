"""The C-Saw runtime: a deterministic libcompart stand-in.

Public surface::

    from repro.runtime import System, FaultPlan

    system = System(compiled_program, latency=0.05, seed=1)
    system.bind_host("Front", "Choose", choose_fn)
    system.bind_app("Back", lambda inst: BackendApp())
    system.bind_state("Back", save=..., restore=...)
    system.start(t=5.0)
    system.run_until(120.0)
"""

from .channels import LinkConfig, Message, Network
from .chaos import ChaosConfig, ChaosEngine, SoakHarness
from .cluster import ClusterEngine
from .delivery import DeliveryPolicy, LinkHealth, ReliableDelivery
from .engine import (
    EngineSpec,
    ExecutionEngine,
    SimEngine,
    create_engine,
    default_engine,
)
from .faults import FaultPlan
from .host import HostContext
from .instance import InstanceRuntime, InstanceTypeRuntime, JunctionRuntime, StateProviders
from .interpreter import JunctionExecution
from .kvtable import KVTable, UNDEF, Update
from .realtime import RealtimeEngine
from .sim import Simulator
from .supervisor import BackoffPolicy
from .system import System

__all__ = [
    "BackoffPolicy",
    "ChaosConfig",
    "ChaosEngine",
    "ClusterEngine",
    "DeliveryPolicy",
    "EngineSpec",
    "ExecutionEngine",
    "FaultPlan",
    "HostContext",
    "LinkHealth",
    "RealtimeEngine",
    "ReliableDelivery",
    "SimEngine",
    "SoakHarness",
    "create_engine",
    "default_engine",
    "InstanceRuntime",
    "InstanceTypeRuntime",
    "JunctionExecution",
    "JunctionRuntime",
    "KVTable",
    "LinkConfig",
    "Message",
    "Network",
    "Simulator",
    "StateProviders",
    "System",
    "UNDEF",
    "Update",
]
