"""Deterministic discrete-event simulation core.

The C-Saw runtime in this reproduction executes on simulated time: all
latencies (network hops, host service times, timeouts) are scheduled on
a single event queue.  Determinism comes from (time, priority, seq)
ordering with a monotonically increasing sequence number breaking ties
in insertion order.

This replaces the paper's libcompart + real OS IPC: experiments become
reproducible and laptop-scale while preserving the asynchronous
message-passing semantics the DSL is defined against.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _Event:
    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)


class EventHandle:
    """Handle returned by :meth:`Simulator.call_at` for cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Callbacks scheduled at the same instant run in (priority, insertion)
    order.  Lower priority numbers run first; the default priority is 0.
    """

    def __init__(self):
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def call_at(self, time: float, callback: Callable[[], None], priority: int = 0) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        ev = _Event(time, priority, next(self._seq), callback)
        heapq.heappush(self._queue, ev)
        return EventHandle(ev)

    def call_after(self, delay: float, callback: Callable[[], None], priority: int = 0) -> EventHandle:
        """Schedule ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError("negative delay")
        return self.call_at(self._now + delay, callback, priority)

    def peek_time(self) -> float | None:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns False if the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self._now = ev.time
            ev.callback()
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run events up to and including simulated ``time``."""
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > time:
                break
            self.step()
        self._now = max(self._now, time)

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains (or ``max_events``)."""
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events (livelock?)")

    def pending_events(self) -> int:
        """Number of not-yet-cancelled queued events."""
        return sum(1 for e in self._queue if not e.cancelled)
