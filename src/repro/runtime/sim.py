"""Deterministic discrete-event simulation core.

The C-Saw runtime in this reproduction executes on simulated time: all
latencies (network hops, host service times, timeouts) are scheduled on
a single event queue.  Determinism comes from (time, priority, seq)
ordering with a monotonically increasing sequence number breaking ties
in insertion order.

This replaces the paper's libcompart + real OS IPC: experiments become
reproducible and laptop-scale while preserving the asynchronous
message-passing semantics the DSL is defined against.

Cancellation is *lazy*: :meth:`EventHandle.cancel` only marks the heap
entry, which is discarded when it surfaces.  A workload that arms and
cancels many timers (the reliable-delivery layer cancels a
retransmission timer per acknowledged send) would otherwise grow the
heap with dead entries faster than they drain — far-future timeouts sit
near the bottom of the heap for their whole nominal duration.  The
simulator therefore counts live cancelled entries and *compacts* the
heap (filters + re-heapifies, O(n)) once they outnumber the real ones,
bounding memory at ~2x the live event count while keeping ``cancel``
O(1).

Controlled-scheduler mode
-------------------------

Insertion order is only *one* linearization of the architecture's
concurrency: events scheduled for the same ``(time, priority)`` are
logically co-enabled (junction attempts after a start, message
deliveries over equal-latency links, zero-delay wake-ups).  Setting
:attr:`Simulator.controller` exposes each such co-enabled set as a
*choice point*: the controller picks which event fires first, and the
rest stay queued.  The schedule-exploration harness
(:mod:`repro.explore`) drives this to enumerate interleavings; with no
controller the fast path is untouched and ``(priority, seq)`` order
applies, so normal runs stay byte-identical to previous releases.

Scheduling sites may attach a ``label`` (a stable human-readable
identity used by schedule recording/replay) and a ``footprint``
(a :class:`repro.semantics.commute.Footprint` declaring the state the
callback touches, used by partial-order reduction).
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

#: below this queue size compaction is pointless (the dead entries are
#: about to surface anyway); keeps tiny simulations on the fast path
_COMPACT_MIN = 64


@dataclass(order=True)
class _Event:
    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)
    in_heap: bool = field(compare=False, default=True)
    #: stable identity for schedule recording/replay (None = anonymous)
    label: str | None = field(compare=False, default=None)
    #: state touched by the callback (repro.semantics.commute.Footprint);
    #: None = unknown, treated as interfering with everything
    footprint: object = field(compare=False, default=None)


class ScheduleController:
    """Decides which of a co-enabled event set fires first.

    ``choose`` receives the simulated time and the co-enabled events in
    their default ``(priority, seq)`` order and returns the index of
    the event to run; the others stay queued and re-surface at the next
    step.  The base class always picks index 0, which reproduces the
    uncontrolled order exactly.
    """

    def choose(self, time: float, events: list[_Event]) -> int:
        return 0


#: factory consulted by ``Simulator.__init__`` — lets the exploration
#: harness attach a controller to simulators it cannot reach directly
#: (architecture wrappers build and *start* their System inside
#: ``__init__``, before a caller could set ``sim.controller``)
_controller_factory: Callable[[], ScheduleController] | None = None


@contextlib.contextmanager
def use_controller(factory: Callable[[], ScheduleController]):
    """Attach ``factory()``'s controller to every :class:`Simulator`
    constructed inside the ``with`` block."""
    global _controller_factory
    prev = _controller_factory
    _controller_factory = factory
    try:
        yield
    finally:
        _controller_factory = prev


class EventHandle:
    """Handle returned by :meth:`Simulator.call_at` for cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator"):
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        ev = self._event
        if not ev.cancelled:
            ev.cancelled = True
            # an already-executed event (cancel raced the firing) is no
            # longer in the heap and must not skew the dead-entry count
            if ev.in_heap:
                self._sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Callbacks scheduled at the same instant run in (priority, insertion)
    order.  Lower priority numbers run first; the default priority is 0.
    """

    def __init__(self):
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        #: cancelled events still sitting in the heap
        self._cancelled = 0
        #: optional ScheduleController; when set, co-enabled events
        #: (same time and priority) become explicit choice points
        self.controller: ScheduleController | None = (
            _controller_factory() if _controller_factory is not None else None
        )

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def call_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        *,
        label: str | None = None,
        footprint: object = None,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        ev = _Event(time, priority, next(self._seq), callback, label=label, footprint=footprint)
        heapq.heappush(self._queue, ev)
        return EventHandle(ev, self)

    def call_after(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        *,
        label: str | None = None,
        footprint: object = None,
    ) -> EventHandle:
        """Schedule ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError("negative delay")
        return self.call_at(self._now + delay, callback, priority, label=label, footprint=footprint)

    # -- lazy-cancellation bookkeeping --------------------------------------

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue) and len(self._queue) > _COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify — O(live events)."""
        live = []
        for e in self._queue:
            if e.cancelled:
                e.in_heap = False
            else:
                live.append(e)
        self._queue = live
        heapq.heapify(self._queue)
        self._cancelled = 0

    def peek_time(self) -> float | None:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue).in_heap = False
            self._cancelled -= 1
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns False if the queue is empty."""
        if self.controller is not None:
            return self._step_controlled()
        while self._queue:
            ev = heapq.heappop(self._queue)
            ev.in_heap = False
            if ev.cancelled:
                self._cancelled -= 1
                continue
            self._now = ev.time
            ev.callback()
            return True
        return False

    def _step_controlled(self) -> bool:
        """One step in controlled mode: gather the co-enabled set (all
        live events sharing the minimal ``(time, priority)``), let the
        controller pick one, and re-queue the rest untouched.  Priority
        bounds the set because priorities encode runtime-*internal*
        ordering constraints (strand pumps run before deliveries), not
        logical concurrency."""
        if self.peek_time() is None:  # also drains cancelled heads
            return False
        group: list[_Event] = []
        t0 = p0 = None
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue).in_heap = False
                self._cancelled -= 1
                continue
            if t0 is None:
                t0, p0 = head.time, head.priority
            elif head.time != t0 or head.priority != p0:
                break
            group.append(heapq.heappop(self._queue))
            group[-1].in_heap = False
        idx = self.controller.choose(t0, group) if len(group) > 1 else 0
        ev = group.pop(idx)
        for e in group:  # unchosen events keep their seq → stable order
            e.in_heap = True
            heapq.heappush(self._queue, e)
        self._now = t0
        ev.callback()
        return True

    def run_until(self, time: float) -> None:
        """Run events up to and including simulated ``time``."""
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > time:
                break
            self.step()
        self._now = max(self._now, time)

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains (or ``max_events``)."""
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events (livelock?)")

    def pending_events(self) -> int:
        """Number of not-yet-cancelled queued events (O(1))."""
        return len(self._queue) - self._cancelled

    def queue_size(self) -> int:
        """Raw heap size including not-yet-reclaimed cancelled entries
        (observability for the compaction behaviour)."""
        return len(self._queue)
