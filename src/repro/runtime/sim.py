"""Deterministic discrete-event simulation core.

The C-Saw runtime in this reproduction executes on simulated time: all
latencies (network hops, host service times, timeouts) are scheduled on
a single event queue.  Determinism comes from (time, priority, seq)
ordering with a monotonically increasing sequence number breaking ties
in insertion order.

This replaces the paper's libcompart + real OS IPC: experiments become
reproducible and laptop-scale while preserving the asynchronous
message-passing semantics the DSL is defined against.

Cancellation is *lazy*: :meth:`EventHandle.cancel` only marks the heap
entry, which is discarded when it surfaces.  A workload that arms and
cancels many timers (the reliable-delivery layer cancels a
retransmission timer per acknowledged send) would otherwise grow the
heap with dead entries faster than they drain — far-future timeouts sit
near the bottom of the heap for their whole nominal duration.  The
simulator therefore counts live cancelled entries and *compacts* the
heap (filters + re-heapifies, O(n)) once they outnumber the real ones,
bounding memory at ~2x the live event count while keeping ``cancel``
O(1).

Controlled-scheduler mode
-------------------------

Insertion order is only *one* linearization of the architecture's
concurrency: events scheduled for the same ``(time, priority)`` are
logically co-enabled (junction attempts after a start, message
deliveries over equal-latency links, zero-delay wake-ups).  Setting
:attr:`Simulator.controller` exposes each such co-enabled set as a
*choice point*: the controller picks which event fires first, and the
rest stay queued.  The schedule-exploration harness
(:mod:`repro.explore`) drives this to enumerate interleavings; with no
controller the fast path is untouched and ``(priority, seq)`` order
applies, so normal runs stay byte-identical to previous releases.

Scheduling sites may attach a ``label`` (a stable human-readable
identity used by schedule recording/replay) and a ``footprint``
(a :class:`repro.semantics.commute.Footprint` declaring the state the
callback touches, used by partial-order reduction).
"""

from __future__ import annotations

import contextlib
import heapq
import itertools
from collections import deque
from typing import Callable

#: below this queue size compaction is pointless (the dead entries are
#: about to surface anyway); keeps tiny simulations on the fast path
_COMPACT_MIN = 64


class _Event:
    """A heap entry (``__slots__``: millions of these are allocated and
    compared per run — heap sift comparisons only need ``__lt__`` on the
    ``(time, priority, seq)`` order key)."""

    __slots__ = (
        "time", "priority", "seq", "callback",
        "cancelled", "in_heap", "in_due", "label", "footprint",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], None],
        label: str | None = None,
        footprint: object = None,
    ):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.in_heap = True
        #: parked in the zero-delay FIFO lane instead of the heap
        self.in_due = False
        #: stable identity for schedule recording/replay (None = anonymous)
        self.label = label
        #: state touched by the callback (repro.semantics.commute.Footprint);
        #: None = unknown, treated as interfering with everything
        self.footprint = footprint

    def __lt__(self, other: "_Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq


class ScheduleController:
    """Decides which of a co-enabled event set fires first.

    ``choose`` receives the simulated time and the co-enabled events in
    their default ``(priority, seq)`` order and returns the index of
    the event to run; the others stay queued and re-surface at the next
    step.  The base class always picks index 0, which reproduces the
    uncontrolled order exactly.
    """

    def choose(self, time: float, events: list[_Event]) -> int:
        return 0


#: factory consulted by ``Simulator.__init__`` — lets the exploration
#: harness attach a controller to simulators it cannot reach directly
#: (architecture wrappers build and *start* their System inside
#: ``__init__``, before a caller could set ``sim.controller``)
_controller_factory: Callable[[], ScheduleController] | None = None


@contextlib.contextmanager
def use_controller(factory: Callable[[], ScheduleController]):
    """Attach ``factory()``'s controller to every :class:`Simulator`
    constructed inside the ``with`` block."""
    global _controller_factory
    prev = _controller_factory
    _controller_factory = factory
    try:
        yield
    finally:
        _controller_factory = prev


class EventHandle:
    """Handle returned by :meth:`Simulator.call_at` for cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator"):
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        ev = self._event
        if not ev.cancelled:
            ev.cancelled = True
            # an already-executed event (cancel raced the firing) is no
            # longer in the heap and must not skew the dead-entry count
            if ev.in_heap:
                self._sim._note_cancelled()
            elif ev.in_due:
                self._sim._due_cancelled += 1

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Callbacks scheduled at the same instant run in (priority, insertion)
    order.  Lower priority numbers run first; the default priority is 0.
    """

    def __init__(self):
        self._queue: list[_Event] = []
        #: zero-delay FIFO lane: events scheduled at the *current* time
        #: with default priority skip the heap entirely.  Strand pumps,
        #: junction attempts and same-instant wake-ups dominate event
        #: traffic, and a deque append/popleft is far cheaper than a
        #: heap sift; total (time, priority, seq) order is preserved by
        #: merging the lane head with the heap head when draining.
        self._due: deque[_Event] = deque()
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        #: cancelled events still sitting in the heap
        self._cancelled = 0
        #: cancelled events still sitting in the FIFO lane
        self._due_cancelled = 0
        #: optional ScheduleController; when set, co-enabled events
        #: (same time and priority) become explicit choice points
        self.controller: ScheduleController | None = (
            _controller_factory() if _controller_factory is not None else None
        )

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def call_at(
        self,
        time: float,
        callback: Callable[[], None],
        priority: int = 0,
        *,
        label: str | None = None,
        footprint: object = None,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        ev = _Event(time, priority, next(self._seq), callback, label, footprint)
        if time == self._now and priority == 0 and self.controller is None:
            # zero-delay fast lane: same total order (the lane is sorted
            # by construction — appends carry nondecreasing time and
            # increasing seq at the default priority), no heap sift
            ev.in_heap = False
            ev.in_due = True
            self._due.append(ev)
        else:
            heapq.heappush(self._queue, ev)
        return EventHandle(ev, self)

    def call_after(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
        *,
        label: str | None = None,
        footprint: object = None,
    ) -> EventHandle:
        """Schedule ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError("negative delay")
        if delay == 0.0 and priority == 0 and self.controller is None:
            # inline the zero-delay lane (call_after(0, ...) is the
            # hottest scheduling call: pumps, attempts, wake-ups)
            ev = _Event(self._now, 0, next(self._seq), callback, label, footprint)
            ev.in_heap = False
            ev.in_due = True
            self._due.append(ev)
            return EventHandle(ev, self)
        return self.call_at(self._now + delay, callback, priority, label=label, footprint=footprint)

    def post(
        self,
        callback: Callable[[], None],
        *,
        label: str | None = None,
        footprint: object = None,
    ) -> None:
        """Fire-and-forget ``call_after(0, ...)`` — no EventHandle."""
        if self.controller is None:
            ev = _Event(self._now, 0, next(self._seq), callback, label, footprint)
            ev.in_heap = False
            ev.in_due = True
            self._due.append(ev)
        else:
            heapq.heappush(
                self._queue,
                _Event(self._now, 0, next(self._seq), callback, label, footprint),
            )

    # -- lazy-cancellation bookkeeping --------------------------------------

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue) and len(self._queue) > _COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify — O(live events)."""
        live = []
        for e in self._queue:
            if e.cancelled:
                e.in_heap = False
            else:
                live.append(e)
        self._queue = live
        heapq.heapify(self._queue)
        self._cancelled = 0

    def _flush_due(self) -> None:
        """Migrate the FIFO lane into the heap (seq order is preserved,
        so the total order is unchanged).  Only needed when a controller
        is attached after zero-delay events were parked in the lane."""
        while self._due:
            ev = self._due.popleft()
            ev.in_due = False
            if ev.cancelled:
                self._due_cancelled -= 1
                continue
            ev.in_heap = True
            heapq.heappush(self._queue, ev)

    def _next_event(self) -> _Event | None:
        """Pop the globally-next live event from the lane/heap merge."""
        due, queue = self._due, self._queue
        while due and due[0].cancelled:
            due.popleft().in_due = False
            self._due_cancelled -= 1
        while queue and queue[0].cancelled:
            heapq.heappop(queue).in_heap = False
            self._cancelled -= 1
        if due:
            if queue and queue[0] < due[0]:
                ev = heapq.heappop(queue)
                ev.in_heap = False
            else:
                ev = due.popleft()
                ev.in_due = False
            return ev
        if queue:
            ev = heapq.heappop(queue)
            ev.in_heap = False
            return ev
        return None

    def peek_time(self) -> float | None:
        """Time of the next pending (non-cancelled) event, or None."""
        due, queue = self._due, self._queue
        while due and due[0].cancelled:
            due.popleft().in_due = False
            self._due_cancelled -= 1
        while queue and queue[0].cancelled:
            heapq.heappop(queue).in_heap = False
            self._cancelled -= 1
        if due and queue:
            return min(due[0].time, queue[0].time)
        if due:
            return due[0].time
        return queue[0].time if queue else None

    def step(self) -> bool:
        """Run the next event.  Returns False if the queue is empty."""
        if self.controller is not None:
            return self._step_controlled()
        ev = self._next_event()
        if ev is None:
            return False
        self._now = ev.time
        ev.callback()
        return True

    def _step_controlled(self) -> bool:
        """One step in controlled mode: gather the co-enabled set (all
        live events sharing the minimal ``(time, priority)``), let the
        controller pick one, and re-queue the rest untouched.  Priority
        bounds the set because priorities encode runtime-*internal*
        ordering constraints (strand pumps run before deliveries), not
        logical concurrency."""
        self._flush_due()  # controller attached mid-run: merge the lane
        if self.peek_time() is None:  # also drains cancelled heads
            return False
        group: list[_Event] = []
        t0 = p0 = None
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue).in_heap = False
                self._cancelled -= 1
                continue
            if t0 is None:
                t0, p0 = head.time, head.priority
            elif head.time != t0 or head.priority != p0:
                break
            group.append(heapq.heappop(self._queue))
            group[-1].in_heap = False
        idx = self.controller.choose(t0, group) if len(group) > 1 else 0
        ev = group.pop(idx)
        for e in group:  # unchosen events keep their seq → stable order
            e.in_heap = True
            heapq.heappush(self._queue, e)
        self._now = t0
        ev.callback()
        return True

    def run_until(self, time: float) -> None:
        """Run events up to and including simulated ``time``.

        The uncontrolled path batch-drains the heap inline rather than
        going through :meth:`step` per event — at millions of events the
        per-event call and re-peek overhead dominates the loop.
        """
        if self.controller is not None:
            while True:
                nxt = self.peek_time()
                if nxt is None or nxt > time:
                    break
                self._step_controlled()
            self._now = max(self._now, time)
            return
        pop = heapq.heappop
        due = self._due
        while True:
            # re-read the attribute: a callback (or cancellation burst)
            # may have run _compact(), which replaces the list object
            queue = self._queue
            if due:
                ev = due[0]
                if ev.cancelled:
                    due.popleft().in_due = False
                    self._due_cancelled -= 1
                    continue
                # a heap event may still order first at the same instant
                # (e.g. a higher-priority pump)
                if queue:
                    head = queue[0]
                    if head.cancelled:
                        pop(queue).in_heap = False
                        self._cancelled -= 1
                        continue
                    # inlined ``head < ev`` — this compare runs once
                    # per drained event and the heap head is usually a
                    # far-future timeout, so the first time test
                    # settles it without a method call
                    ht = head.time
                    et = ev.time
                    if ht < et or (
                        ht == et
                        and (
                            head.priority < ev.priority
                            or (head.priority == ev.priority and head.seq < ev.seq)
                        )
                    ):
                        if ht > time:
                            break
                        pop(queue)
                        head.in_heap = False
                        self._now = ht
                        head.callback()
                        continue
                if ev.time > time:
                    break
                due.popleft()
                ev.in_due = False
                self._now = ev.time
                ev.callback()
                continue
            if not queue:
                break
            ev = queue[0]
            if ev.cancelled:
                pop(queue).in_heap = False
                self._cancelled -= 1
                continue
            if ev.time > time:
                break
            pop(queue)
            ev.in_heap = False
            self._now = ev.time
            ev.callback()
        self._now = max(self._now, time)

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains (or ``max_events``).

        Batch-drained like :meth:`run_until`; only executed (non-
        cancelled) events count against ``max_events``.
        """
        count = 0
        if self.controller is not None:
            while self._step_controlled():
                count += 1
                if count >= max_events:
                    raise RuntimeError(
                        f"simulation exceeded {max_events} events (livelock?)"
                    )
            return
        while True:
            ev = self._next_event()
            if ev is None:
                return
            self._now = ev.time
            ev.callback()
            count += 1
            if count >= max_events:
                raise RuntimeError(
                    f"simulation exceeded {max_events} events (livelock?)"
                )

    def pending_events(self) -> int:
        """Number of not-yet-cancelled queued events (O(1))."""
        return (
            len(self._queue) - self._cancelled
            + len(self._due) - self._due_cancelled
        )

    def queue_size(self) -> int:
        """Raw queue size (heap + zero-delay lane) including
        not-yet-reclaimed cancelled entries (observability for the
        compaction behaviour)."""
        return len(self._queue) + len(self._due)
