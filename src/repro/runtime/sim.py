"""Deterministic discrete-event simulation core.

The C-Saw runtime in this reproduction executes on simulated time: all
latencies (network hops, host service times, timeouts) are scheduled on
a single event queue.  Determinism comes from (time, priority, seq)
ordering with a monotonically increasing sequence number breaking ties
in insertion order.

This replaces the paper's libcompart + real OS IPC: experiments become
reproducible and laptop-scale while preserving the asynchronous
message-passing semantics the DSL is defined against.

Cancellation is *lazy*: :meth:`EventHandle.cancel` only marks the heap
entry, which is discarded when it surfaces.  A workload that arms and
cancels many timers (the reliable-delivery layer cancels a
retransmission timer per acknowledged send) would otherwise grow the
heap with dead entries faster than they drain — far-future timeouts sit
near the bottom of the heap for their whole nominal duration.  The
simulator therefore counts live cancelled entries and *compacts* the
heap (filters + re-heapifies, O(n)) once they outnumber the real ones,
bounding memory at ~2x the live event count while keeping ``cancel``
O(1).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

#: below this queue size compaction is pointless (the dead entries are
#: about to surface anyway); keeps tiny simulations on the fast path
_COMPACT_MIN = 64


@dataclass(order=True)
class _Event:
    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)
    in_heap: bool = field(compare=False, default=True)


class EventHandle:
    """Handle returned by :meth:`Simulator.call_at` for cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator"):
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        ev = self._event
        if not ev.cancelled:
            ev.cancelled = True
            # an already-executed event (cancel raced the firing) is no
            # longer in the heap and must not skew the dead-entry count
            if ev.in_heap:
                self._sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class Simulator:
    """A minimal, deterministic discrete-event simulator.

    Callbacks scheduled at the same instant run in (priority, insertion)
    order.  Lower priority numbers run first; the default priority is 0.
    """

    def __init__(self):
        self._queue: list[_Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        #: cancelled events still sitting in the heap
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    def call_at(self, time: float, callback: Callable[[], None], priority: int = 0) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        ev = _Event(time, priority, next(self._seq), callback)
        heapq.heappush(self._queue, ev)
        return EventHandle(ev, self)

    def call_after(self, delay: float, callback: Callable[[], None], priority: int = 0) -> EventHandle:
        """Schedule ``callback`` after ``delay`` simulated time units."""
        if delay < 0:
            raise ValueError("negative delay")
        return self.call_at(self._now + delay, callback, priority)

    # -- lazy-cancellation bookkeeping --------------------------------------

    def _note_cancelled(self) -> None:
        self._cancelled += 1
        if self._cancelled * 2 > len(self._queue) and len(self._queue) > _COMPACT_MIN:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify — O(live events)."""
        live = []
        for e in self._queue:
            if e.cancelled:
                e.in_heap = False
            else:
                live.append(e)
        self._queue = live
        heapq.heapify(self._queue)
        self._cancelled = 0

    def peek_time(self) -> float | None:
        """Time of the next pending (non-cancelled) event, or None."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue).in_heap = False
            self._cancelled -= 1
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns False if the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            ev.in_heap = False
            if ev.cancelled:
                self._cancelled -= 1
                continue
            self._now = ev.time
            ev.callback()
            return True
        return False

    def run_until(self, time: float) -> None:
        """Run events up to and including simulated ``time``."""
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > time:
                break
            self.step()
        self._now = max(self._now, time)

    def run(self, max_events: int = 10_000_000) -> None:
        """Run until the event queue drains (or ``max_events``)."""
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise RuntimeError(f"simulation exceeded {max_events} events (livelock?)")

    def pending_events(self) -> int:
        """Number of not-yet-cancelled queued events (O(1))."""
        return len(self._queue) - self._cancelled

    def queue_size(self) -> int:
        """Raw heap size including not-yet-reclaimed cancelled entries
        (observability for the compaction behaviour)."""
        return len(self._queue)
