"""The pluggable execution engine: Clock / Transport / Executor.

The runtime used to be welded to the deterministic discrete-event
:class:`~repro.runtime.sim.Simulator`: ``system.py`` built one,
``channels.py`` scheduled deliveries on it, ``delivery.py`` armed
retransmission timers on it, and the interpreter pumped strands through
it.  That coupling is factored into three backend interfaces here —
mirroring how the paper's prototype separates libcompart's channel layer
from the scheduling of component code:

* :class:`Clock` — ``now`` plus timer scheduling (``call_at`` /
  ``call_after`` returning cancellable handles) and the run loop
  (``run_until`` / ``run``).  The deterministic ``Simulator`` *is* a
  clock; the realtime backend maps logical seconds onto wall-clock
  asyncio timers.
* :class:`Transport` — carries a :class:`~repro.runtime.channels.Message`
  from the sender to the receiving junction's dispatch function after a
  link latency.  Loss, partitions, duplication and reordering stay in
  :class:`~repro.runtime.channels.Network` (they are *policy*, shared by
  every backend — which is what keeps chaos schedules engine-portable);
  the transport is only the *mechanism* that moves the bytes.
* :class:`Executor` — how host blocks (``⌊H⌉{V}``) run.  The inline
  executor calls them synchronously on the runtime thread (the sim
  behaviour); the realtime engine substitutes a thread pool and wakes
  the strand when the call returns.

An :class:`ExecutionEngine` bundles one of each.  :class:`SimEngine`
wraps the existing simulator so the default behaviour — including
byte-identical telemetry, chaos schedules and ``repro explore``
replay — is unchanged; :class:`~repro.runtime.realtime.RealtimeEngine`
(see :mod:`repro.runtime.realtime`) runs the same architectures on
wall-clock time.

Engine selection::

    System(program, engine="realtime")          # by name
    System(program, engine=RealtimeEngine())    # by instance
    with default_engine(lambda: RealtimeEngine()):
        FailoverRedis(...)                      # wrappers that build their
                                                # own System inside __init__

Controlled scheduling (the exploration harness) is an *engine
capability*: only engines with ``supports_controlled_scheduling`` can
honour a :func:`use_controller` scope, and :class:`System` refuses the
combination otherwise instead of silently ignoring the controller.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import TYPE_CHECKING, Callable

from .sim import EventHandle, ScheduleController, Simulator, use_controller

if TYPE_CHECKING:  # pragma: no cover
    from .channels import Message, Network
    from .system import System

__all__ = [
    "Clock",
    "ClockTransport",
    "EngineSpec",
    "ExecutionEngine",
    "Executor",
    "InlineExecutor",
    "ScheduleController",
    "SimEngine",
    "Transport",
    "controller_pending",
    "create_engine",
    "default_engine",
    "use_controller",
]


class Clock:
    """Timer scheduling + the run loop.

    The deterministic :class:`~repro.runtime.sim.Simulator` satisfies
    this interface natively (this class documents the contract; engines
    may duck-type).  ``label`` and ``footprint`` are schedule-replay
    metadata — backends without controlled scheduling ignore them.
    """

    now: float = 0.0

    def call_at(self, time: float, callback: Callable[[], None], priority: int = 0,
                *, label: str | None = None, footprint: object = None) -> EventHandle:
        raise NotImplementedError

    def call_after(self, delay: float, callback: Callable[[], None], priority: int = 0,
                   *, label: str | None = None, footprint: object = None) -> EventHandle:
        raise NotImplementedError

    def post(self, callback: Callable[[], None],
             *, label: str | None = None, footprint: object = None) -> None:
        """Fire-and-forget zero-delay schedule (no cancellation handle).
        Semantically ``call_after(0, callback)``; hot paths that never
        cancel (junction attempts, strand pumps) use it to skip the
        handle allocation.  The default delegates to :meth:`call_after`."""
        self.call_after(0.0, callback, label=label, footprint=footprint)

    def run_until(self, time: float) -> None:
        raise NotImplementedError

    def run(self, max_events: int = 10_000_000) -> None:
        raise NotImplementedError

    def pending_events(self) -> int:
        raise NotImplementedError


class Transport:
    """Moves messages between junction endpoints.

    :meth:`deliver` receives the message, the link latency the
    :class:`~repro.runtime.channels.Network` already resolved (loss and
    partition policy have been applied by the caller), and the network's
    ``dispatch`` function that performs receiver-side processing.  The
    transport's job is to invoke ``dispatch(msg)`` on the engine's
    runtime context after the latency has elapsed.

    ``in_flight`` counts messages handed to the transport whose dispatch
    has not run yet — part of the engine's quiescence accounting.
    """

    #: dispatch happens in-process on the runtime thread (no wire format)
    inproc = True

    def __init__(self):
        self.in_flight = 0

    def bind(self, network: "Network", clock: Clock) -> None:
        self.network = network
        self.clock = clock

    def deliver(self, msg: "Message", latency: float,
                dispatch: Callable[["Message"], None], *,
                label: str | None = None, footprint: object = None) -> None:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class ClockTransport(Transport):
    """The in-process transport: delivery is a clock timer.

    Used by both the sim engine (simulated latency) and the realtime
    engine's ``inproc`` mode (latency scaled onto wall time by the
    realtime clock).  The timer carries the delivery's schedule label
    and commute footprint, so exploration-mode replay sees exactly the
    event stream previous releases produced.
    """

    def deliver(self, msg, latency, dispatch, *, label=None, footprint=None):
        self.in_flight += 1

        def fire(m=msg):
            self.in_flight -= 1
            dispatch(m)

        self.clock.call_after(latency, fire, label=label, footprint=footprint)


class Executor:
    """How host blocks run.

    ``inline`` executors run the host function synchronously inside the
    strand (the interpreter never yields); others receive the function
    via :meth:`invoke` and call ``done(exc)`` on the engine's runtime
    context when it completes.  ``in_flight`` counts running host calls
    for quiescence accounting.
    """

    inline = True
    in_flight = 0

    def invoke(self, fn: Callable, ctx, done: Callable[[BaseException | None], None]) -> None:
        raise NotImplementedError("inline executors never receive invoke()")

    def close(self) -> None:  # pragma: no cover - trivial default
        pass


class InlineExecutor(Executor):
    """Synchronous host execution on the runtime thread (sim default)."""


class ExecutionEngine:
    """One clock + transport + executor, attached to one System."""

    name = "?"
    supports_controlled_scheduling = False

    def __init__(self, clock: Clock, transport: Transport, executor: Executor):
        self.clock = clock
        self.transport = transport
        self.executor = executor
        self.system: "System | None" = None

    def attach(self, system: "System") -> None:
        """Bind the engine to its system (wires the transport to the
        network).  Called once, at the end of ``System.__init__``."""
        self.system = system
        self.transport.bind(system.network, self.clock)

    # -- run loop -----------------------------------------------------------

    def run_until(self, time: float) -> None:
        self.clock.run_until(time)

    def run(self, max_events: int = 10_000_000) -> None:
        self.clock.run(max_events)

    def pending_work(self) -> int:
        """Timers + in-flight messages + running host calls; zero means
        the system is quiescent (nothing will happen without external
        input)."""
        return (
            self.clock.pending_events()
            + self.transport.in_flight
            + self.executor.in_flight
        )

    def drain(self, grace: float = 5.0) -> bool:
        """Graceful shutdown: run until in-flight messages and host
        calls settle, or ``grace`` logical seconds elapse.  Returns
        True when fully drained.  Engines with external resources
        (cluster workers) extend this; the default just runs the clock
        against the in-flight counters."""
        deadline = self.clock.now + max(grace, 0.0)
        while (
            self.transport.in_flight + self.executor.in_flight > 0
            and self.clock.now < deadline
        ):
            self.clock.run_until(min(self.clock.now + 0.1, deadline))
        return self.transport.in_flight + self.executor.in_flight == 0

    # -- live reconfiguration ----------------------------------------------

    def prepare_instances(self, names) -> None:
        """Provision backend resources for instances about to be added
        by a live reconfiguration (cluster: spawn worker processes).
        Called from blocking code before the transition's quiesce phase;
        a no-op for in-process engines."""

    def retire_instances(self, names) -> None:
        """Release backend resources of instances removed by a live
        reconfiguration (cluster: shut down and reap their workers).
        Called after the transition completes; a no-op for in-process
        engines."""

    def close(self) -> None:
        """Release backend resources (threads, sockets, event loops).
        Idempotent; a no-op for the sim engine."""
        self.transport.close()
        self.executor.close()


class SimEngine(ExecutionEngine):
    """The deterministic discrete-event backend (the default).

    Wraps a :class:`~repro.runtime.sim.Simulator` — optionally a shared
    one, so several systems can run on one timeline exactly as the
    ``System(sim=...)`` parameter always allowed.
    """

    name = "sim"
    supports_controlled_scheduling = True

    def __init__(self, sim: Simulator | None = None):
        super().__init__(sim if sim is not None else Simulator(), ClockTransport(), InlineExecutor())

    @property
    def sim(self) -> Simulator:
        return self.clock


# ---------------------------------------------------------------------------
# Engine selection
# ---------------------------------------------------------------------------

#: engine specs accepted by ``create_engine`` / ``System(engine=...)`` /
#: ``repro run --engine``
ENGINE_NAMES = ("sim", "realtime", "realtime-tcp", "cluster")


_TRUE_WORDS = ("1", "true", "yes", "on")
_FALSE_WORDS = ("0", "false", "no", "off")


@dataclasses.dataclass(frozen=True)
class EngineSpec:
    """One value describing *how to execute* a System: the engine
    backend plus its options plus the compile mode.

    Before this existed, the same choice was scattered across
    ``System(engine=...)``, ``default_engine()``, and per-subcommand CLI
    flags (``--time-scale``, ``--workers``).  An ``EngineSpec`` is
    accepted uniformly by :class:`~repro.runtime.system.System`,
    :func:`default_engine`, and every CLI subcommand's ``--engine``
    flag, with a single textual form::

        sim
        sim,compiled=off
        realtime,time_scale=0.05
        realtime-tcp
        cluster,workers=4

    ``compiled`` selects junction compilation (``None`` = ambient
    default, see :func:`repro.compile.compilation`); it is a System
    concern, not an engine constructor argument.  ``options`` carries
    any further ``key=value`` pairs through to the engine constructor
    (e.g. ``heartbeat_timeout`` for the cluster backend).
    """

    name: str = "sim"
    workers: int | None = None
    time_scale: float | None = None
    compiled: bool | None = None
    options: tuple[tuple[str, object], ...] = ()

    @classmethod
    def of(cls, spec: "EngineSpec | str | None") -> "EngineSpec":
        """Coerce a spec-like value (EngineSpec, spec string, None)."""
        if spec is None:
            return cls()
        if isinstance(spec, EngineSpec):
            return spec
        if isinstance(spec, str):
            return cls.parse(spec)
        raise TypeError(f"cannot build an EngineSpec from {spec!r}")

    @classmethod
    def parse(cls, text: str) -> "EngineSpec":
        """Parse the textual form (``name[,key=value...]``)."""
        parts = [p.strip() for p in text.split(",") if p.strip()]
        if not parts:
            raise ValueError("empty engine spec")
        name = "sim"
        if "=" not in parts[0]:
            name = parts[0]
            parts = parts[1:]
        workers = time_scale = compiled = None
        options: list[tuple[str, object]] = []
        for part in parts:
            if "=" not in part:
                raise ValueError(
                    f"bad engine option {part!r} (expected key=value)"
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            raw = raw.strip()
            if key == "workers":
                workers = int(raw)
            elif key == "time_scale":
                time_scale = float(raw)
            elif key == "compiled":
                if raw.lower() in _TRUE_WORDS:
                    compiled = True
                elif raw.lower() in _FALSE_WORDS:
                    compiled = False
                else:
                    raise ValueError(
                        f"bad value for compiled: {raw!r} (expected on/off)"
                    )
            else:
                options.append((key, _parse_option_value(raw)))
        return cls(
            name=name,
            workers=workers,
            time_scale=time_scale,
            compiled=compiled,
            options=tuple(sorted(options)),
        )

    def engine_kwargs(self) -> dict:
        """Constructor keyword arguments for :func:`create_engine`
        (everything except ``compiled``, which Systems interpret)."""
        kw: dict[str, object] = dict(self.options)
        if self.workers is not None:
            kw["workers"] = self.workers
        if self.time_scale is not None:
            kw["time_scale"] = self.time_scale
        return kw

    def create(self) -> "ExecutionEngine":
        """Build a fresh engine for this spec."""
        return create_engine(self.name, **self.engine_kwargs())

    def __str__(self) -> str:
        parts = [self.name]
        if self.workers is not None:
            parts.append(f"workers={self.workers}")
        if self.time_scale is not None:
            parts.append(f"time_scale={self.time_scale}")
        if self.compiled is not None:
            parts.append(f"compiled={'on' if self.compiled else 'off'}")
        parts.extend(f"{k}={v}" for k, v in self.options)
        return ",".join(parts)


def _parse_option_value(raw: str) -> object:
    if raw.lower() in _TRUE_WORDS:
        return True
    if raw.lower() in _FALSE_WORDS:
        return False
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        pass
    return raw


def create_engine(spec: str, **kw) -> ExecutionEngine:
    """Build an engine from its name: ``sim``, ``realtime`` (asyncio +
    in-process channels), ``realtime-tcp`` (asyncio + TCP loopback
    channels) or ``cluster`` (one supervised OS process per instance or
    shard group).  Keyword arguments pass through to the engine
    constructor (e.g. ``time_scale`` for the realtime backends,
    ``workers``/``heartbeat_timeout`` for the cluster backend)."""
    if spec == "sim":
        return SimEngine(**kw)
    if spec in ("realtime", "realtime-inproc"):
        from .realtime import RealtimeEngine

        return RealtimeEngine(**kw)
    if spec == "realtime-tcp":
        from .realtime import RealtimeEngine

        return RealtimeEngine(transport="tcp", **kw)
    if spec == "cluster":
        from .cluster import ClusterEngine

        return ClusterEngine(**kw)
    raise ValueError(f"unknown engine {spec!r} (expected one of {ENGINE_NAMES})")


#: factory consulted by ``System.__init__`` when no explicit engine (or
#: sim) is passed — the engine-level analogue of ``use_controller``,
#: needed because architecture wrappers build and start their System
#: inside ``__init__``, before a caller could hand one in
_engine_factory: Callable[[], ExecutionEngine] | None = None
#: the EngineSpec behind the ambient factory, when one was given — lets
#: Systems inherit spec-level settings (``compiled``) too
_engine_spec: EngineSpec | None = None


@contextlib.contextmanager
def default_engine(factory: "Callable[[], ExecutionEngine] | EngineSpec | str"):
    """Make every :class:`System` constructed inside the ``with`` block
    default to the given engine (one fresh engine per system).  Accepts
    a factory callable, an :class:`EngineSpec`, or a spec string::

        with default_engine(lambda: RealtimeEngine(time_scale=0.05)):
            svc = FailoverRedis(seed=7)
        with default_engine("realtime,time_scale=0.05,compiled=off"):
            svc = FailoverRedis(seed=7)
    """
    global _engine_factory, _engine_spec
    spec: EngineSpec | None = None
    if isinstance(factory, (EngineSpec, str)):
        spec = EngineSpec.of(factory)
        fac = spec.create
    else:
        fac = factory
    prev = (_engine_factory, _engine_spec)
    _engine_factory, _engine_spec = fac, spec
    try:
        yield
    finally:
        _engine_factory, _engine_spec = prev


def _default_engine_factory() -> Callable[[], ExecutionEngine] | None:
    return _engine_factory


def _default_engine_spec() -> EngineSpec | None:
    return _engine_spec


def controller_pending() -> bool:
    """True when a :func:`use_controller` scope is active (the next
    Simulator built will attach a schedule controller)."""
    from . import sim as _sim

    return _sim._controller_factory is not None
