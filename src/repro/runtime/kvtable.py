"""Per-junction distributed key-value tables.

Each junction owns a KV table storing its propositions (booleans) and
named data (opaque serialized payloads).  Junctions *push* updates to
each other but can only *read* their own table (the paper adapts the
tuple-space idea but restricts readability to junctions).

Semantics implemented here (paper sec. 6 "Junction state" and sec. 8
"Local priority" rule):

* Remote updates received while the junction is **idle** or **running**
  are queued; they take effect when the junction is next scheduled.
* While a junction executes a ``wait [keys] F``, updates to the
  propositions of ``F`` and to the listed data ``keys`` are admitted
  into the table immediately (that is how the wait can be satisfied).
* A **local** update to a key discards pending remote updates to that
  key — local updates have priority.
* ``keep`` discards pending updates for the given keys; idempotent.
* Transactions snapshot the value map and roll it back on failure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable


class _Undef:
    """Singleton initial value of data items; writing/restoring it is
    an error (paper sec. 6, "Initialization")."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undef"


UNDEF = _Undef()


@dataclass(frozen=True)
class Update:
    """A queued remote update."""

    key: str
    value: object
    src: str  # sending junction node name (for diagnostics)


class WaitWindow:
    """An active ``wait`` registration: the set of keys it admits and a
    callback fired when an admitted update lands."""

    __slots__ = ("admits", "on_update", "active")

    def __init__(self, admits: frozenset[str], on_update: Callable[[str], None]):
        self.admits = admits
        self.on_update = on_update
        self.active = True

    def close(self) -> None:
        self.active = False


class KVTable:
    """A junction's key-value table."""

    #: how many recently-seen message ids the dedup filter remembers;
    #: a retransmission storm longer than this window could re-apply an
    #: update, so it is sized far above any retransmission budget
    DEDUP_WINDOW = 4096

    def __init__(self, owner: str = "?"):
        self.owner = owner
        self.values: dict[str, object] = {}
        self.pending: list[Update] = []
        self.windows: list[WaitWindow] = []
        self.executing = False
        self._seen_msg_ids: set[int] = set()
        self._seen_order: deque[int] = deque()
        #: per-key count of *received* remote updates; lets the
        #: interpreter detect that a remote update to a key arrived
        #: between sending an update and getting its (possibly
        #: retransmitted, hence late) ack — see ``recv_seq_of``
        self._recv_seq: dict[str, int] = {}
        #: called when an update arrives while idle (runtime uses this
        #: to attempt a scheduling of the owning junction)
        self.on_idle_update: Callable[[], None] | None = None
        #: called with (key, old_value) just before a local write is
        #: applied — the interpreter's transaction undo logging
        self.on_local_write: Callable[[str, object], None] | None = None
        self._tx_stack: list[dict[str, object]] = []
        # cached metric handles; None until attach_telemetry so a bare
        # KVTable (unit tests) pays nothing
        self._ctr_received = None
        self._ctr_applied = None
        self._gauge_pending = None

    def attach_telemetry(self, telemetry) -> None:
        """Wire this table's KV counters into a system's telemetry
        registry: ``kv_updates_received`` / ``kv_updates_applied``
        counters and a ``kv_pending_updates`` gauge, all labeled by the
        owning junction node.  Handles are cached so the instrumented
        paths cost one integer increment each."""
        self._ctr_received = telemetry.counter("kv_updates_received", node=self.owner)
        self._ctr_applied = telemetry.counter("kv_updates_applied", node=self.owner)
        self._gauge_pending = telemetry.gauge("kv_pending_updates", node=self.owner)

    # -- declaration-time ---------------------------------------------------

    def declare(self, key: str, value: object) -> None:
        self.values[key] = value

    def has(self, key: str) -> bool:
        return key in self.values

    # -- reads ------------------------------------------------------------

    def get(self, key: str) -> object:
        if key not in self.values:
            raise KeyError(f"{self.owner}: no junction state {key!r}")
        return self.values[key]

    def get_prop(self, key: str) -> bool:
        v = self.get(key)
        if not isinstance(v, bool):
            raise TypeError(f"{self.owner}: {key!r} is not a proposition")
        return v

    def effective(self, key: str) -> object:
        """Value of ``key`` with the pending overlay applied (used by
        guard evaluation at scheduling attempts)."""
        v = self.values.get(key, UNDEF)
        for u in self.pending:
            if u.key == key:
                v = u.value
        return v

    def snapshot(self) -> dict[str, object]:
        """A shallow copy of current values (for checkpointing)."""
        return dict(self.values)

    # -- local writes -------------------------------------------------------

    def set_local(self, key: str, value: object) -> None:
        """A local update (save / assert / retract / host write).  Local
        updates overwrite — and therefore discard — pending remote
        updates to the same key."""
        if key not in self.values:
            raise KeyError(f"{self.owner}: no junction state {key!r}")
        if self.on_local_write is not None:
            self.on_local_write(key, self.values[key])
        self.values[key] = value
        if self.executing:
            self.pending = [u for u in self.pending if u.key != key]

    # -- remote updates ------------------------------------------------------

    def note_msg_id(self, msg_id: int) -> bool:
        """Record a delivered message id; ``False`` if already seen.

        The reliable-delivery layer retransmits updates whose ack was
        lost, so a receiver can see the same update twice; this bounded
        filter makes application of updates exactly-once.  The window is
        FIFO-evicted — message ids are monotonically increasing, so the
        oldest ids are the ones whose retransmissions have longest since
        ceased."""
        if msg_id in self._seen_msg_ids:
            return False
        self._seen_msg_ids.add(msg_id)
        self._seen_order.append(msg_id)
        if len(self._seen_order) > self.DEDUP_WINDOW:
            self._seen_msg_ids.discard(self._seen_order.popleft())
        return True

    def adopt_dedup(self, other: "KVTable") -> None:
        """Carry another table's msg-id dedup window into this one.

        The dedup filter is *transport* state, not junction state: a
        junction restarted (or migrated onto a successor instance) with
        a fresh table must still recognize retransmissions of updates
        the previous incarnation already applied and acknowledged —
        otherwise a retransmission whose ack was lost re-applies into
        the fresh window and breaks exactly-once application."""
        self._seen_msg_ids = set(other._seen_msg_ids)
        self._seen_order = deque(other._seen_order)

    def recv_seq_of(self, key: str) -> int:
        """How many remote updates to ``key`` have ever arrived.  The
        interpreter samples this before a remote assert/retract and
        applies the deferred local effect only if it is unchanged when
        the ack arrives: an acknowledgement (especially a retransmitted
        one) confirms *old* information, and must not overwrite — and,
        via local priority, discard — a newer remote update."""
        return self._recv_seq.get(key, 0)

    def _note_pending(self) -> None:
        if self._gauge_pending is not None:
            self._gauge_pending.set(len(self.pending))

    def receive(self, update: Update) -> None:
        """Handle an arriving remote update."""
        self._recv_seq[update.key] = self._recv_seq.get(update.key, 0) + 1
        if self._ctr_received is not None:
            self._ctr_received.inc()
        if self.executing:
            admitted = any(w.active and update.key in w.admits for w in self.windows)
            if admitted:
                self.values[update.key] = update.value
                if self._ctr_applied is not None:
                    self._ctr_applied.inc()
                for w in list(self.windows):
                    if w.active and update.key in w.admits:
                        w.on_update(update.key)
                return
            self.pending.append(update)
            self._note_pending()
        else:
            self.pending.append(update)
            self._note_pending()
            if self.on_idle_update is not None:
                self.on_idle_update()

    def apply_pending(self) -> int:
        """Apply queued updates in arrival order (called when the
        junction is scheduled).  Returns the number applied."""
        n = len(self.pending)
        for u in self.pending:
            self.values[u.key] = u.value
        self.pending.clear()
        if n and self._ctr_applied is not None:
            self._ctr_applied.inc(n)
        self._note_pending()
        return n

    def apply_pending_for(self, keys: Iterable[str]) -> int:
        """Apply queued updates to the given keys only (arrival order).

        Used at ``wait`` entry: the statement "allows the junction's
        table to reflect changes" to its propositions and listed data —
        including changes that arrived (and were queued) moments before
        the wait opened its window."""
        keyset = set(keys)
        applied = 0
        remaining = []
        for u in self.pending:
            if u.key in keyset:
                self.values[u.key] = u.value
                applied += 1
            else:
                remaining.append(u)
        self.pending = remaining
        if applied and self._ctr_applied is not None:
            self._ctr_applied.inc(applied)
        self._note_pending()
        return applied

    def keep(self, keys: Iterable[str]) -> None:
        keyset = set(keys)
        self.pending = [u for u in self.pending if u.key not in keyset]

    # -- wait windows -----------------------------------------------------------

    def open_window(self, admits: frozenset[str], on_update: Callable[[str], None]) -> WaitWindow:
        w = WaitWindow(admits, on_update)
        self.windows.append(w)
        return w

    def close_window(self, window: WaitWindow) -> None:
        window.close()
        self.windows = [w for w in self.windows if w.active]

    # -- transactions ----------------------------------------------------------

    def tx_begin(self) -> None:
        self._tx_stack.append(dict(self.values))

    def tx_commit(self) -> None:
        self._tx_stack.pop()

    def tx_rollback(self) -> None:
        self.values = self._tx_stack.pop()

    @property
    def in_transaction(self) -> bool:
        return bool(self._tx_stack)
