"""Per-junction distributed key-value tables, slot-addressed.

Each junction owns a KV table storing its propositions (booleans) and
named data (opaque serialized payloads).  Junctions *push* updates to
each other but can only *read* their own table (the paper adapts the
tuple-space idea but restricts readability to junctions).

Semantics implemented here (paper sec. 6 "Junction state" and sec. 8
"Local priority" rule):

* Remote updates received while the junction is **idle** or **running**
  are queued; they take effect when the junction is next scheduled.
* While a junction executes a ``wait [keys] F``, updates to the
  propositions of ``F`` and to the listed data ``keys`` are admitted
  into the table immediately (that is how the wait can be satisfied).
* A **local** update to a key discards pending remote updates to that
  key — local updates have priority.
* ``keep`` discards pending updates for the given keys; idempotent.
* Transactions log undone writes and roll them back on failure.

Representation (the slot-addressed state layer):

* A :class:`SlotLayout` maps each declared key to a stable integer
  slot; the layout is fixed when the ``System`` binds the junction's
  declarations and only grows (slots are never reused).
* Values live in a flat ``slots`` list indexed by slot.  The list is
  mutated in place and **never rebound**, so compiled guards and
  bodies may close over it.  ``table.values`` is a dict-like
  :class:`SlotValues` view over the same storage for generic callers.
* Pending remote updates are bucketed per key, each tagged with a
  global arrival sequence number, so local-priority discard,
  ``keep``, ``effective`` and ``apply_pending_for`` are O(keys
  touched) instead of O(total pending).
* Transactions push undo-log frames of ``(slot, old_value)`` pairs:
  ``tx_begin`` is O(1), rollback is O(writes made), and the value
  storage keeps its identity across rollback.
* The table tracks which keys its junction's *guard* reads
  (:meth:`set_guard_tracking`); any write to one of those keys sets
  ``guard_dirty``, which lets the scheduler skip re-evaluating a pure
  guard whose inputs did not change since the last attempt.

Slots are junction-local: the same key can live at different slots in
different junctions (or in the same junction across a live
reconfiguration that changes its declarations), so everything that
crosses junctions — update messages, commute footprints, reconfig
snapshots — stays keyed by *name* and is translated through the
layout at the boundary.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, NamedTuple


class _Undef:
    """Singleton initial value of data items; writing/restoring it is
    an error (paper sec. 6, "Initialization")."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "undef"


UNDEF = _Undef()

#: undo-log marker: the slot did not exist when the frame was opened
_TX_UNDECLARED = object()


class Update(NamedTuple):
    """A queued remote update.

    A named tuple rather than a (frozen) dataclass: one is allocated
    per remote/external update, and tuple construction skips the
    per-field ``object.__setattr__`` a frozen dataclass pays."""

    key: str
    value: object
    src: str  # sending junction node name (for diagnostics)


class SlotLayout:
    """The key→slot index of one junction's table.

    Fixed when the junction's declarations are bound; grows (but never
    shrinks or reorders) if a write introduces a key that was not
    declared — e.g. a remote update applied through a wait window."""

    __slots__ = ("index", "keys")

    def __init__(self) -> None:
        self.index: dict[str, int] = {}
        self.keys: list[str] = []

    def add(self, key: str) -> int:
        """Slot of ``key``, allocating the next slot if new."""
        i = self.index.get(key)
        if i is None:
            i = len(self.keys)
            self.index[key] = i
            self.keys.append(key)
        return i

    def slot_of(self, key: str) -> int | None:
        return self.index.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self.index

    def __len__(self) -> int:
        return len(self.keys)


class SlotValues:
    """Dict-like view over a table's flat slot storage.

    Exists so generic callers (checkpointing, reconfig restore, tests,
    the interpreter's by-name paths) keep the mapping API while the
    authoritative storage is the flat ``slots`` list.  The view object
    is created once per table and its identity never changes — aliases
    captured by compiled code stay valid across transactions."""

    __slots__ = ("_table",)

    def __init__(self, table: "KVTable"):
        self._table = table

    def get(self, key: str, default: object = None) -> object:
        t = self._table
        i = t.layout.index.get(key)
        return default if i is None else t.slots[i]

    def __getitem__(self, key: str) -> object:
        t = self._table
        i = t.layout.index.get(key)
        if i is None:
            raise KeyError(key)
        return t.slots[i]

    def __setitem__(self, key: str, value: object) -> None:
        self._table._store_named(key, value)

    def __contains__(self, key: str) -> bool:
        return key in self._table.layout.index

    def __iter__(self):
        return iter(self._table.layout.keys)

    def __len__(self) -> int:
        return len(self._table.layout.keys)

    def keys(self) -> list[str]:
        return list(self._table.layout.keys)

    def items(self) -> list[tuple[str, object]]:
        t = self._table
        slots = t.slots
        return [(k, slots[i]) for k, i in t.layout.index.items()]

    def values(self) -> list[object]:
        return list(self._table.slots)

    def update(self, other=(), **kw) -> None:
        items = other.items() if hasattr(other, "items") else other
        for k, v in items:
            self._table._store_named(k, v)
        for k, v in kw.items():
            self._table._store_named(k, v)

    def copy(self) -> dict[str, object]:
        return dict(self.items())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SlotValues):
            return self.copy() == other.copy()
        if isinstance(other, dict):
            return self.copy() == other
        return NotImplemented

    def __repr__(self) -> str:
        return f"SlotValues({self.copy()!r})"


class WaitWindow:
    """An active ``wait`` registration: the set of keys it admits and a
    callback fired when an admitted update lands."""

    __slots__ = ("admits", "on_update", "active")

    def __init__(self, admits: frozenset[str], on_update: Callable[[str], None]):
        self.admits = admits
        self.on_update = on_update
        self.active = True

    def close(self) -> None:
        self.active = False


class KVTable:
    """A junction's key-value table."""

    #: how many recently-seen message ids the dedup filter remembers;
    #: a retransmission storm longer than this window could re-apply an
    #: update, so it is sized far above any retransmission budget
    DEDUP_WINDOW = 4096

    def __init__(self, owner: str = "?"):
        self.owner = owner
        #: key → slot index, fixed per bound junction
        self.layout = SlotLayout()
        #: flat value storage, indexed by slot; mutated in place, never
        #: rebound — compiled code may alias it
        self.slots: list[object] = []
        #: stable dict-like view over ``slots`` (by-name access)
        self.values = SlotValues(self)
        #: pending remote updates bucketed per key, each entry a
        #: ``(arrival_seq, Update)`` pair; the per-key bucket makes
        #: local-priority discard / keep / effective O(1) per key
        self._pending: dict[str, list[tuple[int, Update]]] = {}
        self._pending_seq = 0
        self._pending_n = 0
        self.windows: list[WaitWindow] = []
        self.executing = False
        self._seen_msg_ids: set[int] = set()
        self._seen_order: deque[int] = deque()
        #: per-key count of *received* remote updates; lets the
        #: interpreter detect that a remote update to a key arrived
        #: between sending an update and getting its (possibly
        #: retransmitted, hence late) ack — see ``recv_seq_of``
        self._recv_seq: dict[str, int] = {}
        #: called when an update arrives while idle (runtime uses this
        #: to attempt a scheduling of the owning junction)
        self.on_idle_update: Callable[[], None] | None = None
        #: called with (key, old_value) just before a local write is
        #: applied — the interpreter's transaction undo logging
        self.on_local_write: Callable[[str, object], None] | None = None
        #: undo-log frames: lists of (slot, old_value) in write order
        self._tx_stack: list[list[tuple[int, object]]] = []
        #: keys the owning junction's guard reads; writes to them set
        #: ``guard_dirty`` so the scheduler can skip clean re-evaluation
        self._guard_keys: frozenset[str] = frozenset()
        self.guard_tracked = False
        self.guard_dirty = True
        self.guard_cached: bool | None = None
        # cached metric handles; None until attach_telemetry so a bare
        # KVTable (unit tests) pays nothing
        self._ctr_received = None
        self._ctr_applied = None
        self._gauge_pending = None

    def attach_telemetry(self, telemetry) -> None:
        """Wire this table's KV counters into a system's telemetry
        registry: ``kv_updates_received`` / ``kv_updates_applied``
        counters and a ``kv_pending_updates`` gauge, all labeled by the
        owning junction node.  Handles are cached so the instrumented
        paths cost one integer increment each."""
        self._ctr_received = telemetry.counter("kv_updates_received", node=self.owner)
        self._ctr_applied = telemetry.counter("kv_updates_applied", node=self.owner)
        self._gauge_pending = telemetry.gauge("kv_pending_updates", node=self.owner)

    # -- declaration-time ---------------------------------------------------

    def declare(self, key: str, value: object) -> None:
        self._store_named(key, value)

    def has(self, key: str) -> bool:
        return key in self.layout.index

    # -- guard footprint tracking -------------------------------------------

    def set_guard_tracking(self, keys: Iterable[str] | None) -> None:
        """Install (or clear, with ``None``) the set of keys the owning
        junction's pure guard reads.  While tracked and clean, the
        scheduler may reuse the last guard verdict instead of
        re-evaluating the formula."""
        if keys is None:
            self._guard_keys = frozenset()
            self.guard_tracked = False
        else:
            self._guard_keys = frozenset(keys)
            self.guard_tracked = True
        self.guard_dirty = True
        self.guard_cached = None

    # -- reads ------------------------------------------------------------

    def get(self, key: str) -> object:
        i = self.layout.index.get(key)
        if i is None:
            raise KeyError(f"{self.owner}: no junction state {key!r}")
        return self.slots[i]

    def get_prop(self, key: str) -> bool:
        v = self.get(key)
        if not isinstance(v, bool):
            raise TypeError(f"{self.owner}: {key!r} is not a proposition")
        return v

    def prop_value(self, key: str) -> object:
        """Value of ``key`` or ``None`` if undeclared (formula-eval
        read: absent keys evaluate to UNKNOWN upstream)."""
        i = self.layout.index.get(key)
        return None if i is None else self.slots[i]

    def effective(self, key: str) -> object:
        """Value of ``key`` with the pending overlay applied (used by
        guard evaluation at scheduling attempts)."""
        b = self._pending.get(key)
        if b is not None:
            return b[-1][1].value
        i = self.layout.index.get(key)
        return UNDEF if i is None else self.slots[i]

    def snapshot(self) -> dict[str, object]:
        """A shallow copy of current values (for checkpointing)."""
        slots = self.slots
        return {k: slots[i] for k, i in self.layout.index.items()}

    # -- pending queue (read side) -----------------------------------------

    @property
    def pending(self) -> tuple[Update, ...]:
        """Queued remote updates in global arrival order.

        A read-only reconstruction from the per-key buckets — enqueue
        through :meth:`receive` or :meth:`enqueue_pending`, never by
        mutating this value (hence a tuple: stray ``.append`` calls
        fail loudly instead of vanishing)."""
        if not self._pending:
            return ()
        tagged = [su for b in self._pending.values() for su in b]
        tagged.sort(key=lambda su: su[0])
        return tuple(u for _, u in tagged)

    def pending_updates(self) -> list[Update]:
        """The queued updates, arrival-ordered, as a list; explicit
        form for transfer paths (reconfiguration snapshots)."""
        return list(self.pending)

    @property
    def pending_count(self) -> int:
        return self._pending_n

    @property
    def has_pending(self) -> bool:
        return bool(self._pending)

    def enqueue_pending(self, updates: Iterable[Update]) -> None:
        """Queue updates directly (reconfiguration restore: carry a
        predecessor table's unapplied backlog into this table).  Does
        not count as *receiving* — dedup/recv-seq already happened in
        the previous incarnation."""
        for u in updates:
            self._enqueue(u)

    # -- internal write helpers --------------------------------------------

    def _declare_slot(self, key: str) -> int:
        i = self.layout.add(key)
        if i == len(self.slots):
            self.slots.append(UNDEF)
            if self._tx_stack:
                self._tx_stack[-1].append((i, _TX_UNDECLARED))
        return i

    def _store_named(self, key: str, value: object) -> None:
        """Plain by-name store: declare-if-missing, tx-logged, marks
        the guard dirty; no local-priority discard (that is
        :meth:`set_local`'s job)."""
        i = self.layout.index.get(key)
        if i is None:
            i = self._declare_slot(key)
        if self._tx_stack:
            self._tx_stack[-1].append((i, self.slots[i]))
        self.slots[i] = value
        if key in self._guard_keys:
            self.guard_dirty = True

    def _discard_pending(self, key: str) -> None:
        b = self._pending.pop(key, None)
        if b is not None:
            self._pending_n -= len(b)
            self._note_pending()

    # -- local writes -------------------------------------------------------

    def set_local(self, key: str, value: object) -> None:
        """A local update (save / assert / retract / host write).  Local
        updates overwrite — and therefore discard — pending remote
        updates to the same key."""
        i = self.layout.index.get(key)
        if i is None:
            raise KeyError(f"{self.owner}: no junction state {key!r}")
        if self.on_local_write is not None:
            self.on_local_write(key, self.slots[i])
        if self._tx_stack:
            self._tx_stack[-1].append((i, self.slots[i]))
        self.slots[i] = value
        if key in self._guard_keys:
            self.guard_dirty = True
        if self.executing and self._pending:
            self._discard_pending(key)

    def set_slot(self, i: int, key: str, value: object) -> None:
        """Slot-direct form of :meth:`set_local` for compiled junction
        bodies: the compiler resolved ``key`` to slot ``i`` at bind
        time, so the hot path skips the index lookup.  ``key`` still
        rides along for the undo-log hook and local-priority discard,
        which are name-keyed."""
        if self.on_local_write is not None:
            self.on_local_write(key, self.slots[i])
        if self._tx_stack:
            self._tx_stack[-1].append((i, self.slots[i]))
        self.slots[i] = value
        if key in self._guard_keys:
            self.guard_dirty = True
        if self.executing and self._pending:
            self._discard_pending(key)

    # -- remote updates ------------------------------------------------------

    def note_msg_id(self, msg_id: int) -> bool:
        """Record a delivered message id; ``False`` if already seen.

        The reliable-delivery layer retransmits updates whose ack was
        lost, so a receiver can see the same update twice; this bounded
        filter makes application of updates exactly-once.  The window is
        FIFO-evicted — message ids are monotonically increasing, so the
        oldest ids are the ones whose retransmissions have longest since
        ceased."""
        if msg_id in self._seen_msg_ids:
            return False
        self._seen_msg_ids.add(msg_id)
        self._seen_order.append(msg_id)
        if len(self._seen_order) > self.DEDUP_WINDOW:
            self._seen_msg_ids.discard(self._seen_order.popleft())
        return True

    def adopt_dedup(self, other: "KVTable") -> None:
        """Carry another table's msg-id dedup window into this one.

        The dedup filter is *transport* state, not junction state: a
        junction restarted (or migrated onto a successor instance) with
        a fresh table must still recognize retransmissions of updates
        the previous incarnation already applied and acknowledged —
        otherwise a retransmission whose ack was lost re-applies into
        the fresh window and breaks exactly-once application."""
        self._seen_msg_ids = set(other._seen_msg_ids)
        self._seen_order = deque(other._seen_order)

    def recv_seq_of(self, key: str) -> int:
        """How many remote updates to ``key`` have ever arrived.  The
        interpreter samples this before a remote assert/retract and
        applies the deferred local effect only if it is unchanged when
        the ack arrives: an acknowledgement (especially a retransmitted
        one) confirms *old* information, and must not overwrite — and,
        via local priority, discard — a newer remote update."""
        return self._recv_seq.get(key, 0)

    def _note_pending(self) -> None:
        if self._gauge_pending is not None:
            self._gauge_pending.set(self._pending_n)

    def _enqueue(self, update: Update) -> None:
        self._pending_seq += 1
        b = self._pending.get(update.key)
        if b is None:
            self._pending[update.key] = [(self._pending_seq, update)]
        else:
            b.append((self._pending_seq, update))
        self._pending_n += 1
        self._note_pending()

    def receive(self, update: Update) -> None:
        """Handle an arriving remote update."""
        key = update.key
        rs = self._recv_seq
        rs[key] = rs.get(key, 0) + 1
        c = self._ctr_received
        if c is not None:
            c.value += 1  # Counter.inc, sans the method call
        if self.executing:
            if self.windows and any(
                w.active and key in w.admits for w in self.windows
            ):
                self._store_named(key, update.value)
                if self._ctr_applied is not None:
                    self._ctr_applied.inc()
                for w in list(self.windows):
                    if w.active and key in w.admits:
                        w.on_update(key)
                return
            self._enqueue(update)
            return
        # idle enqueue, inlined: every update arriving between
        # schedulings lands here — the hottest single path in a
        # remote-update storm
        self._pending_seq += 1
        b = self._pending.get(key)
        if b is None:
            self._pending[key] = [(self._pending_seq, update)]
        else:
            b.append((self._pending_seq, update))
        self._pending_n += 1
        g = self._gauge_pending
        if g is not None:
            g.value = self._pending_n
        cb = self.on_idle_update
        if cb is not None:
            cb()

    def apply_pending(self) -> int:
        """Apply queued updates (called when the junction is
        scheduled).  Per key only the last-arrived value is written —
        observably identical to replaying the bucket in order — but the
        returned count covers every queued update, as before.  Returns
        the number applied."""
        n = self._pending_n
        if n:
            index = self.layout.index
            slots = self.slots
            tx = self._tx_stack[-1] if self._tx_stack else None
            gk = self._guard_keys
            dirty = False
            for key, b in self._pending.items():
                i = index.get(key)
                if i is None:
                    i = self._declare_slot(key)
                    slots = self.slots
                if tx is not None:
                    tx.append((i, slots[i]))
                slots[i] = b[-1][1].value
                if key in gk:
                    dirty = True
            if dirty:
                self.guard_dirty = True
            self._pending.clear()
            self._pending_n = 0
            if self._ctr_applied is not None:
                self._ctr_applied.inc(n)
        self._note_pending()
        return n

    def apply_pending_for(self, keys: Iterable[str]) -> int:
        """Apply queued updates to the given keys only, leaving the
        rest queued.

        Used at ``wait`` entry: the statement "allows the junction's
        table to reflect changes" to its propositions and listed data —
        including changes that arrived (and were queued) moments before
        the wait opened its window."""
        applied = 0
        if self._pending:
            for key in set(keys).intersection(self._pending):
                b = self._pending.pop(key)
                applied += len(b)
                self._store_named(key, b[-1][1].value)
            if applied:
                self._pending_n -= applied
                if self._ctr_applied is not None:
                    self._ctr_applied.inc(applied)
        self._note_pending()
        return applied

    def keep(self, keys: Iterable[str]) -> None:
        dropped = 0
        if self._pending:
            for key in set(keys).intersection(self._pending):
                dropped += len(self._pending.pop(key))
        if dropped:
            self._pending_n -= dropped
            self._note_pending()

    # -- wait windows -----------------------------------------------------------

    def open_window(self, admits: frozenset[str], on_update: Callable[[str], None]) -> WaitWindow:
        w = WaitWindow(admits, on_update)
        self.windows.append(w)
        return w

    def close_window(self, window: WaitWindow) -> None:
        window.close()
        self.windows = [w for w in self.windows if w.active]

    # -- transactions ----------------------------------------------------------

    def tx_begin(self) -> None:
        self._tx_stack.append([])

    def tx_commit(self) -> None:
        frame = self._tx_stack.pop()
        if self._tx_stack:
            # nested commit: the enclosing transaction must still be
            # able to undo the inner transaction's writes
            self._tx_stack[-1].extend(frame)

    def tx_rollback(self) -> None:
        frame = self._tx_stack.pop()
        gk = self._guard_keys
        dirty = False
        for i, old in reversed(frame):
            key = self.layout.keys[i]
            if old is _TX_UNDECLARED:
                if i == len(self.slots) - 1:
                    # slots allocate append-only, so a slot declared
                    # inside the frame is undone last and sits at the
                    # end — safe to truly un-declare it
                    self.slots.pop()
                    self.layout.keys.pop()
                    del self.layout.index[key]
                else:
                    self.slots[i] = UNDEF
            else:
                self.slots[i] = old
            if key in gk:
                dirty = True
        if dirty:
            self.guard_dirty = True

    @property
    def in_transaction(self) -> bool:
        return bool(self._tx_stack)
