"""Fault injection for experiments and tests.

Wraps the :class:`~repro.runtime.system.System` fault surface into a
single object with scheduling helpers, so experiment scripts read like
fault timelines::

    faults = FaultPlan(system)
    faults.crash_at(60.0, "bck1")
    faults.restart_at(62.0, "bck1")
    faults.partition_between(30.0, 40.0, {"f"}, {"bck2"})
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .system import System


class FaultPlan:
    """Schedules fault events on a system's simulator."""

    def __init__(self, system: "System"):
        self.system = system
        self.injected: list[tuple[float, str, str]] = []

    def _log(self, kind: str, detail: str) -> None:
        self.injected.append((self.system.sim.now, kind, detail))

    # -- immediate ----------------------------------------------------------

    def crash(self, instance: str) -> None:
        self.system.crash_instance(instance)
        self._log("crash", instance)

    def restart(self, instance: str, reinit: bool = True) -> None:
        self.system.restart_instance(instance, reinit=reinit)
        self._log("restart", instance)

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        self.system.network.partition(group_a, group_b)
        self._log("partition", f"{sorted(group_a)}|{sorted(group_b)}")

    def heal(self) -> None:
        self.system.network.heal_partition()
        self._log("heal", "")

    # -- scheduled -----------------------------------------------------------

    def crash_at(self, time: float, instance: str) -> None:
        self.system.sim.call_at(time, lambda: self.crash(instance))

    def restart_at(self, time: float, instance: str, reinit: bool = True) -> None:
        self.system.sim.call_at(time, lambda: self.restart(instance, reinit))

    def partition_between(
        self, start: float, end: float, group_a: set[str], group_b: set[str]
    ) -> None:
        self.system.sim.call_at(start, lambda: self.partition(group_a, group_b))
        self.system.sim.call_at(end, lambda: self.heal())
