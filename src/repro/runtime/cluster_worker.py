"""The cluster worker process (``repro.runtime.cluster`` spawns this).

One worker embodies one instance (or shard group) of a deployed
architecture, in the paper's libcompart sense: all traffic addressed
to the instance physically transits this OS process over a framed TCP
link, and the death of this process *is* the instance's failure — the
coordinator's supervisor detects it (process exit, socket EOF, or
missed heartbeats) and feeds it into the failover machinery as a real
fault.

The protocol is deliberately tiny — length-prefixed frames whose first
byte is an opcode:

========  =========================  =============================
opcode    direction                  meaning
========  =========================  =============================
``H``     worker → coordinator       hello: payload is the worker name
``P``     coordinator → worker       heartbeat ping (opaque payload)
``O``     worker → coordinator       heartbeat pong (echoes payload)
``M``     coordinator → worker       a runtime message for one of this
                                     worker's instances (serde frame)
``D``     worker → coordinator       delivery: the message bytes, having
                                     transited this process
``S``     coordinator → worker       graceful shutdown request
========  =========================  =============================

This module is **stdlib-only on purpose** and is executed by *file
path* (``python .../cluster_worker.py``), not as a package module: the
worker must come up in tens of milliseconds, and importing ``repro``
would cost an order of magnitude more.  The frame constants below are
therefore duplicated from :mod:`repro.runtime.wire` — keep them in
sync (``tests/engine/test_cluster.py`` asserts they match).
"""

from __future__ import annotations

import argparse
import signal
import socket
import struct
import sys

# keep in sync with repro.runtime.wire (stdlib-only duplication; see
# module docstring)
LEN_PREFIX = struct.Struct("<I")
MAX_FRAME_LEN = 8 * 1024 * 1024

OP_HELLO = b"H"
OP_PING = b"P"
OP_PONG = b"O"
OP_MSG = b"M"
OP_DELIVER = b"D"
OP_SHUTDOWN = b"S"


def send_frame(sock: socket.socket, body: bytes) -> None:
    sock.sendall(LEN_PREFIX.pack(len(body)) + body)


def recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes, or ``None`` on EOF."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            return None
        buf += chunk
    return bytes(buf)


def recv_frame(sock: socket.socket) -> bytes | None:
    header = recv_exact(sock, LEN_PREFIX.size)
    if header is None:
        return None
    (length,) = LEN_PREFIX.unpack(header)
    if length > MAX_FRAME_LEN:
        raise ValueError(f"frame length {length} exceeds {MAX_FRAME_LEN}")
    return recv_exact(sock, length)


def serve(sock: socket.socket, name: str) -> int:
    send_frame(sock, OP_HELLO + name.encode("utf-8"))
    while True:
        body = recv_frame(sock)
        if body is None:
            return 0  # coordinator went away: nothing left to serve
        op, payload = body[:1], body[1:]
        if op == OP_PING:
            send_frame(sock, OP_PONG + payload)
        elif op == OP_MSG:
            # the compartment hop: the message bytes enter this process
            # and leave it again — delivery only happens while this
            # process is alive and scheduled
            send_frame(sock, OP_DELIVER + payload)
        elif op == OP_SHUTDOWN:
            return 0
        # unknown opcodes are ignored (forward compatibility)


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description="C-Saw cluster worker")
    ap.add_argument("--connect", required=True, metavar="HOST:PORT",
                    help="coordinator endpoint to dial back to")
    ap.add_argument("--name", required=True, help="worker (group) name")
    args = ap.parse_args(argv)
    host, _, port = args.connect.rpartition(":")

    sock = socket.create_connection((host, int(port)), timeout=10.0)
    sock.settimeout(None)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def _graceful(signum, frame):  # noqa: ARG001 - signal signature
        # drain is trivial for a relay: close the link and exit cleanly
        try:
            sock.close()
        finally:
            sys.exit(0)

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)

    try:
        return serve(sock, args.name)
    except (ConnectionError, OSError):
        return 0  # link reset under us — coordinator teardown
    except ValueError:
        return 2  # framing violation: corrupt/hostile peer
    finally:
        try:
            sock.close()
        except OSError:
            pass


if __name__ == "__main__":
    raise SystemExit(main())
