"""Wire codec for runtime messages (the TCP transport's frame bodies).

The realtime engine's TCP transport and the cluster engine's worker
links move :class:`~repro.runtime.channels.Message` values over sockets
using libcompart-style length-prefixed frames: a 4-byte little-endian
length followed by the body, encoded with the serde generic codec
(:mod:`repro.serde.framing`).  Update payloads carry their
:class:`~repro.runtime.kvtable.Update` fields; serialized data values
(:class:`~repro.serde.framing.SavedData`) are tagged so the schema
survives the round trip without re-encoding the inner blob.

The boundary is hardened against adversarial peers: a frame length
above :data:`MAX_FRAME_LEN` raises :class:`~repro.core.errors.SerdeError`
before any allocation happens (a corrupt 4-byte prefix must never turn
into a multi-gigabyte ``readexactly``), and :func:`decode_message`
raises ``SerdeError`` — never ``ValueError``/``KeyError``/
``UnicodeDecodeError`` — on truncated, garbage or shape-invalid
bodies, so transport read loops have exactly one error type to reject
frames with.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.errors import SerdeError
from ..serde.framing import SavedData, decode_generic, encode_generic
from ..serde.framing import _LEN as LEN_PREFIX
from .channels import Message
from .kvtable import Update

if TYPE_CHECKING:  # pragma: no cover
    import asyncio

__all__ = [
    "LEN_PREFIX",
    "MAX_FRAME_LEN",
    "check_frame_length",
    "decode_message",
    "encode_message",
    "frame",
    "read_frame",
]

#: upper bound on a single wire frame (body bytes, excluding the
#: 4-byte prefix).  Runtime messages are KV updates and acks — far
#: below this — so anything larger is a corrupt or hostile prefix.
MAX_FRAME_LEN = 8 * 1024 * 1024


def check_frame_length(length: int) -> int:
    """Validate a decoded frame length before allocating for it."""
    if not 0 <= length <= MAX_FRAME_LEN:
        raise SerdeError(
            f"frame length {length} outside [0, {MAX_FRAME_LEN}] — corrupt "
            "or hostile length prefix"
        )
    return length


async def read_frame(reader: "asyncio.StreamReader") -> bytes:
    """Read one length-prefixed frame body from an asyncio stream,
    enforcing :data:`MAX_FRAME_LEN` before the body allocation.  Raises
    ``asyncio.IncompleteReadError`` at EOF and :class:`SerdeError` on a
    corrupt prefix."""
    header = await reader.readexactly(LEN_PREFIX.size)
    (length,) = LEN_PREFIX.unpack(header)
    return await reader.readexactly(check_frame_length(length))

#: dict tag marking a re-hydratable SavedData value (NUL-prefixed so it
#: cannot collide with substrate dict keys, which are identifiers)
_SAVED_TAG = "\x00saved"


def _enc_value(v: object) -> object:
    if isinstance(v, SavedData):
        return {_SAVED_TAG: [v.schema, v.blob]}
    return v


def _dec_value(v: object) -> object:
    if isinstance(v, dict) and len(v) == 1 and _SAVED_TAG in v:
        schema, blob = v[_SAVED_TAG]
        return SavedData(schema, blob)
    return v


def encode_message(msg: Message) -> bytes:
    """Encode one message into a frame body (no length prefix)."""
    rec: dict[str, object] = {
        "s": msg.src,
        "d": msg.dst,
        "k": msg.kind,
        "i": msg.msg_id,
    }
    if isinstance(msg.payload, Update):
        rec["u"] = [msg.payload.key, _enc_value(msg.payload.value), msg.payload.src]
    else:
        rec["p"] = _enc_value(msg.payload)
    return encode_generic(rec)


def decode_message(body: bytes) -> Message:
    """Decode a frame body back into a message.

    Any malformed input — truncated generic values, garbage suffixes, a
    record of the wrong shape — raises :class:`SerdeError`."""
    try:
        rec = decode_generic(body)
    except SerdeError:
        raise
    except Exception as exc:  # defensive: generic-codec internals
        raise SerdeError(f"undecodable frame body: {exc}") from exc
    if not isinstance(rec, dict) or not {"s", "d", "k", "i"} <= rec.keys():
        raise SerdeError("frame body is not a runtime message")
    if not (
        isinstance(rec["s"], str)
        and isinstance(rec["d"], str)
        and isinstance(rec["k"], str)
        and isinstance(rec["i"], int)
    ):
        raise SerdeError("runtime message fields have the wrong types")
    if "u" in rec:
        u = rec["u"]
        if not isinstance(u, (list, tuple)) or len(u) != 3:
            raise SerdeError("runtime message update payload is malformed")
        key, value, usrc = u
        payload: object = Update(key=key, value=_dec_value(value), src=usrc)
    elif "p" in rec:
        payload = _dec_value(rec["p"])
    else:
        raise SerdeError("runtime message carries neither update nor payload")
    return Message(
        src=rec["s"], dst=rec["d"], kind=rec["k"], payload=payload, msg_id=rec["i"]
    )


def frame(body: bytes) -> bytes:
    """Length-prefix a frame body for the wire."""
    check_frame_length(len(body))
    return LEN_PREFIX.pack(len(body)) + body
