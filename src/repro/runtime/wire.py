"""Wire codec for runtime messages (the TCP transport's frame bodies).

The realtime engine's TCP transport moves
:class:`~repro.runtime.channels.Message` values over a loopback socket
using libcompart-style length-prefixed frames: a 4-byte little-endian
length followed by the body, encoded with the serde generic codec
(:mod:`repro.serde.framing`).  Update payloads carry their
:class:`~repro.runtime.kvtable.Update` fields; serialized data values
(:class:`~repro.serde.framing.SavedData`) are tagged so the schema
survives the round trip without re-encoding the inner blob.
"""

from __future__ import annotations

from ..core.errors import SerdeError
from ..serde.framing import SavedData, decode_generic, encode_generic
from ..serde.framing import _LEN as LEN_PREFIX
from .channels import Message
from .kvtable import Update

__all__ = ["LEN_PREFIX", "decode_message", "encode_message", "frame"]

#: dict tag marking a re-hydratable SavedData value (NUL-prefixed so it
#: cannot collide with substrate dict keys, which are identifiers)
_SAVED_TAG = "\x00saved"


def _enc_value(v: object) -> object:
    if isinstance(v, SavedData):
        return {_SAVED_TAG: [v.schema, v.blob]}
    return v


def _dec_value(v: object) -> object:
    if isinstance(v, dict) and len(v) == 1 and _SAVED_TAG in v:
        schema, blob = v[_SAVED_TAG]
        return SavedData(schema, blob)
    return v


def encode_message(msg: Message) -> bytes:
    """Encode one message into a frame body (no length prefix)."""
    rec: dict[str, object] = {
        "s": msg.src,
        "d": msg.dst,
        "k": msg.kind,
        "i": msg.msg_id,
    }
    if isinstance(msg.payload, Update):
        rec["u"] = [msg.payload.key, _enc_value(msg.payload.value), msg.payload.src]
    else:
        rec["p"] = _enc_value(msg.payload)
    return encode_generic(rec)


def decode_message(body: bytes) -> Message:
    """Decode a frame body back into a message."""
    rec = decode_generic(body)
    if not isinstance(rec, dict) or "s" not in rec:
        raise SerdeError("frame body is not a runtime message")
    if "u" in rec:
        key, value, usrc = rec["u"]
        payload: object = Update(key=key, value=_dec_value(value), src=usrc)
    else:
        payload = _dec_value(rec["p"])
    return Message(
        src=rec["s"], dst=rec["d"], kind=rec["k"], payload=payload, msg_id=rec["i"]
    )


def frame(body: bytes) -> bytes:
    """Length-prefix a frame body for the wire."""
    return LEN_PREFIX.pack(len(body)) + body
