"""The DSL interpreter: executes specialized junction bodies.

One *scheduling* of a junction creates a :class:`JunctionExecution`,
which runs the junction's expression tree as a set of cooperating
*strands* (micro-threads implemented as Python generators).  Strands
yield :class:`Blocked` requests when they need to wait — on a formula
(``wait``), a remote acknowledgement (``write``/``assert``/``retract``
to another junction), simulated service time (host blocks), or child
strands (parallel composition).  The execution cooperates with the
discrete-event simulator: when every strand is blocked, control returns
to the simulator, which advances time, delivers messages, and fires
``otherwise`` deadlines.

Failure semantics follow the paper:

* A :class:`~repro.core.errors.DslFailure` aborts the enclosing
  expression and propagates outward.
* ``E1 otherwise[t] E2`` absorbs failures of ``E1`` (including a
  deadline expiry) and runs ``E2``.  Deadlines belong to *scopes*; an
  expired outer deadline is not absorbed by an inner handler.
* ``<|E|>`` rolls the KV table back before re-raising.
* ``return`` and ``retry`` are control signals, not failures; they pass
  through ``otherwise`` untouched.
* Remote updates apply **locally only after the acknowledgement**
  arrives, so a failed remote update leaves the local table unchanged —
  this is what makes the paper's retry idioms (Fig. 4) work.

``case`` implements the paper's terminators: ``break`` leaves the case;
``next`` re-matches below the succeeded arm; ``reconsider`` re-matches
from scratch and **fails** if the same arm would run again with the
junction's proposition state unchanged (our operationalization of "if a
different match is made ... otherwise the expression fails").
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Generator, Optional

from ..core import ast as A
from ..core.errors import (
    DslFailure,
    HostError,
    ReconsiderFailure,
    RetryExhausted,
    TimeoutFailure,
    UndefError,
    VerifyFailure,
    VerifyUnknown,
)
from ..core.formula import UNKNOWN, Formula, evaluate, propositions
from .channels import Message
from .host import HostContext
from .kvtable import UNDEF, Update

if TYPE_CHECKING:  # pragma: no cover
    from .instance import JunctionRuntime
    from .system import System


# ---------------------------------------------------------------------------
# Control signals (not failures)
# ---------------------------------------------------------------------------

class ControlSignal(Exception):
    """Non-failure control transfer; passes through ``otherwise``."""


class ReturnSignal(ControlSignal):
    """``return``: leave the enclosing fate scope / the junction."""


class RetrySignal(ControlSignal):
    """``retry``: restart the junction body (bounded)."""


# ---------------------------------------------------------------------------
# Strand machinery
# ---------------------------------------------------------------------------

class Blocked:
    """A strand's parked state (a ``__slots__`` record — these are
    allocated once per blocking statement on the hot path).

    kind:
      * ``'wait'``  — fields: formula, admits (frozenset of keys), and
        optionally ``pred``, a compiled three-valued predicate over the
        junction's value map (set by :mod:`repro.compile` for pure
        formulas; wake-up checks call it instead of walking the tree)
      * ``'ack'``   — fields: msg_id
      * ``'sleep'`` — fields: duration
      * ``'join'``  — fields: children (list of Strand)
      * ``'host'``  — fields: fn, ctx, name (engine-executor host call;
        only emitted when the engine's executor is not inline)
    """

    __slots__ = (
        "kind", "formula", "admits", "msg_id", "duration",
        "children", "fn", "ctx", "name", "pred",
    )

    def __init__(
        self,
        kind: str,
        formula: Optional[Formula] = None,
        admits: frozenset = frozenset(),
        msg_id: int = 0,
        duration: float = 0.0,
        children: list | None = None,
        fn: object = None,
        ctx: object = None,
        name: str = "",
        pred: object = None,
    ):
        self.kind = kind
        self.formula = formula
        self.admits = admits
        self.msg_id = msg_id
        self.duration = duration
        self.children = children if children is not None else []
        self.fn = fn
        self.ctx = ctx
        self.name = name
        self.pred = pred

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Blocked {self.kind}>"


class _DeadlineScope:
    __slots__ = ("strand", "deadline", "handle", "active", "scope_id")
    _ids = itertools.count()

    def __init__(self, strand: "Strand", deadline: float):
        self.strand = strand
        self.deadline = deadline
        self.handle = None
        self.active = True
        self.scope_id = next(self._ids)


class ScopedTimeout(TimeoutFailure):
    """A deadline expiry carrying its originating scope, so that inner
    ``otherwise`` handlers re-raise timeouts that belong to enclosing
    scopes."""

    def __init__(self, scope: _DeadlineScope | None = None):
        super().__init__("otherwise deadline expired")
        self.scope = scope


class Strand:
    """One sequential strand of a junction execution (``__slots__``:
    one is allocated per scheduling even for bodies that complete
    synchronously)."""

    __slots__ = (
        "id", "gen", "parent", "state", "block",
        "exc", "pending_throw", "window", "sleep_handle",
    )

    _ids = itertools.count()

    def __init__(self, gen: Generator, parent: "Strand | None" = None):
        self.id = next(self._ids)
        self.gen = gen
        self.parent = parent
        self.state = "ready"  # ready|blocked|done|failed|cancelled
        self.block: Blocked | None = None
        self.exc: BaseException | None = None
        self.pending_throw: BaseException | None = None
        self.window = None  # open KV wait window, if any
        self.sleep_handle = None

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Strand {self.id} {self.state}>"


class _TxScope:
    """An open transaction: owner strand + undo log.

    The undo log records (key, previous value) for the *first* local
    write to each key made by the owner strand or any of its
    descendants while the scope is open.  Rolling back restores those
    values in reverse order — this makes ``<|E|>`` compose correctly
    with parallel strands (a sibling's transaction failure must not
    wipe our writes, which a whole-table snapshot would)."""

    __slots__ = ("owner", "log", "seen", "active")

    def __init__(self, owner: "Strand"):
        self.owner = owner
        self.log: list[tuple[str, object]] = []
        self.seen: set[str] = set()
        self.active = True


def _is_self_or_ancestor(candidate: "Strand", strand: "Strand | None") -> bool:
    while strand is not None:
        if strand is candidate:
            return True
        strand = strand.parent
    return False


class JunctionExecution:
    """One scheduling of a junction."""

    __slots__ = (
        "system", "jr", "table", "root", "strands", "ready",
        "awaiting_acks", "finished", "outcome", "failure",
        "_pump_scheduled", "_current", "_retry_budget", "active_txs",
        "parent_event", "sched_event", "_sched_at",
    )

    def __init__(
        self,
        system: "System",
        jr: "JunctionRuntime",
        parent_event: int | None = None,
    ):
        self.system = system
        self.jr = jr
        self.table = jr.table
        self.root: Strand | None = None
        self.strands: dict[int, Strand] = {}
        self.ready: list[Strand] = []
        self.awaiting_acks: dict[int, Strand] = {}
        self.finished = False
        self.outcome: str | None = None  # 'ok' | 'failed' | 'cancelled'
        self.failure: BaseException | None = None
        self._pump_scheduled = False
        self._current: Strand | None = None
        self._retry_budget = system.max_retries
        self.active_txs: list[_TxScope] = []
        #: causal parent of this scheduling (the ``attempt`` event)
        self.parent_event = parent_event
        #: the ``sched`` event — causal parent of everything this
        #: execution does (sends, lifecycle actions, the ``unsched``)
        self.sched_event: int | None = None
        self._sched_at = 0.0

    def reset(self, parent_event: int | None) -> None:
        """Re-arm a synchronously-completed execution for its
        junction's next scheduling (see ``JunctionRuntime._free_exec``).
        Only executions that finished ok with every per-run container
        empty are stashed for reuse, so the containers need no reset —
        just the scalar run state.  The done root strand is kept and
        re-armed by :meth:`start`.  The table is re-read: a restart
        replaces the junction's table object."""
        self.table = self.jr.table
        self.finished = False
        self.outcome = None
        self.failure = None
        self._current = None
        self.parent_event = parent_event
        self.sched_event = None
        self._sched_at = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        jr = self.jr
        system = self.system
        table = self.table
        table.executing = True
        table.on_local_write = self._on_local_write
        jr.status = "running"
        jr.sched_count += 1
        tel = system.telemetry
        m = jr._m_scheds
        if m is None:
            m = jr._m_scheds = tel.counter("junction_scheds", node=jr.node)
        m.value += 1  # Counter.inc, sans the method call
        self._sched_at = system.clock.now
        self.sched_event = (
            tel.emit("sched", jr.node, parent=self.parent_event)
            if tel.enabled else None
        )
        code = jr.code
        # compiled bodies carry their own retry/return loop (codegen
        # emits it into ``_body``), so the generated generator IS the
        # root — no wrapper frame per scheduling
        gen = code.body_fn(self, code.consts) if code is not None else self._root_gen()
        # root fast path: advance to the first yield inline, with the
        # root strand registered and current (transactions/par opened
        # before the first yield attribute correctly).  Most junction
        # bodies complete synchronously: handle StopIteration here
        # without the _advance/_finish_strand frames — a fresh root has
        # no window, sleep handle or block to clean up.
        s = self.root
        if s is None:
            s = Strand(gen, None)
            self.root = s
        else:
            # reused execution (see ``reset``): re-arm the done root
            s.gen = gen
            s.state = "ready"
        self._current = s
        # registry insert deferred past the sync-completion path: the
        # strands dict only matters once the body reaches a yield (or
        # fails — _finish_execution's cancel sweep tolerates an
        # unregistered done/failed root)
        try:
            req = gen.send(None)
        except StopIteration:
            # synchronous ok completion, fully inlined (the
            # _finish_execution / _emit_unsched / execution_finished
            # generality is for multi-strand and failure paths): one
            # strand, nothing to cancel, no failure to record
            self._current = None
            s.state = "done"
            self.finished = True
            self.outcome = "ok"
            table.executing = False
            table.on_local_write = None
            jr.status = "idle"
            h = jr._m_exec_seconds
            if h is None:
                h = jr._m_exec_seconds = tel.histogram(
                    "junction_execution_seconds", node=jr.node
                )
            h.observe(system.clock.now - self._sched_at)
            c = jr._m_unscheds.get("ok")
            if c is None:
                c = jr._m_unscheds["ok"] = tel.counter(
                    "junction_unscheds", node=jr.node, outcome="ok"
                )
            c.value += 1
            if tel.enabled:
                tel.emit(
                    "unsched", jr.node, parent=self.sched_event,
                    outcome="ok", failure=None,
                )
            system._executions.pop(jr.node, None)
            # stash for reuse by the junction's next scheduling (only
            # when every per-run container is provably untouched)
            if not self.strands and not self.active_txs and jr._free_exec is None:
                jr._free_exec = self
            if table._pending_n:
                system._attempt_soon(jr)
            return
        except (DslFailure, ControlSignal) as exc:
            self._current = None
            s.state = "failed"
            s.exc = exc
            self._finish_execution(exc)
            return
        except Exception as exc:  # host/library bug: surface as HostError
            self._current = None
            wrapped = HostError(f"{jr.node}: internal error: {exc!r}")
            wrapped.__cause__ = exc
            s.state = "failed"
            s.exc = wrapped
            self._finish_execution(wrapped)
            return
        self._current = None
        self.strands[s.id] = s
        self._handle_request(s, req)
        if self.ready and not self.finished:
            self._pump()

    def _on_local_write(self, key: str, old: object) -> None:
        cur = self._current
        for tx in self.active_txs:
            if tx.active and key not in tx.seen and _is_self_or_ancestor(tx.owner, cur):
                tx.log.append((key, old))
                tx.seen.add(key)

    def _root_gen(self) -> Generator:
        """Tree-walking root: the junction body with the retry/return
        loop around it (compiled bodies embed the same loop — codegen
        ``root=True``)."""
        attempts = 0
        while True:
            try:
                yield from self.exec_expr(self.jr.body)
                return
            except ReturnSignal:
                return
            except RetrySignal:
                attempts += 1
                if attempts > self._retry_budget:
                    raise RetryExhausted(
                        f"{self.jr.node}: retry invoked more than {self._retry_budget} times"
                    )
                continue

    def _spawn(self, gen: Generator, parent: Strand | None) -> Strand:
        s = Strand(gen, parent)
        self.strands[s.id] = s
        self.ready.append(s)
        return s

    def _schedule_pump(self) -> None:
        if self._pump_scheduled or self.finished:
            return
        self._pump_scheduled = True
        self.system.clock.call_after(
            0.0,
            self._pump_cb,
            priority=-1,
            label=self.jr._label_pump,
            footprint=self.jr._fp_node,
        )

    def _pump_cb(self) -> None:
        self._pump_scheduled = False
        self._pump()

    def _pump(self) -> None:
        while self.ready and not self.finished:
            strand = self.ready.pop(0)
            if strand.state != "ready":
                continue
            throw = strand.pending_throw
            strand.pending_throw = None
            self._advance(strand, throw=throw)

    # ------------------------------------------------------------------
    # Strand stepping
    # ------------------------------------------------------------------

    def _advance(self, strand: Strand, send=None, throw: BaseException | None = None) -> None:
        self._current = strand
        try:
            if throw is not None:
                req = strand.gen.throw(throw)
            else:
                req = strand.gen.send(send)
        except StopIteration:
            self._finish_strand(strand, None)
        except (DslFailure, ControlSignal) as exc:
            self._finish_strand(strand, exc)
        except Exception as exc:  # host/library bug: surface as HostError
            wrapped = HostError(f"{self.jr.node}: internal error: {exc!r}")
            wrapped.__cause__ = exc
            self._finish_strand(strand, wrapped)
        else:
            self._handle_request(strand, req)
        finally:
            self._current = None

    def _handle_request(self, strand: Strand, req: Blocked) -> None:
        if req.kind == "wait":
            # updates to the admitted keys that queued up before the
            # window opened are reflected now (sec. 6: the wait "allows
            # the junction's table to reflect changes" to those keys)
            self.table.apply_pending_for(req.admits)
            if self._wait_sat(req):
                strand.state = "ready"
                self.ready.append(strand)
                return
            strand.state = "blocked"
            strand.block = req

            def on_update(_key: str, s=strand, r=req):
                if s.state == "blocked" and self._wait_sat(r):
                    self._wake(s)

            strand.window = self.table.open_window(req.admits, on_update)
            return
        if req.kind == "ack":
            strand.state = "blocked"
            strand.block = req
            self.awaiting_acks[req.msg_id] = strand
            return
        if req.kind == "sleep":
            strand.state = "blocked"
            strand.block = req
            strand.sleep_handle = self.system.clock.call_after(
                req.duration,
                lambda s=strand: self._wake(s),
                label=self.jr._label_sleep,
                footprint=self.jr._fp_strand,
            )
            return
        if req.kind == "join":
            strand.state = "blocked"
            strand.block = req
            # children were spawned by exec side; just wait
            return
        if req.kind == "host":
            strand.state = "blocked"
            strand.block = req

            def done(exc: BaseException | None, s=strand, r=req):
                # runs on the runtime thread; the strand may have been
                # cancelled (crash / stop / deadline) while the host
                # call was off-thread — its completion is then dropped
                if self.finished or s.state != "blocked" or s.block is not r:
                    return
                if exc is None:
                    try:
                        r.ctx.apply_deferred_writes()
                    except BaseException as werr:
                        exc = werr
                if exc is not None and not isinstance(exc, DslFailure):
                    wrapped = HostError(
                        f"{self.jr.node}: host block {r.name!r} raised {exc!r}"
                    )
                    wrapped.__cause__ = exc
                    exc = wrapped
                self._wake(s, throw=exc)

            self.system.engine.executor.invoke(req.fn, req.ctx, done)
            return
        raise RuntimeError(f"unknown block request {req.kind!r}")

    def _wake(self, strand: Strand, throw: BaseException | None = None) -> None:
        if strand.state != "blocked" or self.finished:
            return
        self._unblock_cleanup(strand)
        if throw is not None and strand.block is not None and strand.block.kind == "join":
            for child in strand.block.children:
                self._cancel_subtree(child)
        strand.block = None
        strand.state = "ready"
        strand.pending_throw = throw
        self.ready.append(strand)
        self._schedule_pump()

    def _unblock_cleanup(self, strand: Strand) -> None:
        if strand.window is not None:
            self.table.close_window(strand.window)
            strand.window = None
        if strand.sleep_handle is not None:
            strand.sleep_handle.cancel()
            strand.sleep_handle = None
        if strand.block is not None and strand.block.kind == "ack":
            self.awaiting_acks.pop(strand.block.msg_id, None)
            # stop retransmitting once nothing waits for the ack (the
            # strand was cancelled, timed out, or is being failed)
            self.system.delivery.cancel(strand.block.msg_id)

    def _finish_strand(self, strand: Strand, exc: BaseException | None) -> None:
        strand.state = "failed" if exc is not None else "done"
        strand.exc = exc
        self._unblock_cleanup(strand)
        parent = strand.parent
        if parent is None:
            self._finish_execution(exc)
            return
        # parent is blocked on a join containing this strand
        block = parent.block
        if block is None or block.kind != "join":
            return
        if exc is not None:
            for sibling in block.children:
                if sibling is not strand:
                    self._cancel_subtree(sibling)
            self._wake(parent, throw=exc)
            return
        if all(c.state == "done" for c in block.children):
            self._wake(parent)

    def _cancel_subtree(self, strand: Strand) -> None:
        if strand.state in ("done", "failed", "cancelled"):
            return
        if strand.block is not None and strand.block.kind == "join":
            for child in strand.block.children:
                self._cancel_subtree(child)
        self._unblock_cleanup(strand)
        strand.state = "cancelled"
        try:
            strand.gen.close()
        except Exception:
            pass

    def _finish_execution(self, exc: BaseException | None) -> None:
        if self.finished:
            return
        self.finished = True
        self.failure = exc
        self.outcome = "ok" if exc is None else "failed"
        strands = self.strands
        if len(strands) > 1 or (self.root is not None and self.root.state in ("ready", "blocked")):
            for s in list(strands.values()):
                if s.state in ("ready", "blocked"):
                    self._cancel_subtree(s)
        self.table.executing = False
        self.table.on_local_write = None
        self.jr.status = "idle"
        self._emit_unsched(self.outcome, exc)
        self.system.execution_finished(self.jr, self)

    def cancel(self) -> None:
        """Abort the execution (instance crash/stop)."""
        if self.finished:
            return
        self.finished = True
        self.outcome = "cancelled"
        for s in list(self.strands.values()):
            self._cancel_subtree(s)
        self.table.executing = False
        self.table.on_local_write = None
        self.jr.status = "idle"
        self._emit_unsched("cancelled", None)

    def _emit_unsched(self, outcome: str | None, exc: BaseException | None) -> None:
        jr = self.jr
        tel = self.system.telemetry
        h = jr._m_exec_seconds
        if h is None:
            h = jr._m_exec_seconds = tel.histogram(
                "junction_execution_seconds", node=jr.node
            )
        h.observe(self.system.clock.now - self._sched_at)
        key = outcome or "?"
        c = jr._m_unscheds.get(key)
        if c is None:
            c = jr._m_unscheds[key] = tel.counter(
                "junction_unscheds", node=jr.node, outcome=key
            )
        c.inc()
        if tel.enabled:
            tel.emit(
                "unsched", jr.node, parent=self.sched_event, outcome=outcome, failure=exc
            )

    # ------------------------------------------------------------------
    # Message handling
    # ------------------------------------------------------------------

    def on_ack(self, msg_id: int) -> None:
        strand = self.awaiting_acks.pop(msg_id, None)
        if strand is not None:
            self._wake(strand)

    def on_delivery_failure(self, msg_id: int, exc: BaseException) -> None:
        """The delivery layer exhausted its retransmission budget for
        ``msg_id``: fail the waiting strand so ``otherwise`` handlers
        fire promptly rather than only via their own deadlines."""
        strand = self.awaiting_acks.pop(msg_id, None)
        if strand is not None:
            self._wake(strand, throw=exc)

    # ------------------------------------------------------------------
    # Formula evaluation
    # ------------------------------------------------------------------

    def _prop_env(self, key: str):
        v = self.table.prop_value(key)
        if isinstance(v, bool):
            return v
        return UNKNOWN

    def resolve_indices(self, f: Formula) -> Formula:
        """Resolve proposition indices that are idx variables against
        the table's current cursor values (``!Work[tgt]`` with
        ``idx tgt of {...}`` — sec. 7.1's per-back-end propositions)."""
        from ..core.formula import And, At, Implies, Not, Or, Prop

        if isinstance(f, Prop) and isinstance(f.index, A.Ref):
            idx = f.index
            if idx.is_simple and idx.name in self.jr.idx_names:
                v = self.table.get(idx.name)
                if v is UNDEF:
                    raise UndefError(f"{self.jr.node}: index {idx.name!r} is undef")
                return Prop(f.name, str(v))
            return f
        if isinstance(f, Not):
            return Not(self.resolve_indices(f.operand))
        if isinstance(f, And):
            return And(self.resolve_indices(f.left), self.resolve_indices(f.right))
        if isinstance(f, Or):
            return Or(self.resolve_indices(f.left), self.resolve_indices(f.right))
        if isinstance(f, Implies):
            return Implies(self.resolve_indices(f.left), self.resolve_indices(f.right))
        if isinstance(f, At):
            return At(f.junction, self.resolve_indices(f.body))
        return f

    def eval_formula(self, f: Formula):
        return evaluate(
            self.resolve_indices(f),
            self._prop_env,
            at=self.system.make_at_resolver(self.jr),
            live=self.system.make_live_resolver(),
        )

    def _formula_true(self, f: Formula) -> bool:
        return self.eval_formula(f) is True

    def _wait_sat(self, req: Blocked) -> bool:
        """Is a wait request's formula satisfied?  Uses the compiled
        predicate when the compiler attached one (pure formulas), else
        the reference tree-walk."""
        pred = req.pred
        if pred is not None:
            # compiled predicates are slot-compiled: they read the flat
            # slot list, not the by-name view
            return pred(self.table.slots) is True
        return self._formula_true(req.formula)

    # ------------------------------------------------------------------
    # Argument evaluation
    # ------------------------------------------------------------------

    def eval_arg_number(self, arg: object) -> float:
        if isinstance(arg, A.Num):
            return arg.value
        if isinstance(arg, A.Ref) and arg.is_simple:
            v = self.jr.params.get(arg.name)
            if isinstance(v, (int, float)):
                return float(v)
            raise DslFailure(f"{self.jr.node}: {arg} is not a numeric parameter")
        if isinstance(arg, A.BinArith):
            l = self.eval_arg_number(arg.left)
            r = self.eval_arg_number(arg.right)
            return {"+": l + r, "-": l - r, "*": l * r, "/": l / r if r else float("inf")}[arg.op]
        raise DslFailure(f"{self.jr.node}: cannot evaluate {arg!r} as a number")

    # ------------------------------------------------------------------
    # Statement execution (generators)
    # ------------------------------------------------------------------

    def exec_expr(self, e: A.Expr) -> Generator:
        if isinstance(e, A.Skip):
            return
        if isinstance(e, A.Return):
            raise ReturnSignal()
        if isinstance(e, A.Retry):
            raise RetrySignal()
        if isinstance(e, A.Seq):
            for item in e.items:
                yield from self.exec_expr(item)
            return
        if isinstance(e, A.HostBlock):
            yield from self._exec_host(e)
            return
        if isinstance(e, A.Save):
            self._exec_save(e)
            return
        if isinstance(e, A.Restore):
            self._exec_restore(e)
            return
        if isinstance(e, A.Write):
            yield from self._exec_write(e)
            return
        if isinstance(e, (A.Assert, A.Retract)):
            yield from self._exec_assert(e, isinstance(e, A.Assert))
            return
        if isinstance(e, A.Keep):
            self.table.keep(e.keys)
            return
        if isinstance(e, A.Wait):
            yield from self._exec_wait(e)
            return
        if isinstance(e, A.Verify):
            self._exec_verify(e)
            return
        if isinstance(e, A.FateBlock):
            try:
                yield from self.exec_expr(e.body)
            except ReturnSignal:
                return
            return
        if isinstance(e, A.Transaction):
            yield from self._exec_transaction(e)
            return
        if isinstance(e, A.Otherwise):
            yield from self._exec_otherwise(e)
            return
        if isinstance(e, (A.Par, A.RepPar)):
            yield from self._exec_parallel(e.items)
            return
        if isinstance(e, A.Case):
            yield from self._exec_case(e)
            return
        if isinstance(e, A.Start):
            self.system.exec_start(e, self.jr)
            return
        if isinstance(e, A.Stop):
            self.system.exec_stop(e, self.jr)
            return
        if isinstance(e, A.Call):
            raise DslFailure(f"{self.jr.node}: unexpanded function call {e}")
        if isinstance(e, (A.For, A.If)):
            raise DslFailure(f"{self.jr.node}: unexpanded template {type(e).__name__}")
        raise DslFailure(f"{self.jr.node}: cannot execute {type(e).__name__}")

    # -- host ---------------------------------------------------------------

    def _exec_host(self, e: A.HostBlock) -> Generator:
        fn = self.jr.instance.type.host_fns.get(e.name)
        if fn is None:
            raise HostError(f"{self.jr.node}: no host binding for {e.name!r}")
        if self.system.engine.executor.inline:
            # the sim path: run synchronously inside the strand.  This
            # branch must stay exactly as it always was — any extra
            # yield would reorder the pump and break schedule replay.
            ctx = HostContext(self.system, self.jr, e.writes)
            try:
                fn(ctx)
            except DslFailure:
                raise
            except Exception as exc:
                err = HostError(f"{self.jr.node}: host block {e.name!r} raised {exc!r}")
                err.__cause__ = exc
                raise err from exc
        else:
            # engine-executor path (realtime thread pool): the strand
            # parks while the host function runs off the runtime thread;
            # writes are deferred into the context and applied on the
            # runtime thread at completion (see HostContext.defer_writes)
            ctx = HostContext(self.system, self.jr, e.writes, defer_writes=True)
            yield Blocked("host", fn=fn, ctx=ctx, name=e.name)
        if ctx.elapsed > 0:
            yield Blocked("sleep", duration=ctx.elapsed)

    # -- save / restore ------------------------------------------------------

    def _providers_for(self, name: str):
        t = self.jr.instance.type
        return t.data_state.get(name, t.state)

    def _exec_save(self, e: A.Save) -> None:
        prov = self._providers_for(e.name)
        if prov.save is None:
            raise HostError(
                f"{self.jr.node}: no state provider registered for save({e.name})"
            )
        obj = prov.save(self.jr.instance.app, self.jr.instance)
        payload = self.system.serializer.encode(prov.schema, obj)
        self.table.set_local(e.name, payload)

    def _exec_restore(self, e: A.Restore) -> None:
        value = self.table.get(e.name)
        if value is UNDEF:
            raise UndefError(f"{self.jr.node}: restore({e.name}) of undef")
        prov = self._providers_for(e.name)
        if prov.restore is None:
            raise HostError(
                f"{self.jr.node}: no state provider registered for restore({e.name})"
            )
        obj = self.system.serializer.decode(value)
        prov.restore(self.jr.instance.app, self.jr.instance, obj)

    # -- communication ----------------------------------------------------------

    def _exec_write(self, e: A.Write) -> Generator:
        value = self.table.get(e.name)
        if value is UNDEF:
            raise UndefError(f"{self.jr.node}: write({e.name}) of undef")
        target = self.system.resolve_target(e.target, self.jr)
        yield from self._remote_update(target, e.name, value)

    def _exec_assert(self, e, value: bool) -> Generator:
        key = self._resolve_prop_key(e)
        if isinstance(e.target, A.SelfTarget):
            self.table.set_local(key, value)
            return
        target = self.system.resolve_target(e.target, self.jr)
        seq_before = self.table.recv_seq_of(key)
        yield from self._remote_update(target, key, value)
        # local effect only after the remote update is acknowledged —
        # and only if no remote update to the key arrived in between
        # (an ack, possibly of a retransmission, confirms old state and
        # must not clobber newer information)
        if self.table.has(key) and self.table.recv_seq_of(key) == seq_before:
            self.table.set_local(key, value)

    def _resolve_prop_key(self, e) -> str:
        index = e.index
        if isinstance(index, A.Ref):
            # an index variable (idx decl) resolves through the table
            if index.is_simple and index.name in self.jr.idx_names:
                v = self.table.get(index.name)
                if v is UNDEF:
                    raise UndefError(f"{self.jr.node}: index {index.name!r} is undef")
                return f"{e.prop}[{v}]"
        return e.key()

    def _remote_update(self, target: "JunctionRuntime", key: str, value: object) -> Generator:
        msg_id = self.system.network.next_msg_id()
        tel = self.system.telemetry
        tel.bind_message(
            msg_id,
            tel.emit(
                "send",
                self.jr.node,
                parent=self.sched_event,
                dst=target.node,
                key=key,
                msg_id=msg_id,
            ),
        )
        # reliable send: retransmitted with backoff until acked; raises
        # DeliveryFailure synchronously if the link's breaker is open
        self.system.delivery.send(
            Message(
                src=self.jr.node,
                dst=target.node,
                kind="update",
                payload=Update(key=key, value=value, src=self.jr.node),
                msg_id=msg_id,
            ),
            on_fail=lambda exc, m=msg_id: self.on_delivery_failure(m, exc),
        )
        yield Blocked("ack", msg_id=msg_id)

    # -- wait -----------------------------------------------------------------

    def _exec_wait(self, e: A.Wait) -> Generator:
        # idx cursors are resolved once, at wait entry (the cursor is a
        # constant for the remainder of the blocked statement)
        formula = self.resolve_indices(e.formula)
        admits = frozenset(propositions(formula)) | frozenset(e.keys)
        yield Blocked("wait", formula=formula, admits=admits)

    # -- verify ---------------------------------------------------------------

    def _exec_verify(self, e: A.Verify) -> None:
        v = self.eval_formula(e.formula)
        if v is UNKNOWN:
            raise VerifyUnknown(f"{self.jr.node}: verify {e.formula} is undecidable (instance not running)")
        if v is not True:
            raise VerifyFailure(f"{self.jr.node}: verify {e.formula} failed")

    # -- blocks -----------------------------------------------------------------

    def tx_open(self) -> _TxScope:
        """Open a ``<|E|>`` undo scope owned by the current strand
        (shared by the interpreter and compiled bodies)."""
        tx = _TxScope(self._current)
        self.active_txs.append(tx)
        return tx

    def tx_commit(self, tx: _TxScope) -> None:
        tx.active = False
        self.active_txs.remove(tx)

    def tx_rollback(self, tx: _TxScope) -> None:
        tx.active = False
        for key, old in reversed(tx.log):
            self.table.values[key] = old
        self.active_txs.remove(tx)

    def _exec_transaction(self, e: A.Transaction) -> Generator:
        tx = self.tx_open()
        try:
            yield from self.exec_expr(e.body)
        except ControlSignal:
            self.tx_commit(tx)  # return/retry are not failures: changes persist
            raise
        except DslFailure:
            self.tx_rollback(tx)
            raise
        except GeneratorExit:
            self.tx_rollback(tx)
            raise
        else:
            self.tx_commit(tx)

    def open_deadline(self, timeout: float) -> _DeadlineScope:
        """Arm an ``otherwise[t]`` deadline scope owned by the current
        strand (shared by the interpreter and compiled bodies)."""
        deadline = self.system.clock.now + timeout
        scope = _DeadlineScope(self._current, deadline)
        scope.handle = self.system.clock.call_at(
            deadline,
            lambda sc=scope: self._deadline_fired(sc),
            label=self.jr._label_deadline,
            footprint=self.jr._fp_strand,
        )
        return scope

    def _exec_otherwise(self, e: A.Otherwise) -> Generator:
        scope = None
        if e.timeout is not None:
            scope = self.open_deadline(self.eval_arg_number(e.timeout))
        try:
            yield from self.exec_expr(e.body)
        except DslFailure as f:
            self._close_scope(scope)
            if isinstance(f, ScopedTimeout) and f.scope is not scope:
                # a deadline belonging to an *enclosing* otherwise —
                # not ours to absorb (exceptions stay within a strand,
                # so the scope can only be an ancestor's)
                raise
            yield from self.exec_expr(e.handler)
            return
        except BaseException:
            self._close_scope(scope)
            raise
        self._close_scope(scope)

    def _close_scope(self, scope: _DeadlineScope | None) -> None:
        if scope is None:
            return
        scope.active = False
        if scope.handle is not None:
            scope.handle.cancel()

    def _deadline_fired(self, scope: _DeadlineScope) -> None:
        if not scope.active or self.finished:
            return
        scope.active = False
        # a scope opened during eager compiled execution (before the
        # root strand was materialized) belongs to the root
        strand = scope.strand if scope.strand is not None else self.root
        if strand is None:
            return
        failure = ScopedTimeout(scope)
        if strand.state == "blocked":
            self._wake(strand, throw=failure)
        elif strand.state == "ready":
            strand.pending_throw = failure

    # -- parallel ----------------------------------------------------------------

    def spawn_par(self, gens) -> list[Strand]:
        """Register child strands for the given generators under the
        current strand (shared by the interpreter and compiled bodies)."""
        strand = self._current
        children = [Strand(gen, parent=strand) for gen in gens]
        for c in children:
            self.strands[c.id] = c
            self.ready.append(c)
        return children

    def _exec_parallel(self, items) -> Generator:
        children = self.spawn_par([self.exec_expr(item) for item in items])
        yield Blocked("join", children=children)

    # -- case -------------------------------------------------------------------

    def _prop_snapshot(self) -> dict:
        return {k: v for k, v in self.table.values.items() if isinstance(v, bool)}

    def _exec_case(self, e: A.Case) -> Generator:
        lower = 0
        prev_match: int | None = None
        prev_snapshot: dict | None = None
        while True:
            matched = None
            for i in range(lower, len(e.arms)):
                arm = e.arms[i]
                if self._formula_true(arm.formula):
                    matched = i
                    break
            if matched is None:
                yield from self.exec_expr(e.otherwise)
                return
            snapshot = self._prop_snapshot()
            if prev_match is not None and matched == prev_match and snapshot == prev_snapshot:
                raise ReconsiderFailure(
                    f"{self.jr.node}: reconsider re-matched arm {matched} with unchanged state"
                )
            arm = e.arms[matched]
            yield from self.exec_expr(arm.body)
            term = arm.terminator
            if term == "break":
                return
            if term == "next":
                lower = matched + 1
                prev_match = None
                prev_snapshot = None
                continue
            if term == "reconsider":
                lower = 0
                prev_match = matched
                prev_snapshot = snapshot
                continue
            raise DslFailure(f"{self.jr.node}: unknown case terminator {term!r}")
