"""Channel abstractions of the libcompart stand-in.

The paper's runtime (libcompart) wraps OS IPC — TCP sockets and pipes —
into channels between instances.  Here a :class:`Network` carries
messages between junctions over the simulator, with configurable
per-link latency, loss and partitions, which the fault-injection API
(:mod:`repro.runtime.faults`) manipulates during experiments.

Messages are *KV updates* (write/assert/retract) plus their
acknowledgements; the runtime layers the paper's "remote update then
local effect on ack" protocol (sec. 8's ``Wr_{J,γ}`` pairs) on top.
The transport itself is unreliable by design — at-least-once semantics
are provided one layer up by :mod:`repro.runtime.delivery`.

Beyond loss and partitions, the transport exposes two chaos knobs used
by :mod:`repro.runtime.chaos`:

* ``duplicate_probability`` — a sent message is delivered twice with
  this probability (each copy drawing its own latency), exercising the
  receiver-side msg-id dedup;
* ``reorder_jitter`` — each delivery adds a uniform random extra
  latency in ``[0, reorder_jitter]``, so later messages can overtake
  earlier ones.

The Network is engine-agnostic: link *policy* (latency resolution,
loss, partitions, duplication, reordering) is decided here, on the
engine's clock, and the resulting delivery is handed to the engine's
:class:`~repro.runtime.engine.Transport`, which invokes
:meth:`Network.dispatch` after the latency elapses — as a simulator
timer, a wall-clock asyncio timer, or a framed TCP round trip.
Because every fault knob lives on this side of the seam, chaos
schedules behave identically under every engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..semantics.commute import Footprint, key_token
from ..telemetry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover
    from ..telemetry import Telemetry
    from .engine import Clock, Transport


@dataclass(frozen=True)
class Message:
    """A network message between junctions.

    ``kind`` is ``'update'`` or ``'ack'``; ``payload`` carries the
    update description (key, value, update kind) or the ack token.
    """

    src: str  # "instance::junction"
    dst: str
    kind: str
    payload: object
    msg_id: int = 0


@dataclass
class LinkConfig:
    """Per-link behaviour; ``None`` fields fall back to defaults."""

    latency: float | None = None
    drop_probability: float | None = None


#: Counters preset in the ``Network.stats`` legacy view; per-kind
#: counters (``update_sent``, ``ack_dropped``, …) appear lazily as
#: messages of each kind flow.  ``retransmits``, ``delivery_failures``
#: and ``fast_fails`` are maintained by the reliable-delivery layer;
#: ``dedup_suppressed`` by the receiver-side dedup in ``System``.  The
#: backing store is a :class:`~repro.telemetry.MetricsRegistry` of
#: ``net_<event>`` counters labeled per message kind and per directed
#: instance link; ``stats`` aggregates them back into the flat dict
#: shape the pre-telemetry API exposed.
_BASE_STATS = (
    "sent",
    "delivered",
    "dropped",
    "duplicated",
    "retransmits",
    "delivery_failures",
    "fast_fails",
    "dedup_suppressed",
)


class Network:
    """Simulated message transport with latency, loss and partitions.

    Endpoints register a delivery callback keyed by junction node name
    (``"instance::junction"``).  Sending to an unregistered or
    partitioned endpoint silently drops the message — failure surfaces
    at the sender as a missing acknowledgement, detected by the
    reliable-delivery layer's retransmission timers (or by
    ``otherwise`` deadlines), exactly as in a real deployment.
    """

    def __init__(
        self,
        clock: "Clock",
        *,
        default_latency: float = 0.05,
        intra_latency: float = 0.0005,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        reorder_jitter: float = 0.0,
        rng=None,
        metrics: MetricsRegistry | None = None,
        transport: "Transport | None" = None,
    ):
        self.clock = clock
        if transport is None:
            # a bare Network (unit tests, direct control arms) defaults
            # to in-process clock-timer delivery
            from .engine import ClockTransport

            transport = ClockTransport()
            transport.bind(self, clock)
        self.transport = transport
        self.default_latency = default_latency
        self.intra_latency = intra_latency
        self.drop_probability = drop_probability
        self.duplicate_probability = duplicate_probability
        self.reorder_jitter = reorder_jitter
        self._rng = rng
        self._endpoints: dict[str, Callable[[Message], None]] = {}
        self._links: dict[tuple[str, str], LinkConfig] = {}
        self._partitions: set[frozenset] = set()
        self._down: set[str] = set()
        self._msg_counter = 0
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: set by System so transport-level drops appear in the causal
        #: trace; a bare Network (unit tests) leaves it None
        self.telemetry: "Telemetry | None" = None
        self._counters: dict[tuple, object] = {}

    @property
    def sim(self):
        """Back-compat alias: the engine clock this network schedules on."""
        return self.clock

    # -- wiring -------------------------------------------------------------

    def register(self, node: str, deliver: Callable[[Message], None]) -> None:
        self._endpoints[node] = deliver

    def unregister(self, node: str) -> None:
        self._endpoints.pop(node, None)

    def configure_link(self, src: str, dst: str, config: LinkConfig) -> None:
        """Set latency/loss for a specific directed link.  ``src`` and
        ``dst`` are instance names (links are instance-to-instance)."""
        self._links[(src, dst)] = config

    def set_link_loss(self, src: str, dst: str, p: float | None) -> None:
        """Set (or with ``None`` clear) the drop probability of one
        directed link, preserving any latency override."""
        link = self._links.get((src, dst))
        if link is None:
            if p is None:
                return
            link = LinkConfig()
            self._links[(src, dst)] = link
        link.drop_probability = p

    def link_latency(self, src_inst: str, dst_inst: str) -> float:
        """The configured one-way latency of a directed link."""
        link = self._links.get((src_inst, dst_inst))
        if link is not None and link.latency is not None:
            return link.latency
        return self.intra_latency if src_inst == dst_inst else self.default_latency

    # -- fault injection ------------------------------------------------------

    def partition(self, group_a: set[str], group_b: set[str]) -> None:
        """Cut connectivity between two groups of instance names."""
        for a in group_a:
            for b in group_b:
                self._partitions.add(frozenset((a, b)))

    def heal_partition(self) -> None:
        self._partitions.clear()

    def set_down(self, instance: str, down: bool = True) -> None:
        """Mark an instance unreachable (crash)."""
        if down:
            self._down.add(instance)
        else:
            self._down.discard(instance)

    def is_partitioned(self, inst_a: str, inst_b: str) -> bool:
        return frozenset((inst_a, inst_b)) in self._partitions

    # -- stats ------------------------------------------------------------------

    def count(
        self,
        event: str,
        kind: str | None = None,
        src: str | None = None,
        dst: str | None = None,
    ) -> None:
        """Increment the ``net_<event>`` counter labeled by message
        ``kind`` and directed instance link ``src``→``dst`` (labels are
        omitted when unknown).  Handles are cached per combination, so
        the hot path is one dict hit + one integer increment."""
        key = (event, kind, src, dst)
        c = self._counters.get(key)
        if c is None:
            labels = {}
            if kind is not None:
                labels["kind"] = kind
            if src is not None:
                labels["src"] = src
            if dst is not None:
                labels["dst"] = dst
            c = self._counters[key] = self.metrics.counter(f"net_{event}", **labels)
        c.inc()

    @property
    def stats(self) -> dict:
        """The flat pre-telemetry counter view, aggregated from the
        registry: ``sent``/``dropped``/… totals plus per-kind variants
        (``update_sent``, ``ack_dropped``, …)."""
        out = {k: 0 for k in _BASE_STATS}
        for name, labels, metric in self.metrics.collect("net_"):
            event = name[4:]
            out[event] = out.get(event, 0) + metric.value
            kind = labels.get("kind")
            if kind is not None:
                k = f"{kind}_{event}"
                out[k] = out.get(k, 0) + metric.value
        return out

    # -- sending ----------------------------------------------------------------

    @staticmethod
    def _instance_of(node: str) -> str:
        return node.split("::", 1)[0]

    def send(self, msg: Message) -> None:
        """Send ``msg``; delivery is scheduled on the simulator."""
        src_inst = self._instance_of(msg.src)
        dst_inst = self._instance_of(msg.dst)
        self.count("sent", msg.kind, src_inst, dst_inst)

        if (
            dst_inst in self._down
            or src_inst in self._down
            or self.is_partitioned(src_inst, dst_inst)
        ):
            self._drop(msg, src_inst, dst_inst, "unreachable")
            return

        link = self._links.get((src_inst, dst_inst))
        latency = self.intra_latency if src_inst == dst_inst else self.default_latency
        drop_p = self.drop_probability
        if link is not None:
            if link.latency is not None:
                latency = link.latency
            if link.drop_probability is not None:
                drop_p = link.drop_probability

        self._schedule_delivery(msg, latency, drop_p, src_inst, dst_inst)
        if (
            self.duplicate_probability > 0.0
            and self._rng is not None
            and self._rng.random() < self.duplicate_probability
        ):
            self.count("duplicated", msg.kind, src_inst, dst_inst)
            self._schedule_delivery(msg, latency, drop_p, src_inst, dst_inst)

    def _drop(self, msg: Message, src_inst: str, dst_inst: str, reason: str) -> None:
        self.count("dropped", msg.kind, src_inst, dst_inst)
        tel = self.telemetry
        if tel is not None and tel.enabled:
            tel.emit(
                "drop",
                msg.dst,
                parent=tel.message_event(msg.msg_id),
                msg_kind=msg.kind,
                src=msg.src,
                msg_id=msg.msg_id,
                reason=reason,
            )

    def _schedule_delivery(
        self, msg: Message, latency: float, drop_p: float, src_inst: str, dst_inst: str
    ) -> None:
        if drop_p > 0.0 and self._rng is not None and self._rng.random() < drop_p:
            self._drop(msg, src_inst, dst_inst, "loss")
            return
        if self.reorder_jitter > 0.0 and self._rng is not None:
            latency += self._rng.uniform(0.0, self.reorder_jitter)

        # label + footprint make the delivery a replayable, reorderable
        # choice for the exploration harness: an update touches the
        # destination key; an ack wakes the destination's waiting strand
        if msg.kind == "update":
            key = getattr(msg.payload, "key", "?")
            label = f"deliver:update:{msg.src}->{msg.dst}#{key}:{msg.msg_id}"
            fp = Footprint.make(writes=[key_token(msg.dst, key)])
        else:
            label = f"deliver:{msg.kind}:{msg.src}->{msg.dst}:{msg.msg_id}"
            fp = Footprint.make(writes=[key_token(msg.dst, "__strand__")])
        self.transport.deliver(msg, latency, self.dispatch, label=label, footprint=fp)

    def dispatch(self, msg: Message) -> None:
        """Receiver-side delivery, invoked by the transport once the
        link latency has elapsed.  Re-checks reachability at delivery
        time: a crash (of either endpoint) or a partition during flight
        loses the message."""
        src_inst = self._instance_of(msg.src)
        dst_inst = self._instance_of(msg.dst)
        if (
            dst_inst in self._down
            or src_inst in self._down
            or self.is_partitioned(src_inst, dst_inst)
        ):
            self._drop(msg, src_inst, dst_inst, "unreachable")
            return
        handler = self._endpoints.get(msg.dst)
        if handler is None:
            self._drop(msg, src_inst, dst_inst, "unregistered")
            return
        self.count("delivered", msg.kind, src_inst, dst_inst)
        handler(msg)

    def next_msg_id(self) -> int:
        self._msg_counter += 1
        return self._msg_counter
