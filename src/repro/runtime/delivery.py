"""Reliable at-least-once delivery of remote KV updates.

The paper's runtime layers a "remote update then local effect on ack"
protocol (sec. 8's ``Wr_{J,γ}`` pairs) over lossy OS channels; C-Saw's
``otherwise[t]``/``retry`` idioms exist because that delivery can fail.
Without this module a sender whose update (or whose ack) is lost blocks
until an explicit ``otherwise`` deadline rescues it.  This module gives
every outbound update *at-least-once* semantics instead:

* **Retransmission** — each update is tracked until acknowledged; an
  unacknowledged message is re-sent on a timer with exponential backoff
  and seeded jitter, so a lossy link merely delays the ack rather than
  wedging the strand.  Retransmission makes delivery at-least-once; the
  receiver-side msg-id dedup (:meth:`repro.runtime.kvtable.KVTable.note_msg_id`)
  restores exactly-once *application* of updates.
* **Bounded attempts** — after ``max_attempts`` transmissions the
  delivery layer gives up and throws
  :class:`~repro.core.errors.DeliveryFailure` into the waiting strand,
  so enclosing ``otherwise`` handlers fire promptly instead of waiting
  for their own deadline.
* **Circuit breaking** — per-link consecutive-failure tracking: after
  ``breaker_threshold`` exhausted deliveries to a peer the link opens
  and further sends fast-fail synchronously (again a
  ``DeliveryFailure``).  After ``breaker_cooldown`` one probe send is
  let through (half-open); its ack closes the link again.

Acks themselves are fire-and-forget (acks are not acked); a lost ack is
recovered by the *update's* retransmission, which the receiver dedups
and re-acknowledges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..core.errors import DeliveryFailure
from ..semantics.commute import Footprint, key_token
from .channels import Message

if TYPE_CHECKING:  # pragma: no cover
    from .system import System


@dataclass
class DeliveryPolicy:
    """Tuning of the reliable-delivery layer.

    The initial retransmission timeout is
    ``clamp(rtt_multiplier * 2 * link_latency, min_timeout, max_timeout)``
    and grows by ``backoff`` per attempt; every delay is jittered by a
    seeded ``±jitter`` fraction to avoid retransmission synchronization.
    ``max_attempts <= 0`` disables the layer entirely (sends become
    fire-and-forget, the pre-reliability behaviour).
    """

    max_attempts: int = 6
    rtt_multiplier: float = 4.0
    min_timeout: float = 0.01
    max_timeout: float = 30.0
    backoff: float = 2.0
    jitter: float = 0.25
    breaker_threshold: int = 3
    breaker_cooldown: float = 5.0


class LinkHealth:
    """Circuit-breaker state of one directed instance-to-instance link."""

    __slots__ = ("state", "consecutive_failures", "opened_at", "probe_in_flight")

    def __init__(self):
        self.state = "closed"  # 'closed' | 'open' | 'half-open'
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probe_in_flight = False

    def record_success(self) -> None:
        self.state = "closed"
        self.consecutive_failures = 0
        self.probe_in_flight = False

    def record_failure(self, now: float, threshold: int) -> None:
        self.consecutive_failures += 1
        was_probe = self.state == "half-open"
        self.probe_in_flight = False
        if was_probe or self.consecutive_failures >= threshold:
            self.state = "open"
            self.opened_at = now


class _Pending:
    """One tracked outbound update awaiting its ack."""

    __slots__ = ("msg", "attempts", "timeout", "handle", "on_fail", "link", "is_probe")

    def __init__(self, msg: Message, timeout: float, on_fail, link: tuple[str, str]):
        self.msg = msg
        self.attempts = 1
        self.timeout = timeout
        self.handle = None
        self.on_fail = on_fail
        self.link = link
        self.is_probe = False


class ReliableDelivery:
    """Retransmission, backoff and circuit breaking over a Network."""

    def __init__(self, system: "System", policy: DeliveryPolicy | None = None, *, seed: int = 0):
        self.system = system
        self.policy = policy or DeliveryPolicy()
        # independent RNG stream: jitter draws must not perturb the
        # network's seeded loss/latency draws
        self._rng = random.Random(seed * 1_000_003 + 17)
        self.outstanding: dict[int, _Pending] = {}
        self.links: dict[tuple[str, str], LinkHealth] = {}

    # -- link health ---------------------------------------------------------

    def link_health(self, src_inst: str, dst_inst: str) -> LinkHealth:
        key = (src_inst, dst_inst)
        h = self.links.get(key)
        if h is None:
            h = self.links[key] = LinkHealth()
        return h

    # -- sending -------------------------------------------------------------

    def send(self, msg: Message, on_fail: Callable[[BaseException], None] | None = None) -> None:
        """Send ``msg`` reliably.

        ``on_fail`` is invoked (from a simulator callback) with a
        :class:`DeliveryFailure` once every attempt is exhausted.  When
        the destination link's circuit breaker is open, the failure is
        raised synchronously instead — the fast-fail path.
        """
        net = self.system.network
        if self.policy.max_attempts <= 0:
            net.send(msg)
            return
        src_inst = net._instance_of(msg.src)
        dst_inst = net._instance_of(msg.dst)
        link = (src_inst, dst_inst)
        health = self.link_health(src_inst, dst_inst)
        now = self.system.clock.now

        if health.state == "open":
            if now - health.opened_at >= self.policy.breaker_cooldown:
                health.state = "half-open"
            else:
                net.count("fast_fails", msg.kind, src_inst, dst_inst)
                raise DeliveryFailure(
                    f"{msg.src}: link to {dst_inst} is circuit-open "
                    f"({health.consecutive_failures} consecutive delivery failures)"
                )
        probe = False
        if health.state == "half-open":
            if health.probe_in_flight:
                net.count("fast_fails", msg.kind, src_inst, dst_inst)
                raise DeliveryFailure(
                    f"{msg.src}: link to {dst_inst} is half-open with a probe in flight"
                )
            health.probe_in_flight = True
            probe = True

        rtt = 2.0 * net.link_latency(src_inst, dst_inst)
        timeout = min(
            max(self.policy.rtt_multiplier * rtt, self.policy.min_timeout),
            self.policy.max_timeout,
        )
        pending = _Pending(msg, timeout, on_fail, link)
        pending.is_probe = probe
        self.outstanding[msg.msg_id] = pending
        net.send(msg)
        self._arm_timer(pending)

    def _arm_timer(self, pending: _Pending) -> None:
        delay = pending.timeout * (1.0 + self.policy.jitter * (2.0 * self._rng.random() - 1.0))
        msg = pending.msg
        pending.handle = self.system.clock.call_after(
            delay,
            lambda mid=msg.msg_id: self._retransmit(mid),
            label=f"retransmit:{msg.src}->{msg.dst}:{msg.msg_id}",
            footprint=Footprint.make(writes=[key_token(msg.src, "__delivery__")]),
        )

    def _retransmit(self, msg_id: int) -> None:
        pending = self.outstanding.get(msg_id)
        if pending is None:
            return
        if pending.attempts >= self.policy.max_attempts:
            self._exhausted(pending)
            return
        pending.attempts += 1
        pending.timeout = min(pending.timeout * self.policy.backoff, self.policy.max_timeout)
        net = self.system.network
        net.count("retransmits", pending.msg.kind, *pending.link)
        tel = self.system.telemetry
        tel.emit(
            "retransmit",
            pending.msg.src,
            parent=tel.message_event(msg_id),
            dst=pending.msg.dst,
            msg_id=msg_id,
            attempt=pending.attempts,
        )
        net.send(pending.msg)
        self._arm_timer(pending)

    def _exhausted(self, pending: _Pending) -> None:
        msg = pending.msg
        del self.outstanding[msg.msg_id]
        health = self.link_health(*pending.link)
        health.record_failure(self.system.clock.now, self.policy.breaker_threshold)
        self.system.network.count("delivery_failures", msg.kind, *pending.link)
        tel = self.system.telemetry
        tel.emit(
            "delivery_failed",
            msg.src,
            parent=tel.message_event(msg.msg_id),
            dst=msg.dst,
            msg_id=msg.msg_id,
            attempts=pending.attempts,
            breaker=health.state,
        )
        if pending.on_fail is not None:
            pending.on_fail(
                DeliveryFailure(
                    f"{msg.src}: update {msg.msg_id} to {msg.dst} unacknowledged "
                    f"after {pending.attempts} attempts"
                )
            )

    # -- resolution ----------------------------------------------------------

    def ack(self, msg_id: int) -> None:
        """An acknowledgement for ``msg_id`` arrived at the sender."""
        pending = self.outstanding.pop(msg_id, None)
        if pending is None:
            return
        if pending.handle is not None:
            pending.handle.cancel()
        self.link_health(*pending.link).record_success()

    def cancel(self, msg_id: int) -> None:
        """Stop tracking ``msg_id`` without a delivery verdict (the
        waiting strand was cancelled by an ``otherwise`` deadline, a
        crash, or a stop).  Does not count against the link's health."""
        pending = self.outstanding.pop(msg_id, None)
        if pending is None:
            return
        if pending.handle is not None:
            pending.handle.cancel()
        if pending.is_probe:
            # the probe's outcome is unknown; stay open and let the
            # next post-cooldown send probe again
            health = self.link_health(*pending.link)
            if health.state == "half-open":
                health.state = "open"
            health.probe_in_flight = False
