"""redislite — a mini single-threaded Redis standing in for Redis v2.0.2."""

from .bench import BenchDriver, BenchResults, DirectPort, RequestPort
from .server import Command, CostModel, RedisServer, Reply
from .store import DataStore, WrongTypeError
from .workload import SIZE_CLASSES, WorkloadConfig, WorkloadGenerator, djb2

__all__ = [
    "BenchDriver",
    "BenchResults",
    "Command",
    "CostModel",
    "DataStore",
    "DirectPort",
    "RedisServer",
    "Reply",
    "RequestPort",
    "SIZE_CLASSES",
    "WorkloadConfig",
    "WorkloadGenerator",
    "WrongTypeError",
    "djb2",
]
