"""A ``redis-benchmark``-style closed-loop driver.

``redis-benchmark`` runs N concurrent client connections, each issuing
the next request as soon as the previous completes.  The
:class:`BenchDriver` reproduces that on the simulator against any
:class:`RequestPort` — the small protocol every architecture in this
repository implements (baseline direct service, DSL-architected
sharding/caching/checkpointing fronts, and the non-DSL control
implementations).

Results collect completion timestamps and latencies, yielding the
throughput-over-time series (Figs. 23a/23c), cumulative per-class
request counts (Figs. 23b/26c) and latency CDFs (Figs. 25c/26b).

Each driver also feeds a :class:`~repro.telemetry.MetricsRegistry`:
per-op ``bench_latency_seconds`` histograms and ``bench_completions``
counters.  ``mean_latency`` is answered from the histogram's exact
sum/count (percentiles and CDFs still use the raw completion log —
figure assertions need unquantized latencies).  Pass ``metrics=`` to
aggregate several runs into one registry (e.g. the system's own, via
``system.telemetry.metrics``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

from ..runtime.sim import Simulator
from ..telemetry import MetricsRegistry
from .server import Command, RedisServer, Reply
from .workload import WorkloadGenerator


class RequestPort(Protocol):
    """Anything that can asynchronously serve commands."""

    def submit(self, cmd: Command, on_done: Callable[[Reply], None]) -> None:
        """Submit ``cmd``; invoke ``on_done(reply)`` when served."""


class DirectPort:
    """Baseline: clients talk straight to one single-threaded server.

    Models the network round-trip plus serial service: the server works
    off a queue; a request's latency is queueing + service + RTT.  A
    ``stall_until`` knob lets experiments freeze the server (checkpoint
    stalls, crash recovery) without an architecture in front.
    """

    def __init__(self, sim: Simulator, server: RedisServer, rtt: float = 200e-6):
        self.sim = sim
        self.server = server
        self.rtt = rtt
        self._busy_until = 0.0
        self._stalled_until = 0.0

    def stall(self, duration: float) -> None:
        """Freeze service for ``duration`` starting now."""
        self._stalled_until = max(self._stalled_until, self.sim.now + duration)
        self._busy_until = max(self._busy_until, self._stalled_until)

    def submit(self, cmd: Command, on_done: Callable[[Reply], None]) -> None:
        arrival = self.sim.now + self.rtt / 2
        start = max(arrival, self._busy_until, self._stalled_until)

        def serve():
            reply, cost = self.server.execute(cmd, now=self.sim.now)
            done_at = self.sim.now + cost + self.rtt / 2
            self.sim.call_at(done_at, lambda: on_done(reply))

        self._busy_until = start
        # reserve service time now so later submits queue behind us
        _, est_cost = _estimate_cost(self.server, cmd)
        self._busy_until = start + est_cost
        self.sim.call_at(start, serve)


def _estimate_cost(server: RedisServer, cmd: Command) -> tuple[None, float]:
    c = server.cost
    return None, c.per_command + cmd.payload_size() * c.per_byte


@dataclass
class BenchResults:
    """Completion log + latency metrics of one benchmark run."""

    completions: list[tuple[float, float, Command, Reply]] = field(default_factory=list)
    started_at: float = 0.0
    finished_at: float = 0.0
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def record(self, t: float, latency: float, cmd: Command, reply: Reply) -> None:
        self.completions.append((t, latency, cmd, reply))
        self.metrics.histogram("bench_latency_seconds", op=cmd.op).observe(latency)
        self.metrics.counter("bench_completions", op=cmd.op).inc()

    @property
    def count(self) -> int:
        return len(self.completions)

    def latencies(self, op: str | None = None) -> list[float]:
        return [
            lat
            for (_t, lat, cmd, _r) in self.completions
            if op is None or cmd.op == op
        ]

    def qps_series(self, dt: float = 1.0) -> list[tuple[float, float]]:
        """(bucket_time, completions/s) series."""
        if not self.completions:
            return []
        t0 = self.started_at
        buckets: dict[int, int] = {}
        for (t, _lat, _c, _r) in self.completions:
            buckets[int((t - t0) / dt)] = buckets.get(int((t - t0) / dt), 0) + 1
        top = max(buckets)
        return [(i * dt, buckets.get(i, 0) / dt) for i in range(top + 1)]

    def cumulative_by(self, classify: Callable[[Command], object], dt: float = 1.0):
        """Cumulative completion counts per class over time — the shape
        plotted by the sharding figures."""
        if not self.completions:
            return {}
        t0 = self.started_at
        end = max(t for (t, *_rest) in self.completions)
        classes = sorted({classify(c) for (_t, _l, c, _r) in self.completions}, key=str)
        times = [t0 + i * dt for i in range(int((end - t0) / dt) + 2)]
        series = {cls: [0] * len(times) for cls in classes}
        sorted_completions = sorted(self.completions, key=lambda r: r[0])
        counts = {cls: 0 for cls in classes}
        idx = 0
        for ti, t in enumerate(times):
            while idx < len(sorted_completions) and sorted_completions[idx][0] <= t:
                counts[classify(sorted_completions[idx][2])] += 1
                idx += 1
            for cls in classes:
                series[cls][ti] = counts[cls]
        return {"times": [t - t0 for t in times], "series": series}

    def cdf(self, op: str | None = None) -> list[tuple[float, float]]:
        """(latency, cumulative probability) points."""
        lats = sorted(self.latencies(op))
        n = len(lats)
        if n == 0:
            return []
        return [(lat, (i + 1) / n) for i, lat in enumerate(lats)]

    def percentile(self, q: float, op: str | None = None) -> float:
        lats = sorted(self.latencies(op))
        if not lats:
            return float("nan")
        i = min(len(lats) - 1, max(0, int(q * len(lats))))
        return lats[i]

    def mean_latency(self, op: str | None = None) -> float:
        """Mean latency, answered from the registry histograms (their
        sum/count are exact, so this equals the raw-log mean)."""
        total = 0.0
        count = 0
        for _name, labels, h in self.metrics.collect("bench_latency_seconds"):
            if op is None or labels.get("op") == op:
                total += h.sum
                count += h.count
        return total / count if count else float("nan")

    def latency_histogram(self, op: str):
        """The per-op latency histogram (bucketized shape for reports)."""
        return self.metrics.histogram("bench_latency_seconds", op=op)


class BenchDriver:
    """Closed-loop driver: ``clients`` concurrent synthetic clients."""

    def __init__(
        self,
        sim: Simulator,
        port: RequestPort,
        workload: WorkloadGenerator,
        *,
        clients: int = 8,
        think_time: float = 0.0,
        metrics: MetricsRegistry | None = None,
    ):
        self.sim = sim
        self.port = port
        self.workload = workload
        self.clients = clients
        self.think_time = think_time
        # a fresh registry per driver by default, so repeated runs don't
        # aggregate; pass the system's (system.telemetry.metrics) to
        # land bench metrics next to the runtime's
        self.results = BenchResults(
            metrics=metrics if metrics is not None else MetricsRegistry()
        )
        self._deadline = 0.0
        self._inflight = 0

    def preload(self, server_execute: Callable[[Command], None]) -> None:
        """Warm the dataset synchronously (not measured)."""
        for cmd in self.workload.preload_commands():
            server_execute(cmd)

    def run(self, duration: float) -> BenchResults:
        """Drive the workload for ``duration`` simulated seconds."""
        self.results.started_at = self.sim.now
        self._deadline = self.sim.now + duration
        for _ in range(self.clients):
            self._issue()
        self.sim.run_until(self._deadline)
        self.results.finished_at = self.sim.now
        return self.results

    def _issue(self) -> None:
        if self.sim.now >= self._deadline:
            return
        cmd = self.workload.next_command()
        issued_at = self.sim.now
        self._inflight += 1

        def on_done(reply: Reply, _cmd=cmd, _t0=issued_at):
            self._inflight -= 1
            self.results.record(self.sim.now, self.sim.now - _t0, _cmd, reply)
            if self.think_time > 0:
                self.sim.call_after(self.think_time, self._issue)
            else:
                self._issue()

        self.port.submit(cmd, on_done)
