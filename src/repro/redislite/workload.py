"""Workload generators in the spirit of ``redis-benchmark``.

Provides deterministic (seeded) request streams with configurable:

* operation mix (GET/SET ratios; redis-benchmark's default exercises
  both),
* key popularity — uniform, or the paper's read-heavy skew where "90%
  of requests are directed at 10% of the entries" (sec. 10.1 Caching),
* value sizes — fixed, or the three-class mix used by object-size
  sharding (0–4 KB, 4–64 KB, >64 KB; sec. 5.2),
* uneven key-class weighting for the sharding experiments ("uneven
  workloads place different pressure on different back-ends").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from .server import Command

#: the paper's object-size quantization boundaries (bytes)
SIZE_CLASSES = ((0, 4096), (4096, 65536), (65536, 262144))


def djb2(s: str) -> int:
    """The djb2 hash, as used for key-based sharding (sec. 10.1)."""
    h = 5381
    for ch in s.encode():
        h = ((h * 33) + ch) & 0xFFFFFFFF
    return h


@dataclass
class WorkloadConfig:
    n_keys: int = 1000
    get_ratio: float = 0.5
    #: None = uniform; otherwise (hot_fraction, hot_weight): e.g.
    #: (0.1, 0.9) sends 90% of requests to 10% of keys.
    skew: tuple[float, float] | None = None
    value_size: int = 64
    #: optional per-key-size-class mix: weights for SIZE_CLASSES
    size_class_weights: tuple[float, ...] | None = None
    #: optional per-shard weighting for *uneven* workloads: maps a key's
    #: djb2 % nshards residue to a relative weight
    shard_weights: tuple[float, ...] | None = None
    seed: int = 42


class WorkloadGenerator:
    """Deterministic request stream."""

    def __init__(self, config: WorkloadConfig | None = None, **overrides):
        cfg = config or WorkloadConfig()
        for k, v in overrides.items():
            if not hasattr(cfg, k):
                raise TypeError(f"unknown workload option {k!r}")
            setattr(cfg, k, v)
        self.config = cfg
        self.rng = random.Random(cfg.seed)
        self._keys = [f"key:{i:08d}" for i in range(cfg.n_keys)]
        self._hot_count = 0
        if cfg.skew is not None:
            hot_fraction, _ = cfg.skew
            self._hot_count = max(1, int(cfg.n_keys * hot_fraction))
        self._key_sizes: dict[str, int] = {}
        if cfg.size_class_weights is not None:
            for k in self._keys:
                lo, hi = self.rng.choices(SIZE_CLASSES, weights=cfg.size_class_weights)[0]
                self._key_sizes[k] = self.rng.randint(lo + 1, hi)
        if cfg.shard_weights is not None:
            n = len(cfg.shard_weights)
            buckets: list[list[str]] = [[] for _ in range(n)]
            for k in self._keys:
                buckets[djb2(k) % n].append(k)
            self._shard_buckets = buckets
        else:
            self._shard_buckets = None

    # -- key selection -------------------------------------------------------

    def pick_key(self) -> str:
        cfg = self.config
        if self._shard_buckets is not None:
            weights = cfg.shard_weights
            idx = self.rng.choices(range(len(weights)), weights=weights)[0]
            bucket = self._shard_buckets[idx]
            if bucket:
                return self.rng.choice(bucket)
            return self.rng.choice(self._keys)
        if cfg.skew is not None:
            _, hot_weight = cfg.skew
            if self.rng.random() < hot_weight:
                return self._keys[self.rng.randrange(self._hot_count)]
            return self._keys[self.rng.randrange(self._hot_count, cfg.n_keys)]
        return self.rng.choice(self._keys)

    def value_for(self, key: str) -> bytes:
        size = self._key_sizes.get(key, self.config.value_size)
        return b"x" * size

    def key_size(self, key: str) -> int:
        return self._key_sizes.get(key, self.config.value_size)

    # -- streams ---------------------------------------------------------------

    def next_command(self) -> Command:
        key = self.pick_key()
        if self.rng.random() < self.config.get_ratio:
            return Command("GET", key)
        return Command("SET", key, self.value_for(key))

    def commands(self, n: int) -> Iterator[Command]:
        for _ in range(n):
            yield self.next_command()

    def preload_commands(self) -> Iterator[Command]:
        """SETs for every key — warms the dataset before measuring."""
        for k in self._keys:
            yield Command("SET", k, self.value_for(k))
