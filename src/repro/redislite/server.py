"""The redislite server: command execution with a service-time model.

A :class:`RedisServer` is the application object C-Saw instances wrap.
It executes :class:`Command` objects against a :class:`DataStore` and
reports how much simulated CPU time each command costs, so host blocks
can call ``ctx.take(cost)`` and the discrete-event simulator reproduces
throughput behaviour (checkpoint stalls, cache gains, shard balance).

The cost model is deliberately simple and documented: a fixed
per-command dispatch cost plus a per-byte payload cost, and a
checkpoint cost proportional to dataset size — enough to reproduce the
*shapes* of the paper's Figs. 23, 25c and 26 without pretending to be
cycle-accurate.
"""

from __future__ import annotations

from dataclasses import dataclass

from .store import DataStore


@dataclass(frozen=True)
class Command:
    """A client command.  ``op`` in {GET, SET, DEL, INCR, APPEND, EXISTS}."""

    op: str
    key: str
    value: bytes = b""

    def payload_size(self) -> int:
        return len(self.value)


@dataclass(frozen=True)
class Reply:
    ok: bool
    value: bytes | None = None
    hit: bool | None = None


@dataclass
class CostModel:
    """Simulated CPU costs (seconds)."""

    per_command: float = 100e-6       # dispatch + parse + respond
    per_byte: float = 0.002e-6        # payload handling
    checkpoint_base: float = 0.050    # fork + metadata
    checkpoint_per_key: float = 4e-6  # serialize one entry
    restore_base: float = 0.080
    restore_per_key: float = 5e-6


class RedisServer:
    """A single-threaded redislite server."""

    def __init__(self, name: str = "redis", cost: CostModel | None = None):
        self.name = name
        self.store = DataStore()
        self.cost = cost or CostModel()
        self.commands_executed = 0

    # -- command execution ---------------------------------------------------

    def execute(self, cmd: Command, now: float = 0.0) -> tuple[Reply, float]:
        """Execute ``cmd``; returns (reply, simulated CPU cost)."""
        self.commands_executed += 1
        cost = self.cost.per_command + cmd.payload_size() * self.cost.per_byte
        op = cmd.op.upper()
        if op == "GET":
            v = self.store.get(cmd.key, now)
            if v is not None:
                cost += len(v) * self.cost.per_byte
            return Reply(ok=True, value=v, hit=v is not None), cost
        if op == "SET":
            self.store.set(cmd.key, cmd.value, now)
            return Reply(ok=True), cost
        if op == "DEL":
            found = self.store.delete(cmd.key, now)
            return Reply(ok=True, hit=found), cost
        if op == "INCR":
            n = self.store.incr(cmd.key, now)
            return Reply(ok=True, value=str(n).encode()), cost
        if op == "APPEND":
            n = self.store.append(cmd.key, cmd.value, now)
            return Reply(ok=True, value=str(n).encode()), cost
        if op == "EXISTS":
            return Reply(ok=True, hit=self.store.exists(cmd.key, now)), cost
        return Reply(ok=False), cost

    # -- checkpointing ------------------------------------------------------------

    def checkpoint(self) -> tuple[dict, float]:
        """Snapshot the full server state; returns (snapshot, stall cost).

        Redis is single-threaded: while the snapshot is serialized the
        server processes nothing — the stall is what produces the dips
        of Fig. 23a / Fig. 24a.
        """
        snap = self.store.snapshot()
        cost = self.cost.checkpoint_base + self.store.size() * self.cost.checkpoint_per_key
        return {"name": self.name, "store": snap}, cost

    def restore(self, snap: dict) -> float:
        self.store.restore(snap["store"])
        return self.cost.restore_base + self.store.size() * self.cost.restore_per_key
