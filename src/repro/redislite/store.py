"""The redislite data store: a faithful-enough single-threaded KV core.

Models the parts of Redis the paper's experiments exercise: string
GET/SET/DEL/EXISTS/INCR/APPEND, key expiry, keyspace iteration, rough
memory accounting (used by object-size sharding), and full-state
snapshot/restore (the substrate for checkpointing/replication
architectures).

Values are ``bytes``.  The store is deliberately synchronous and
single-threaded, matching Redis's execution model — concurrency and
distribution come from the architecture wrapped around it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


class WrongTypeError(Exception):
    """Operation applied to a value of the wrong kind."""


@dataclass
class Entry:
    value: bytes
    expires_at: float | None = None


class DataStore:
    """A single Redis-like keyspace."""

    #: fixed per-entry overhead charged by the memory accountant
    ENTRY_OVERHEAD = 64

    def __init__(self):
        self._data: dict[str, Entry] = {}
        self._memory = 0
        self.stats = {"hits": 0, "misses": 0, "expired": 0, "sets": 0, "dels": 0}

    # -- internals ----------------------------------------------------------

    def _charge(self, key: str, new: bytes | None, old: bytes | None) -> None:
        if old is not None:
            self._memory -= len(old) + len(key) + self.ENTRY_OVERHEAD
        if new is not None:
            self._memory += len(new) + len(key) + self.ENTRY_OVERHEAD

    def _live(self, key: str, now: float) -> Entry | None:
        e = self._data.get(key)
        if e is None:
            return None
        if e.expires_at is not None and now >= e.expires_at:
            self._charge(key, None, e.value)
            del self._data[key]
            self.stats["expired"] += 1
            return None
        return e

    # -- commands --------------------------------------------------------------

    def get(self, key: str, now: float = 0.0) -> bytes | None:
        e = self._live(key, now)
        if e is None:
            self.stats["misses"] += 1
            return None
        self.stats["hits"] += 1
        return e.value

    def set(self, key: str, value: bytes, now: float = 0.0, ttl: float | None = None) -> None:
        if not isinstance(value, bytes):
            raise WrongTypeError("values must be bytes")
        old = self._data.get(key)
        self._charge(key, value, old.value if old else None)
        self._data[key] = Entry(value, (now + ttl) if ttl is not None else None)
        self.stats["sets"] += 1

    def delete(self, key: str, now: float = 0.0) -> bool:
        e = self._live(key, now)
        if e is None:
            return False
        self._charge(key, None, e.value)
        del self._data[key]
        self.stats["dels"] += 1
        return True

    def exists(self, key: str, now: float = 0.0) -> bool:
        return self._live(key, now) is not None

    def incr(self, key: str, now: float = 0.0, by: int = 1) -> int:
        e = self._live(key, now)
        if e is None:
            n = by
        else:
            try:
                n = int(e.value) + by
            except ValueError as exc:
                raise WrongTypeError("value is not an integer") from exc
        self.set(key, str(n).encode(), now)
        return n

    def append(self, key: str, suffix: bytes, now: float = 0.0) -> int:
        e = self._live(key, now)
        value = (e.value if e else b"") + suffix
        self.set(key, value, now)
        return len(value)

    def expire(self, key: str, ttl: float, now: float = 0.0) -> bool:
        e = self._live(key, now)
        if e is None:
            return False
        e.expires_at = now + ttl
        return True

    def keys(self, now: float = 0.0) -> Iterator[str]:
        for k in list(self._data):
            if self._live(k, now) is not None:
                yield k

    def size(self) -> int:
        return len(self._data)

    def object_size(self, key: str, now: float = 0.0) -> int | None:
        """Approximate stored size of ``key`` (for size-aware sharding)."""
        e = self._live(key, now)
        if e is None:
            return None
        return len(e.value)

    @property
    def memory_bytes(self) -> int:
        return self._memory

    def flush(self) -> None:
        self._data.clear()
        self._memory = 0

    # -- checkpointing -------------------------------------------------------------

    def snapshot(self) -> dict:
        """A serializable full-state snapshot."""
        return {
            "entries": {
                k: {"value": e.value, "expires_at": e.expires_at}
                for k, e in self._data.items()
            }
        }

    def restore(self, snap: dict) -> None:
        self.flush()
        for k, rec in snap["entries"].items():
            self._charge(k, rec["value"], None)
            self._data[k] = Entry(rec["value"], rec["expires_at"])
