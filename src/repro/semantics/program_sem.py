"""Program-level semantics: the start-up portion and whole programs.

Sec. 8.4: mapping a program into event structures adds a start-up
portion — an externally-occurring ``main`` event enables
``Start_init(ι)`` events (the distinguished ``init`` junction starts
the instances), each of which enables the ``Wr`` events initializing
the started instance's junction state (Fig. in sec. 8.4).

:func:`denote_program` returns the start-up structure plus one
structure per (instance, junction) pair, denoted with
:class:`~repro.semantics.denote.Denoter`.  The structures are disjoint
components, as in the paper's figures; cross-junction enablements are
implicit in the matching ``Wr``/``Rd`` labels (the dotted arrows of
Fig. 18 are rendered, not composed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core import ast as A
from ..core.compiler import CompiledProgram
from ..core.expand import resolve_me_decl, resolve_me_expr, specialize, to_ast_value
from .denote import Denoter
from .events import AdHoc, StartL, Wr, fresh_event, TT, FF
from .structure import EventStructure

ES = EventStructure


@dataclass
class ProgramSemantics:
    """The event structures of a whole program."""

    startup: ES
    junctions: dict[str, ES]  # "instance::junction" -> structure

    def all_structures(self) -> list[ES]:
        return [self.startup, *self.junctions.values()]

    def total_events(self) -> int:
        return sum(s.size() for s in self.all_structures())


def denote_startup(program: CompiledProgram, env: dict | None = None) -> ES:
    """The start-up portion: ``main`` → ``Start_init(ι)`` → per-instance
    init writes."""
    main_ev = fresh_event(AdHoc("main"))
    es = ES.of_events([main_ev])
    if program.main is None:
        return es
    cfg = program.config_env()
    for k, v in (env or {}).items():
        cfg[k] = to_ast_value(v)
    try:
        body, _ = specialize(program.main.body, (), cfg)
    except Exception:
        body = program.main.body

    inst_map = program.instance_map()
    for node in A.walk(body):
        if not isinstance(node, A.Start):
            continue
        iname = str(node.instance)
        start_ev = fresh_event(StartL("init", iname))
        es = ES(
            es.events | {start_ev},
            es.le | {(main_ev.id, start_ev.id)},
            es.conflict,
        )
        tname = inst_map.get(iname)
        if tname is None:
            continue
        for cj in program.junctions_of_type(tname):
            try:
                _, decls = specialize(cj.body, cj.decls, cfg)
            except Exception:
                decls = cj.decls
            decls = tuple(resolve_me_decl(d, iname, cj.name) for d in decls)
            jnode = f"{iname}::{cj.name}"
            for d in decls:
                if isinstance(d, A.InitProp):
                    wr = fresh_event(Wr(frozenset([jnode]), d.key(), TT if d.value else FF))
                    es = ES(
                        es.events | {wr},
                        es.le | {(start_ev.id, wr.id)},
                        es.conflict,
                    )
    return es


def denote_program(
    program: CompiledProgram,
    env: dict | None = None,
    *,
    max_unfold: int = 1,
) -> ProgramSemantics:
    """Denote start-up plus every instance's junctions.

    ``env`` supplies values for main/junction parameters where needed
    (sets, timeouts); junctions whose parameters remain unbound are
    denoted from their unspecialized bodies (templates intact where
    possible, else skipped with an ``AdHoc`` stub)."""
    cfg = program.config_env()
    for k, v in (env or {}).items():
        cfg[k] = to_ast_value(v)

    startup = denote_startup(program, env)
    junctions: dict[str, ES] = {}
    for iname, tname in program.instance_map().items():
        for cj in program.junctions_of_type(tname):
            node = f"{iname}::{cj.name}"
            try:
                body, decls = specialize(cj.body, cj.decls, cfg)
                body = resolve_me_expr(body, iname, cj.name)
                decls = tuple(resolve_me_decl(d, iname, cj.name) for d in decls)
            except Exception:
                junctions[node] = ES.of_events(
                    [fresh_event(AdHoc(f"unbound({node})", node))]
                )
                continue
            guard = None
            for d in decls:
                if isinstance(d, A.Guard):
                    guard = d.formula
            den = Denoter(node, max_unfold=max_unfold)
            junctions[node] = den.denote_junction(body, guard)
    return ProgramSemantics(startup=startup, junctions=junctions)


def denote_junction(
    program: CompiledProgram,
    node: str,
    env: dict | None = None,
    *,
    expand: bool = True,
    max_unfold: int = 1,
) -> ES:
    """Denote a single junction ``"instance::junction"`` of ``program``
    into its event structure (paper sec. 8.5).

    This is the stable entry point for analysis and compile consumers —
    it wraps the same specialization + :class:`Denoter` pipeline
    :func:`denote_program` uses, without requiring a deep import of
    :mod:`repro.semantics.denote`.

    ``expand=False`` leaves ``Wait_J`` placeholders in place: the
    unexpanded structure is *linear* in the body size (expansion
    duplicates the downstream structure once per DNF alternative of
    each wait formula, which is exponential in the number of waits) and
    preserves the enablement order of the body's own events — what the
    static analyzer's concurrency pass and the junction compiler's
    footprint derivation need.

    ``env`` supplies values for main/junction parameters (sets,
    timeouts) beyond the program's own configuration.  Raises
    ``KeyError`` for an unknown node and ``ValueError`` when the
    junction's parameters cannot be specialized with the given
    environment.
    """
    iname, sep, jname = node.partition("::")
    if not sep:
        raise KeyError(f"junction node must be 'instance::junction', got {node!r}")
    tname = program.instance_map().get(iname)
    if tname is None:
        raise KeyError(f"unknown instance {iname!r}")
    for cj in program.junctions_of_type(tname):
        if cj.name == jname:
            break
    else:
        raise KeyError(f"instance {iname!r} has no junction {jname!r}")

    cfg = program.config_env()
    for k, v in (env or {}).items():
        cfg[k] = to_ast_value(v)
    try:
        body, decls = specialize(cj.body, cj.decls, cfg)
        body = resolve_me_expr(body, iname, cj.name)
        decls = tuple(resolve_me_decl(d, iname, cj.name) for d in decls)
    except Exception as exc:
        raise ValueError(f"cannot specialize {node}: {exc}") from exc
    guard = None
    for d in decls:
        if isinstance(d, A.Guard):
            guard = d.formula
    den = Denoter(node, max_unfold=max_unfold)
    return den.denote_junction(body, guard, expand=expand)
