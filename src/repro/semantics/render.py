"""Rendering event structures (the graphical notation of sec. 8.2.1).

* :func:`to_dot` — Graphviz DOT: solid arrows for immediate causality,
  dashed zig-zag-style edges for minimal conflict, boxed scheduling
  events (as in Fig. 18).
* :func:`to_text` — a deterministic topological text listing used in
  tests and docs.

Both render *immediate* causality (``e1 ⪇ e2`` with nothing strictly
between) and *minimal* conflict (conflicts not inherited from smaller
ones), per the paper's definitions.
"""

from __future__ import annotations

from .events import Sched, Unsched
from .structure import EventStructure


def immediate_causality(es: EventStructure) -> set[tuple[int, int]]:
    clo = es.closure_le()
    out = set()
    for a, b in clo:
        if a == b:
            continue
        if any((a, c) in clo and (c, b) in clo and c not in (a, b) for c in es.ids):
            continue
        out.add((a, b))
    return out


def minimal_conflicts(es: EventStructure) -> set[frozenset]:
    """Conflicts ``e1 # e2`` minimal in the sense of sec. 8.2.1."""
    inh = es.inherited_conflicts()
    out = set()
    for pair in inh:
        a, b = tuple(pair)
        minimal = True
        for ea in es.history(a):
            for eb in es.history(b):
                p = frozenset((ea, eb))
                if len(p) == 2 and p in inh and p != pair:
                    minimal = False
                    break
            if not minimal:
                break
        if minimal:
            out.add(pair)
    return out


def to_dot(es: EventStructure, name: str = "events") -> str:
    lines = [f"digraph {_dot_id(name)} {{", "  rankdir=TB;", "  node [fontsize=10];"]
    for e in sorted(es.events, key=lambda x: x.id):
        shape = "box" if isinstance(e.label, (Sched, Unsched)) else "ellipse"
        style = ' style="dashed"' if not e.outward else ""
        lines.append(f'  e{e.id} [label="{e}" shape={shape}{style}];')
    for a, b in sorted(immediate_causality(es)):
        lines.append(f"  e{a} -> e{b};")
    for pair in sorted(minimal_conflicts(es), key=sorted):
        a, b = sorted(pair)
        lines.append(f'  e{a} -> e{b} [dir=none style=dotted color=red constraint=false];')
    lines.append("}")
    return "\n".join(lines)


def to_text(es: EventStructure) -> str:
    """Deterministic listing: events in a topological order with their
    immediate enablers, followed by minimal conflicts."""
    clo = es.closure_le()
    imm = immediate_causality(es)
    order = _topo_order(es, clo)
    id2e = {e.id: e for e in es.events}
    lines = []
    for eid in order:
        preds = sorted(a for (a, b) in imm if b == eid)
        pred_s = ", ".join(str(id2e[p]) for p in preds)
        arrow = f"  <- [{pred_s}]" if preds else ""
        lines.append(f"{id2e[eid]}{arrow}")
    for pair in sorted(minimal_conflicts(es), key=sorted):
        a, b = sorted(pair)
        lines.append(f"CONFLICT {id2e[a]} ~ {id2e[b]}")
    return "\n".join(lines)


def _topo_order(es: EventStructure, clo) -> list[int]:
    remaining = {e.id for e in es.events}
    preds = {i: {a for (a, b) in clo if b == i and a in remaining} for i in remaining}
    order = []
    while remaining:
        ready = sorted(i for i in remaining if not (preds[i] & remaining))
        if not ready:  # cycle (invalid structure); dump rest
            order.extend(sorted(remaining))
            break
        for i in ready:
            order.append(i)
            remaining.discard(i)
    return order


def _dot_id(name: str) -> str:
    return '"' + name.replace('"', "'") + '"'
