"""Event structures (Winskel) and the composition algebra of sec. 8.

An event structure is ``(S, ≤, #)`` with:

* ``≤`` the enablement relation — reflexive and transitive (we store
  the *strict* pairs and treat reflexivity implicitly);
* ``#`` the conflict relation — irreflexive and symmetric;
* **conflict inheritance**: ``e1 # e2 ∧ e2 ≤ e3 → e1 # e3``;
* **finite causes**: every event has a finite history ``[e]``.

The module also implements the supporting definitions of sec. 8.3:
peripheries ``⇒[[E]]`` (rightmost) and ``⇐[[E]]`` (leftmost),
``isolate``, and fresh copies ``♮(idx, [[E]])``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from .events import Event, fresh_event, isolate_event


@dataclass(frozen=True)
class EventStructure:
    """An immutable event structure.

    ``events`` is a frozenset of :class:`Event`; ``le`` holds *strict*
    enablement pairs ``(a.id, b.id)`` meaning ``a < b``; ``conflict``
    holds unordered conflict pairs as frozensets of two ids.
    """

    events: frozenset
    le: frozenset
    conflict: frozenset

    # -- constructors -------------------------------------------------------

    @staticmethod
    def empty() -> "EventStructure":
        return EventStructure(frozenset(), frozenset(), frozenset())

    @staticmethod
    def of_events(events: Iterable[Event]) -> "EventStructure":
        return EventStructure(frozenset(events), frozenset(), frozenset())

    # -- lookups -----------------------------------------------------------

    def by_id(self, eid: int) -> Event:
        for e in self.events:
            if e.id == eid:
                return e
        raise KeyError(eid)

    @property
    def ids(self) -> frozenset:
        return frozenset(e.id for e in self.events)

    def closure_le(self) -> frozenset:
        """Transitive closure of the strict enablement pairs."""
        pairs = set(self.le)
        changed = True
        succ: dict[int, set[int]] = {}
        for a, b in pairs:
            succ.setdefault(a, set()).add(b)
        while changed:
            changed = False
            for a in list(succ):
                ext = set()
                for b in succ[a]:
                    ext |= succ.get(b, set())
                if not ext <= succ[a]:
                    succ[a] |= ext
                    changed = True
        return frozenset((a, b) for a, bs in succ.items() for b in bs)

    def leq(self, a: int, b: int) -> bool:
        """Reflexive-transitive ``a ≤ b``."""
        return a == b or (a, b) in self.closure_le()

    def history(self, eid: int) -> frozenset:
        """``[e] = {e' | e' ≤ e}`` (ids)."""
        clo = self.closure_le()
        return frozenset({eid} | {a for (a, b) in clo if b == eid})

    def conflicts(self, a: int, b: int) -> bool:
        """Conflict including inheritance."""
        return frozenset((a, b)) in self.inherited_conflicts()

    def inherited_conflicts(self) -> frozenset:
        """Close the conflict relation under inheritance:
        ``e1#e2 ∧ e2 ≤ e3 → e1#e3``."""
        clo = self.closure_le()
        desc: dict[int, set[int]] = {}
        for a, b in clo:
            desc.setdefault(a, set()).add(b)
        out = set(self.conflict)
        frontier = list(self.conflict)
        while frontier:
            pair = frontier.pop()
            ab = tuple(pair)
            if len(ab) != 2:
                continue
            a, b = ab
            for b2 in desc.get(b, ()):
                p = frozenset((a, b2))
                if len(p) == 2 and p not in out:
                    out.add(p)
                    frontier.append(p)
            for a2 in desc.get(a, ()):
                p = frozenset((a2, b))
                if len(p) == 2 and p not in out:
                    out.add(p)
                    frontier.append(p)
        return frozenset(out)

    # -- validity ------------------------------------------------------------

    def validate(self) -> None:
        """Assert the event-structure axioms."""
        ids = self.ids
        for a, b in self.le:
            if a not in ids or b not in ids:
                raise ValueError(f"dangling enablement ({a},{b})")
            if a == b:
                raise ValueError("strict enablement must be irreflexive")
        for pair in self.conflict:
            if len(pair) != 2:
                raise ValueError("conflict must relate two distinct events")
            if not pair <= ids:
                raise ValueError(f"dangling conflict {set(pair)}")
        clo = self.closure_le()
        for a, b in clo:
            if (b, a) in clo:
                raise ValueError(f"enablement cycle through {a},{b}")
        # finite causes is automatic for finite structures

    def validate_prime(self) -> None:
        """Additionally require *consistent causes*: no event's history
        contains conflicting events.  This holds for prime event
        structures; the paper's general, infinitary semantics
        deliberately produces disjunctive-cause fan-ins (e.g. the
        ``otherwise`` rule merges alternative futures, sec. 8.5's
        remark on redundancy), so :meth:`validate` does not demand it.
        The wait-expansion post-processing restores it locally by
        duplicating downstream structure."""
        self.validate()
        inh = self.inherited_conflicts()
        for e in self.events:
            hist = self.history(e.id)
            for pair in inh:
                if pair <= hist:
                    raise ValueError(
                        f"event {e} has conflicting causes {set(pair)}"
                    )

    def concurrent(self, a: int, b: int) -> bool:
        """Two events are concurrent iff incomparable by enablement and
        their histories are conflict-free (sec. 8.1)."""
        if a == b:
            return False
        if self.leq(a, b) or self.leq(b, a):
            return False
        inh = self.inherited_conflicts()
        for ea in self.history(a):
            for eb in self.history(b):
                if frozenset((ea, eb)) in inh and ea != eb:
                    return False
        return True

    # -- peripheries -----------------------------------------------------------

    def rightmost(self) -> frozenset:
        """``⇒[[E]]``: events enabling nothing further (maximal)."""
        if not self.le:
            return self.events
        sources = {a for a, _ in self.le}
        return frozenset(e for e in self.events if e.id not in sources)

    def leftmost(self) -> frozenset:
        """``⇐[[E]]``: events with no strict predecessor (minimal)."""
        if not self.le:
            return self.events
        targets = {b for _, b in self.le}
        return frozenset(e for e in self.events if e.id not in targets)

    def outward_rightmost(self) -> frozenset:
        """Rightmost events that still have the outward flag (isolated
        events do not enable through composition)."""
        return frozenset(e for e in self.rightmost() if e.outward)

    # -- transforms --------------------------------------------------------------

    def isolate(self) -> "EventStructure":
        """``isolate``: clear every event's outward flag."""
        mapping = {e.id: isolate_event(e) for e in self.events}
        return EventStructure(frozenset(mapping.values()), self.le, self.conflict)

    def copy_fresh(self) -> tuple["EventStructure", dict[int, int]]:
        """``♮``: a fresh-identifier copy; returns the structure and the
        id bijection old→new."""
        mapping: dict[int, int] = {}
        new_events = []
        for e in self.events:
            ne = fresh_event(e.label, e.outward)
            mapping[e.id] = ne.id
            new_events.append(ne)
        new_le = frozenset((mapping[a], mapping[b]) for a, b in self.le)
        new_conf = frozenset(frozenset(mapping[x] for x in pair) for pair in self.conflict)
        return EventStructure(frozenset(new_events), new_le, new_conf), mapping

    # -- algebra ---------------------------------------------------------------

    def union(self, other: "EventStructure") -> "EventStructure":
        """Plain union — the semantics of ``E1 + E2`` (Fig. 19)."""
        return EventStructure(
            self.events | other.events,
            self.le | other.le,
            self.conflict | other.conflict,
        )

    def then(self, other: "EventStructure") -> "EventStructure":
        """Sequential composition: rightmost(self) enable leftmost(other)."""
        extra = frozenset(
            (a.id, b.id) for a in self.outward_rightmost() for b in other.leftmost()
        )
        return EventStructure(
            self.events | other.events,
            self.le | other.le | extra,
            self.conflict | other.conflict,
        )

    def guarded_by(self, guards: Iterable[Event]) -> "EventStructure":
        """Prefix: the given events enable every leftmost event."""
        guards = list(guards)
        g_ids = frozenset(e.id for e in guards)
        extra = frozenset((g, b.id) for g in g_ids for b in self.leftmost())
        return EventStructure(
            self.events | frozenset(guards), self.le | extra, self.conflict
        )

    def size(self) -> int:
        return len(self.events)

    def find(self, predicate: Callable[[Event], bool]) -> list[Event]:
        return [e for e in self.events if predicate(e)]

    def find_label(self, text: str) -> list[Event]:
        return [e for e in self.events if str(e.label) == text]
